//! DRJN query processing: histogram-driven bound estimation plus
//! map-job tuple pulls through server-side filters (paper §2/§7.1).
//!
//! The driver is an owned *round machine* ([`DrjnRun`]): each
//! [`DrjnRun::advance_round`] call performs one full estimate → pull →
//! join → re-check round, and the machine's position (seen tuples, the
//! running top-k, matrix rows, pulled depth) lives in a plain-data
//! [`DrjnCore`]. The one-shot entry points drain the machine;
//! [`DrjnCursor`] pumps the same machine on demand and yields certified
//! results from the materialized joins between rounds.

use std::sync::Arc;

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_sketch::histogram::ScoreHistogram;
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::filter::ScoreInRange;
use rj_store::metrics::{MetricsSnapshot, QueryMeter};
use rj_store::parallel::{ExecutionMode, ParallelScanner};
use rj_store::scan::Scan;

use crate::cancel::StopPolicy;
use crate::codec;
use crate::cursor::{
    policy_stop, snap_add, CursorBatch, CursorMeta, CursorState, RankedCursor, StateInner,
};
use crate::error::{RankJoinError, Result};
use crate::query::{JoinSide, RankJoinQuery};
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

use super::index::bucket_row_key;
use super::DrjnConfig;

struct PullMapper {
    side: JoinSide,
}

impl Mapper for PullMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        // Temp-table row: key = join value ‖ base key (unique), one cell
        // carrying the tuple.
        let key = rj_store::keys::composite(&[&join_value, &row.key]);
        out.put(
            key,
            Mutation::put(
                &self.side.label,
                &row.key,
                codec::encode_value_score(&join_value, score),
            ),
        );
    }
}

/// Pulls tuples of `side` with scores in `[lo, hi)` into `tmp_table` via a
/// map-only job with a server-side score filter.
fn pull_band(
    engine: &MapReduceEngine,
    side: &JoinSide,
    lo: f64,
    hi: f64,
    tmp_table: &str,
) -> Result<()> {
    let spec = JobSpec::new(
        &format!("drjn-pull-{}", side.label),
        JobInput::Tables(vec![TableInput::projected(
            &side.table,
            &[&side.join_col.0, &side.score_col.0],
        )]),
        0,
    )
    .put_table(tmp_table)
    .scan_filter(Arc::new(ScoreInRange {
        family: side.score_col.0.clone(),
        qualifier: side.score_col.1.clone(),
        min: lo,
        max: hi,
    }));
    let side_cl = side.clone();
    engine.run(
        &spec,
        &move || {
            Box::new(PullMapper {
                side: side_cl.clone(),
            })
        },
        None,
        None,
    )?;
    Ok(())
}

/// Process-wide sequence for temp-table names: concurrent DRJN queries on
/// one shared cluster must not collide on their pull-phase scratch tables.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The full position of a DRJN execution between rounds — plain owned
/// data, detachable into a [`crate::cursor::CursorState`] and resumable
/// on any cluster handle over the same data.
#[derive(Clone)]
pub(crate) struct DrjnCore {
    /// Cursor bookkeeping (target k, emitted count, cumulative charge).
    pub(crate) meta: CursorMeta,
    query: RankJoinQuery,
    index_table: String,
    config: DrjnConfig,
    mode: ExecutionMode,
    /// Seen tuples per side, keyed by join value (flat columnar store).
    seen: [crate::hrjn::SeenSide; 2],
    results: TopK,
    /// Per-side fetched matrix rows (bucket → per-partition counts).
    rows: [Vec<Vec<u64>>; 2],
    cum_estimate: f64,
    /// Score depth already pulled, per side (exclusive lower bound of the
    /// next band's upper edge).
    pulled_to: [f64; 2],
    rounds: u64,
    pull_jobs: u64,
    /// Matrix rows fetched (same depth both sides).
    depth: u32,
    done: bool,
}

impl DrjnCore {
    /// Monotone progress measure: tuples pulled into the seen store.
    pub(crate) fn consumed_depth(&self) -> u64 {
        self.seen
            .iter()
            .map(crate::hrjn::SeenSide::len)
            .sum::<usize>() as u64
    }
}

/// An owned, stepping DRJN execution over `cluster` (see the module
/// docs). The MapReduce engine for pull jobs is rebuilt from the cluster
/// handle, so a resumed machine bills its pulls to the resuming handle's
/// ledger.
pub(crate) struct DrjnRun {
    cluster: Cluster,
    pub(crate) core: DrjnCore,
}

impl DrjnRun {
    pub(crate) fn new(
        cluster: &Cluster,
        query: &RankJoinQuery,
        index_table: &str,
        config: &DrjnConfig,
        mode: ExecutionMode,
    ) -> Result<Self> {
        cluster
            .table(index_table)
            .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
        Ok(DrjnRun {
            cluster: cluster.clone(),
            core: DrjnCore {
                meta: CursorMeta::new(query.k, None),
                query: query.clone(),
                index_table: index_table.to_owned(),
                config: *config,
                mode,
                seen: [crate::hrjn::SeenSide::new(), crate::hrjn::SeenSide::new()],
                results: TopK::new(query.k),
                rows: [Vec::new(), Vec::new()],
                cum_estimate: 0.0,
                pulled_to: [f64::INFINITY, f64::INFINITY],
                rounds: 0,
                pull_jobs: 0,
                depth: 0,
                done: false,
            },
        })
    }

    /// Reattaches a detached machine to `cluster`.
    pub(crate) fn resume(cluster: &Cluster, core: DrjnCore) -> Self {
        DrjnRun {
            cluster: cluster.clone(),
            core,
        }
    }

    /// The score bound of the last completed round: everything above it
    /// (on both sides) has been pulled and joined.
    fn pulled_bound(&self) -> f64 {
        if self.core.depth == 0 {
            1.0
        } else {
            ScoreHistogram::new(self.core.config.num_buckets).lower_bound(self.core.depth - 1)
        }
    }

    /// Upper bound on the score of any join result not yet materialized:
    /// a missing pair has one side below the pulled bound, the other at
    /// most the domain max (1.0). Non-increasing across rounds.
    fn threat_bound(&self) -> f64 {
        let bound = self.pulled_bound();
        self.core
            .query
            .score_fn
            .combine(bound, 1.0)
            .max(self.core.query.score_fn.combine(1.0, bound))
    }

    /// One estimate → pull → join → re-check round (the loop body of the
    /// old run-to-completion driver, verbatim). Returns `false` once the
    /// k-th real result provably beats anything still unpulled (or the
    /// histogram is exhausted).
    pub(crate) fn advance_round(&mut self) -> Result<bool> {
        if self.core.done {
            return Ok(false);
        }
        let engine = MapReduceEngine::new(self.cluster.clone());
        let client = self.cluster.client();
        let hist = ScoreHistogram::new(self.core.config.num_buckets);
        let query = self.core.query.clone();
        let config = self.core.config;

        self.core.rounds += 1;
        // (i) fetch matrix rows until the cumulative estimate reaches k or
        // the histogram is exhausted.
        while self.core.cum_estimate < query.k as f64 && self.core.depth < config.num_buckets {
            for (s, label) in [&query.left.label, &query.right.label].iter().enumerate() {
                let fams = [(*label).clone()];
                let row = client.get_with_families(
                    &self.core.index_table,
                    &bucket_row_key(self.core.depth),
                    Some(&fams),
                )?;
                let counts: Vec<u64> = match row {
                    Some(r) => {
                        let mut v = vec![0u64; config.num_partitions as usize];
                        for cell in r.family_cells(label) {
                            if let (Some(p), Ok(c)) = (
                                rj_store::keys::decode_u32(&cell.qualifier),
                                cell.value.as_ref().try_into().map(u64::from_be_bytes),
                            ) {
                                if (p as usize) < v.len() {
                                    v[p as usize] = c;
                                }
                            }
                        }
                        v
                    }
                    None => vec![0u64; config.num_partitions as usize],
                };
                self.core.rows[s].push(counts);
            }
            // (ii) join the new depth's rows against everything fetched:
            // new pairs are (d, j) for j ≤ d and (i, d) for i < d.
            let d = self.core.depth as usize;
            let dot = |a: &[u64], b: &[u64]| -> f64 {
                a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
            };
            for j in 0..=d {
                self.core.cum_estimate += dot(&self.core.rows[0][d], &self.core.rows[1][j]);
            }
            for i in 0..d {
                self.core.cum_estimate += dot(&self.core.rows[0][i], &self.core.rows[1][d]);
            }
            self.core.depth += 1;
        }

        // (iii) pull all tuples above the lower boundary of the last
        // fetched bucket and join.
        let bound = if self.core.depth == 0 {
            1.0
        } else {
            hist.lower_bound(self.core.depth - 1)
        };
        let tmp = format!(
            "drjn_tmp_{}",
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let tmp_table = self.cluster.create_table(
            &tmp,
            &[query.left.label.as_str(), query.right.label.as_str()],
        )?;
        // No mid-load auto-splits: MR tasks write concurrently, so an
        // auto-split would land at an order-dependent median and make the
        // layout (hence RPC counts) nondeterministic. The deterministic
        // rebalance below shards instead.
        tmp_table.set_split_threshold(usize::MAX);
        for (s, side) in [&query.left, &query.right].iter().enumerate() {
            if bound < self.core.pulled_to[s] {
                pull_band(&engine, side, bound, self.core.pulled_to[s], &tmp)?;
                self.core.pulled_to[s] = bound;
                self.core.pull_jobs += 1;
            }
        }
        // The temp table's key domain (join value ‖ base key) is unknown
        // before the pull, so re-shard it afterwards: the layout depends
        // only on the pulled content (not the MR tasks' write order), both
        // modes produce identical regions, and the parallel-mode fetch
        // below gets a genuine multi-region fan-out.
        tmp_table.rebalance(self.cluster.num_nodes() * 2);
        // Coordinator fetches the temp table and joins; in parallel mode
        // the fetch fans out across the temp table's regions.
        let tmp_scan = Scan::new().caching(1000);
        let pulled_rows: Vec<rj_store::row::RowResult> = if self.core.mode.is_parallel() {
            ParallelScanner::new(&self.cluster, self.core.mode).scan_collect(&tmp, &tmp_scan)?
        } else {
            client.scan(&tmp, tmp_scan)?.collect()
        };
        for row in pulled_rows {
            for (s, label) in [&query.left.label, &query.right.label].iter().enumerate() {
                for cell in row.family_cells(label) {
                    let Ok((join, score)) = codec::decode_value_score(&cell.value) else {
                        continue;
                    };
                    // Join against the other side's seen tuples.
                    for (other_key, other_score) in self.core.seen[1 - s].matches(&join) {
                        let (lk, ls, rk, rs) = if s == 0 {
                            (cell.qualifier.as_slice(), score, other_key, other_score)
                        } else {
                            (other_key, other_score, cell.qualifier.as_slice(), score)
                        };
                        self.core.results.offer(JoinTuple {
                            left_key: lk.to_vec(),
                            right_key: rk.to_vec(),
                            join_value: join.clone(),
                            left_score: ls,
                            right_score: rs,
                            inner: Vec::new(),
                            score: query.score_fn.combine(ls, rs),
                        });
                    }
                    self.core.seen[s].insert(&join, &cell.qualifier, score);
                }
            }
        }
        self.cluster.drop_table(&tmp)?;

        // (iv) terminate when the k-th real result beats anything still
        // unpulled: a missing pair has one side below `bound`, the other
        // at most the domain max (1.0).
        let unpulled_max = query
            .score_fn
            .combine(bound, 1.0)
            .max(query.score_fn.combine(1.0, bound));
        let done_by_score = self
            .core
            .results
            .kth_score()
            .is_some_and(|kth| kth >= unpulled_max);
        let exhausted = self.core.depth >= config.num_buckets && bound <= 0.0;
        if done_by_score || exhausted {
            self.core.done = true;
            return Ok(false);
        }
        // Not enough: deepen the estimate and loop.
        self.core.cum_estimate = 0.0; // force at least one more histogram row
        if self.core.depth >= config.num_buckets && bound <= 0.0 {
            self.core.done = true;
            return Ok(false);
        }
        Ok(true)
    }

    fn finish(mut self, meter: QueryMeter) -> Result<QueryOutcome> {
        let consumed = self.core.consumed_depth();
        let results = std::mem::replace(&mut self.core.results, TopK::new(1)).into_sorted_vec();
        Ok(QueryOutcome::new("DRJN", results, meter.finish())
            .with_extra("rounds", self.core.rounds as f64)
            .with_extra("histogram_depth", self.core.depth as f64)
            .with_extra("pull_jobs", self.core.pull_jobs as f64)
            .with_extra("tuples_pulled", consumed as f64))
    }
}

/// DRJN as a [`RankedCursor`]: pumps the round machine and yields, from
/// the tuples each round materialized out of its temp table, the prefix
/// strictly above the unpulled-score bound — which is non-increasing
/// across rounds, so emitted results are final.
pub(crate) struct DrjnCursor {
    run: DrjnRun,
}

impl DrjnCursor {
    /// Opens a cursor over previously built DRJN matrices.
    pub(crate) fn open(
        cluster: &Cluster,
        query: &RankJoinQuery,
        index_table: &str,
        config: &DrjnConfig,
        mode: ExecutionMode,
        pinned_version: Option<u64>,
    ) -> Result<Self> {
        let mut run = DrjnRun::new(cluster, query, index_table, config, mode)?;
        run.core.meta = CursorMeta::new(query.k, pinned_version);
        Ok(DrjnCursor { run })
    }

    /// Reattaches a detached state to `cluster`.
    pub(crate) fn resume(cluster: &Cluster, core: DrjnCore) -> Self {
        DrjnCursor {
            run: DrjnRun::resume(cluster, core),
        }
    }

    fn drained(&self) -> bool {
        self.run.core.meta.k == 0 || self.run.core.done
    }

    /// Results certain to be final (strictly above the unpulled bound;
    /// everything once the machine terminates).
    fn certified(&self) -> usize {
        if self.drained() {
            return self.run.core.results.len();
        }
        let threat = self.run.threat_bound();
        self.run
            .core
            .results
            .iter()
            .take_while(|t| t.score > threat)
            .count()
    }
}

impl RankedCursor for DrjnCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        let meta_k = self.run.core.meta.k;
        let want = self.run.core.meta.emitted.saturating_add(n).min(meta_k);
        let ledger = self.run.cluster.metrics();
        let before = ledger.snapshot();
        let mut stopped = None;
        while !self.drained() && self.certified() < want {
            let more = self.run.advance_round()?;
            if !more {
                break;
            }
            let sim_so_far = self.run.core.meta.charged.sim_seconds
                + ledger.snapshot().delta_since(&before).sim_seconds;
            if let Some(reason) = policy_stop(policy, self.run.core.rounds, sim_so_far) {
                stopped = Some(reason);
                break;
            }
        }
        let delta = ledger.snapshot().delta_since(&before);
        self.run.core.meta.charged = snap_add(self.run.core.meta.charged, delta);
        let emit_to = self.certified().min(want).max(self.run.core.meta.emitted);
        let results: Vec<JoinTuple> = self
            .run
            .core
            .results
            .iter()
            .skip(self.run.core.meta.emitted)
            .take(emit_to - self.run.core.meta.emitted)
            .cloned()
            .collect();
        self.run.core.meta.emitted = emit_to;
        Ok(CursorBatch {
            results,
            done: self.is_done(),
            stopped,
            metrics: delta,
        })
    }

    fn pause(self: Box<Self>) -> CursorState {
        CursorState {
            inner: StateInner::Drjn(Box::new(self.run.core)),
        }
    }

    fn emitted(&self) -> usize {
        self.run.core.meta.emitted
    }

    fn consumed_depth(&self) -> u64 {
        self.run.core.consumed_depth()
    }

    fn charged(&self) -> MetricsSnapshot {
        self.run.core.meta.charged
    }

    fn is_done(&self) -> bool {
        self.drained() && self.run.core.meta.emitted == self.run.core.results.len()
    }

    fn algorithm(&self) -> &'static str {
        "DRJN"
    }
}

/// Executes the DRJN rank join over previously built matrices (serial
/// execution; see [`run_with_mode`]).
pub fn run(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    index_table: &str,
    config: &DrjnConfig,
) -> Result<QueryOutcome> {
    run_with_mode(engine, query, index_table, config, ExecutionMode::Serial)
}

/// Executes the DRJN rank join under an explicit [`ExecutionMode`].
///
/// The parallel mode fans the coordinator's scan of each round's pulled
/// temp table out across its regions; matrix-row fetches and the MapReduce
/// pull jobs are unchanged. Results and counted metrics are identical to
/// serial execution.
pub fn run_with_mode(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    index_table: &str,
    config: &DrjnConfig,
    mode: ExecutionMode,
) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "DRJN",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let cluster = engine.cluster();
    cluster
        .table(index_table)
        .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
    let meter = QueryMeter::start(cluster.metrics());
    let mut run = DrjnRun::new(cluster, query, index_table, config, mode)?;
    while run.advance_round()? {}
    run.finish(meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drjn;
    use crate::oracle;
    use crate::testsupport::running_example_cluster;

    fn build(c: &rj_store::cluster::Cluster, q: &RankJoinQuery, config: &DrjnConfig) {
        let engine = MapReduceEngine::new(c.clone());
        drjn::build_pair(&engine, q, "drjn_idx", config).unwrap();
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q, "drjn_idx", &config).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }

    #[test]
    fn matches_oracle_for_all_k() {
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        for k in [1, 2, 5, 11, 38, 60] {
            let qk = q.with_k(k);
            let got = run(&engine, &qk, "drjn_idx", &config).unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
        }
    }

    #[test]
    fn pull_jobs_scan_everything() {
        // The DRJN signature: map pulls bill every base KV read even
        // though few tuples ship.
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q, "drjn_idx", &config).unwrap();
        assert!(got.extra("pull_jobs").unwrap() >= 2.0);
        // Each pull job scans both relations' projected columns fully.
        assert!(
            got.metrics.kv_reads > 40,
            "kv_reads = {}",
            got.metrics.kv_reads
        );
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c);
        assert!(matches!(
            run(&engine, &q, "absent", &DrjnConfig::default()).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
