//! DRJN — the comparator from Doulkeridis et al. (ICDE 2012), as adapted
//! to the NoSQL setting by the paper (§2, §7.1).
//!
//! The DRJN index is "roughly a 2-d matrix, with join value partitions on
//! its x-axis and score value partitions on its y-axis". The paper's HBase
//! adaptation groups all buckets of one score range into a single row, so
//! the querying node fetches a complete batch of buckets with one `Get`,
//! and implements the pull phase "as a lightweight Map-only Hadoop job,
//! storing its output data in a temporary HBase table for the querying
//! node to access and join", with custom server-side filters.
//!
//! Query processing loops: (i) fetch matrix rows in decreasing score
//! order, (ii) join them to estimate the result cardinality, (iii) once
//! the cumulative estimate reaches k, pull every tuple above the score
//! bounds and join for real, (iv) terminate when the k-th real result
//! beats the maximum attainable score of unfetched buckets.
//!
//! Because the pull phase scans the base tables with map jobs (billing
//! every KV) while shipping only qualifying tuples, DRJN lands exactly
//! where the paper's Figures 8 put it: decent bandwidth, terrible
//! turnaround time and dollar cost.

mod index;
mod query;

pub use index::{build_pair, index_table_name, DrjnBuildStats};
pub use query::{run, run_with_mode};
pub(crate) use query::{DrjnCore, DrjnCursor};

/// DRJN configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrjnConfig {
    /// Score-axis buckets (the paper runs 100 and 500).
    pub num_buckets: u32,
    /// Join-value partitions (the x-axis of the 2-d matrix).
    pub num_partitions: u32,
}

impl Default for DrjnConfig {
    fn default() -> Self {
        DrjnConfig {
            num_buckets: 100,
            num_partitions: 512,
        }
    }
}

impl DrjnConfig {
    /// Config with a given score-bucket count, default partitions.
    pub fn with_buckets(num_buckets: u32) -> Self {
        DrjnConfig {
            num_buckets,
            ..Default::default()
        }
    }
}
