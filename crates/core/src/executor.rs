//! A uniform entry point over all six rank-join algorithms.
//!
//! The executor owns the MapReduce engine handle, remembers which indices
//! have been built for a query pair, and dispatches [`Algorithm`] choices
//! to the right module — the shape the experiment harness and the
//! examples drive everything through.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use rj_mapreduce::MapReduceEngine;
use rj_store::cluster::Cluster;
use rj_store::metrics::QueryMeter;
use rj_store::parallel::ExecutionMode;

use crate::adaptive::{self, AdaptiveIsl, DivergenceObserver, DEFAULT_REPLAN_DIVERGENCE};
use crate::bfhm::{self, maintenance::WriteBackPolicy, BfhmConfig, BfhmCursor};
use crate::cancel::StopPolicy;
use crate::cursor::{
    AutoCore, CursorBatch, CursorMeta, CursorState, IslCursor, MaterializedCore,
    MaterializedCursor, MaterializedSource, RankedCursor, StateInner,
};
use crate::drjn::{self, DrjnConfig, DrjnCursor};
use crate::error::{RankJoinError, Result};
use crate::indexutil::BuildStats;
use crate::isl::{self, IslConfig};
use crate::planner::{self, Candidates, CostEstimate, Objective, Plan};
use crate::query::RankJoinQuery;
use crate::stats::QueryOutcome;
use crate::statsmaint::{SharedTableStats, DEFAULT_STALENESS_BOUND};
use crate::{hive, ijlmr, pig};

/// The algorithm suite of the paper, plus the cost-based planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Hive-style baseline (§3.1).
    Hive,
    /// Pig-style baseline (§3.1).
    Pig,
    /// Inverse Join List MapReduce rank join (§4.1).
    Ijlmr,
    /// Inverse Score List rank join (§4.2).
    Isl,
    /// Bloom Filter Histogram Matrix rank join (§5).
    Bfhm,
    /// DRJN comparator (§7.1).
    Drjn,
    /// Cost-based adaptive selection ([`crate::planner`]): predicts every
    /// prepared algorithm's cost from table statistics and the cluster's
    /// [`rj_store::costmodel::CostModel`], then runs the cheapest under
    /// the executor's [`Objective`]. Unprepared indices are simply not
    /// candidates; the index-free HIVE/PIG baselines always are, so Auto
    /// never fails for lack of preparation.
    Auto,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Hive,
        Algorithm::Pig,
        Algorithm::Ijlmr,
        Algorithm::Isl,
        Algorithm::Bfhm,
        Algorithm::Drjn,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Hive => "HIVE",
            Algorithm::Pig => "PIG",
            Algorithm::Ijlmr => "IJLMR",
            Algorithm::Isl => "ISL",
            Algorithm::Bfhm => "BFHM",
            Algorithm::Drjn => "DRJN",
            Algorithm::Auto => "AUTO",
        }
    }

    /// Whether the algorithm needs a pre-built index. `Auto` does not: it
    /// plans over whatever happens to be prepared.
    pub fn needs_index(&self) -> bool {
        !matches!(self, Algorithm::Hive | Algorithm::Pig | Algorithm::Auto)
    }
}

/// Facade over engine + indices for one query pair.
pub struct RankJoinExecutor {
    engine: MapReduceEngine,
    query: RankJoinQuery,
    ijlmr_table: Option<String>,
    isl_table: Option<String>,
    bfhm_table: Option<(String, BfhmConfig)>,
    drjn_table: Option<(String, DrjnConfig)>,
    /// ISL batch sizes used at query time.
    pub isl_config: IslConfig,
    /// BFHM write-back policy used at query time.
    pub write_back: WriteBackPolicy,
    /// How multi-region reads execute (ISL, BFHM, and DRJN honour this;
    /// the MapReduce-driven algorithms model task parallelism already).
    /// Defaults to [`ExecutionMode::Serial`], whose results *and* counted
    /// metrics the parallel mode reproduces exactly.
    pub execution_mode: ExecutionMode,
    /// What [`Algorithm::Auto`] optimizes for (default: turnaround time).
    pub objective: Objective,
    /// Largest fraction of either side's tuples that may mutate (through
    /// the maintained write path) before planning stops trusting the
    /// incrementally-maintained statistics and re-collects. See
    /// [`crate::statsmaint`].
    pub staleness_bound: f64,
    /// Largest observed-vs-predicted score divergence (absolute, in the
    /// normalized `[0,1]` score domain) an [`Algorithm::Auto`]-dispatched
    /// ISL execution tolerates before it aborts, corrects the shared
    /// statistics from what it saw, re-plans, and switches algorithms
    /// mid-query — the runtime sibling of
    /// [`staleness_bound`](RankJoinExecutor::staleness_bound). See
    /// [`crate::adaptive`]. `f64::INFINITY` disables mid-query switching.
    pub replan_divergence: f64,
    /// Fault-injection hook for the adaptive driver: force an
    /// `Auto`-dispatched ISL execution to abort-and-switch after this
    /// many batches even with zero divergence. Exercises the
    /// switch-at-any-point equivalence contract in tests; leave `None` in
    /// production.
    pub adaptive_force_switch_after: Option<u64>,
    /// Shared, incrementally-maintained statistics handle. Collected
    /// lazily on the first `Auto` plan, updated in place by
    /// [`crate::maintenance::MaintainedSide`] writes registered on it,
    /// and invalidated wholesale whenever an index is (re-)prepared or
    /// attached. `Arc`-shared so `fork_metrics` clones serving the same
    /// query pair reuse one snapshot instead of each re-collecting.
    stats: Arc<SharedTableStats>,
    /// Plan cache: repeated `(k, mode, objective)` queries skip
    /// estimation entirely. The ISL batch config and the staleness bound
    /// (bit-exact) are part of the key because they are public fields
    /// that feed the estimate/statistics decision — a caller mutating
    /// either must not be served a plan computed under the old value.
    /// Each entry records the statistics-handle version it was computed
    /// at, so maintained writes coherently invalidate plans across every
    /// executor sharing the handle.
    #[allow(clippy::type_complexity)]
    plan_cache: Mutex<HashMap<(usize, ExecutionMode, Objective, IslConfig, u64), (u64, Arc<Plan>)>>,
    /// Candidacy cache: which algorithms are executable right now, both
    /// positive ("ISL prepared, with this config") and negative ("BFHM
    /// not prepared — don't re-check until a `prepare_*`/`attach_*`
    /// bump"). Invalidated only by preparation changes, never by
    /// statistics movement, so `Auto` stops re-evaluating permanently
    /// unprepared algorithms on every plan.
    /// Keyed by the ISL batch config the entry was built under: the
    /// config is a public field feeding the candidate set, so mutating it
    /// must re-evaluate (same reason it sits in the plan-cache key).
    candidates_cache: Mutex<Option<(IslConfig, Arc<Candidates>)>>,
    /// How many times the candidate set was actually (re-)evaluated —
    /// the observable the negative-candidacy caching contract is tested
    /// against (grows on preparation changes only).
    candidate_evaluations: AtomicU64,
}

impl RankJoinExecutor {
    /// Creates an executor for `query` on `cluster`.
    pub fn new(cluster: &Cluster, query: RankJoinQuery) -> Self {
        let stats = SharedTableStats::new(&query);
        RankJoinExecutor {
            engine: MapReduceEngine::new(cluster.clone()),
            query,
            ijlmr_table: None,
            isl_table: None,
            bfhm_table: None,
            drjn_table: None,
            isl_config: IslConfig::default(),
            write_back: WriteBackPolicy::Off,
            execution_mode: ExecutionMode::Serial,
            objective: Objective::Time,
            staleness_bound: DEFAULT_STALENESS_BOUND,
            replan_divergence: DEFAULT_REPLAN_DIVERGENCE,
            adaptive_force_switch_after: None,
            stats,
            plan_cache: Mutex::new(HashMap::new()),
            candidates_cache: Mutex::new(None),
            candidate_evaluations: AtomicU64::new(0),
        }
    }

    /// Sets the execution mode, builder-style.
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Sets the planning objective, builder-style.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// The underlying engine (for direct module calls).
    pub fn engine(&self) -> &MapReduceEngine {
        &self.engine
    }

    /// The query this executor serves.
    pub fn query(&self) -> &RankJoinQuery {
        &self.query
    }

    /// The shared statistics handle. Register it on a
    /// [`crate::maintenance::MaintainedSide`] (via
    /// [`with_stats`](crate::maintenance::MaintainedSide::with_stats)) so
    /// writes keep plans fresh, and hand it to other executors for the
    /// same query pair (via [`RankJoinExecutor::attach_stats`]) so they
    /// share one snapshot.
    pub fn stats_handle(&self) -> Arc<SharedTableStats> {
        self.stats.clone()
    }

    /// Adopts another executor's statistics handle (it must describe the
    /// same query pair). `fork_metrics`-cloned executors serving one
    /// query pair attach the original's handle so statistics are
    /// collected once and maintained coherently, instead of every fork
    /// re-collecting identical snapshots.
    pub fn attach_stats(&mut self, handle: Arc<SharedTableStats>) -> Result<()> {
        // Statistics are a function of (table, join column, score column)
        // per side; the label keys the deltas. All must match — two
        // queries over the same tables ranking by different columns have
        // different histograms.
        let same_side = |a: &crate::query::JoinSide, b: &crate::query::JoinSide| {
            a.table == b.table
                && a.label == b.label
                && a.join_col == b.join_col
                && a.score_col == b.score_col
        };
        if !same_side(&handle.query().left, &self.query.left)
            || !same_side(&handle.query().right, &self.query.right)
        {
            return Err(RankJoinError::Internal(
                "stats handle describes a different query pair",
            ));
        }
        self.plan_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.stats = handle;
        Ok(())
    }

    /// Drops cached plans and statistics — used by `prepare_*`, which
    /// rebuilds an index from the *current* base data and so doubles as
    /// the caller's explicit "re-sync with the world" signal. The
    /// statistics invalidation propagates through the shared handle to
    /// every executor sharing it (their versioned plan-cache entries go
    /// stale with it).
    fn invalidate_plans(&mut self) {
        self.stats.invalidate();
        self.plan_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        *self
            .candidates_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Drops only this executor's cached plans — used by `attach_*`:
    /// adopting an already-built index changes the *candidate set*, but
    /// not the base tables the shared statistics describe, so wiping the
    /// shared snapshot (and forcing every sharer through a redundant full
    /// pass) would be invalidation at the wrong altitude.
    fn refresh_candidates(&mut self) {
        self.plan_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        *self
            .candidates_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Drops a stale index table before a rebuild. Re-preparation
    /// replaces the index rather than writing into the survivor; every
    /// `prepare_*` clears its table slot before calling this and restores
    /// it only after the fresh build completes, so a planner that
    /// triggers lazy builds can never dispatch to a half-rebuilt index.
    fn drop_stale(&mut self, table: &str) -> Result<()> {
        if self.engine.cluster().table(table).is_ok() {
            self.engine.cluster().drop_table(table)?;
        }
        Ok(())
    }

    /// Builds the IJLMR index. Calling this again drops and rebuilds the
    /// index from the current base data (safe re-preparation).
    pub fn prepare_ijlmr(&mut self) -> Result<BuildStats> {
        let table = ijlmr::index_table_name(&self.query);
        self.invalidate_plans();
        self.ijlmr_table = None;
        self.drop_stale(&table)?;
        let stats = ijlmr::build(&self.engine, &self.query, &table)?;
        self.ijlmr_table = Some(table);
        Ok(stats)
    }

    /// Builds the ISL index. Calling this again drops and rebuilds the
    /// index from the current base data (safe re-preparation).
    pub fn prepare_isl(&mut self) -> Result<BuildStats> {
        let table = isl::index_table_name(&self.query);
        self.invalidate_plans();
        self.isl_table = None;
        self.drop_stale(&table)?;
        let stats = isl::build(&self.engine, &self.query, &table)?;
        self.isl_table = Some(table);
        Ok(stats)
    }

    /// Builds the BFHM index. Calling this again drops and rebuilds the
    /// index from the current base data (safe re-preparation).
    pub fn prepare_bfhm(&mut self, config: BfhmConfig) -> Result<BuildStats> {
        let table = bfhm::index_table_name(&self.query);
        self.invalidate_plans();
        self.bfhm_table = None;
        self.drop_stale(&table)?;
        let (stats, _m) = bfhm::build_pair(&self.engine, &self.query, &table, &config)?;
        self.bfhm_table = Some((table, config));
        Ok(stats)
    }

    /// Builds the DRJN matrices. Calling this again drops and rebuilds
    /// the index from the current base data (safe re-preparation).
    pub fn prepare_drjn(&mut self, config: DrjnConfig) -> Result<BuildStats> {
        let table = drjn::index_table_name(&self.query);
        self.invalidate_plans();
        self.drjn_table = None;
        self.drop_stale(&table)?;
        let stats = drjn::build_pair(&self.engine, &self.query, &table, &config)?;
        self.drjn_table = Some((table, config));
        Ok(stats)
    }

    /// Adopts an already-built IJLMR index table (e.g. one another
    /// executor for the same query pair prepared) without rebuilding.
    pub fn attach_ijlmr(&mut self, table: &str) -> Result<()> {
        self.engine
            .cluster()
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        self.refresh_candidates();
        self.ijlmr_table = Some(table.to_owned());
        Ok(())
    }

    /// Adopts an already-built ISL index table without rebuilding.
    pub fn attach_isl(&mut self, table: &str) -> Result<()> {
        self.engine
            .cluster()
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        self.refresh_candidates();
        self.isl_table = Some(table.to_owned());
        Ok(())
    }

    /// Adopts an already-built BFHM index table without rebuilding.
    /// `config` must match the build (bucket count is verified at query
    /// time against the index metadata).
    pub fn attach_bfhm(&mut self, table: &str, config: BfhmConfig) -> Result<()> {
        self.engine
            .cluster()
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        self.refresh_candidates();
        self.bfhm_table = Some((table.to_owned(), config));
        Ok(())
    }

    /// Adopts already-built DRJN matrices without rebuilding. `config`
    /// must match the build.
    pub fn attach_drjn(&mut self, table: &str, config: DrjnConfig) -> Result<()> {
        self.engine
            .cluster()
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        self.refresh_candidates();
        self.drjn_table = Some((table.to_owned(), config));
        Ok(())
    }

    /// The ISL index table currently prepared or attached, if any. A
    /// serving layer uses this to drive cursor-based ISL execution
    /// ([`crate::cursor::open_isl_cursor`]) against the same index the
    /// executor would dispatch to.
    pub fn isl_table(&self) -> Option<&str> {
        self.isl_table.as_deref()
    }

    /// Clones this executor onto `cluster` — typically a
    /// [`Cluster::fork_metrics`] fork, giving the clone its own metering
    /// ledger over the same shared data. The clone adopts every attached
    /// index table, all tuning fields (`isl_config`, `execution_mode`,
    /// `objective`, ...), and the *same* shared statistics handle, so
    /// plans and maintained-write invalidations stay coherent across all
    /// forks while each fork's work is billed to its own ledger.
    pub fn fork_onto(&self, cluster: &Cluster) -> Result<RankJoinExecutor> {
        let mut fork = RankJoinExecutor::new(cluster, self.query.clone());
        fork.isl_config = self.isl_config;
        fork.write_back = self.write_back;
        fork.execution_mode = self.execution_mode;
        fork.objective = self.objective;
        fork.staleness_bound = self.staleness_bound;
        fork.replan_divergence = self.replan_divergence;
        fork.adaptive_force_switch_after = self.adaptive_force_switch_after;
        if let Some(table) = &self.ijlmr_table {
            fork.attach_ijlmr(table)?;
        }
        if let Some(table) = &self.isl_table {
            fork.attach_isl(table)?;
        }
        if let Some((table, config)) = &self.bfhm_table {
            fork.attach_bfhm(table, config.clone())?;
        }
        if let Some((table, config)) = &self.drjn_table {
            fork.attach_drjn(table, *config)?;
        }
        fork.attach_stats(self.stats_handle())?;
        Ok(fork)
    }

    /// The planner's candidate set: everything currently prepared, plus
    /// the index-free baselines. Served from the candidacy cache —
    /// positive and negative candidacy ("BFHM is not prepared") are
    /// evaluated once per preparation state and reused by every plan
    /// until a `prepare_*`/`attach_*` call bumps it, rather than being
    /// re-derived on each planning call.
    pub fn candidates(&self) -> Candidates {
        (*self.cached_candidates()).clone()
    }

    /// How many times the candidate set has actually been evaluated —
    /// stays flat across any number of plans while the preparation state
    /// is unchanged (the negative-candidacy caching contract).
    pub fn candidate_evaluations(&self) -> u64 {
        self.candidate_evaluations.load(Ordering::Relaxed)
    }

    fn cached_candidates(&self) -> Arc<Candidates> {
        let mut guard = self.candidates_cache.lock().expect("candidates cache");
        match guard.as_ref() {
            Some((config, cached)) if *config == self.isl_config => cached.clone(),
            _ => {
                self.candidate_evaluations.fetch_add(1, Ordering::Relaxed);
                let fresh = Arc::new(Candidates {
                    baselines: true,
                    ijlmr: self.ijlmr_table.is_some(),
                    isl: self.isl_table.as_ref().map(|_| self.isl_config),
                    bfhm: self.bfhm_table.as_ref().map(|(_, c)| c.clone()),
                    drjn: self.drjn_table.as_ref().map(|(_, c)| *c),
                });
                *guard = Some((self.isl_config, fresh.clone()));
                fresh
            }
        }
    }

    /// The ranked plan for the stored `k` (see [`RankJoinExecutor::plan_with_k`]).
    pub fn plan(&self) -> Result<Arc<Plan>> {
        self.plan_with_k(self.query.k)
    }

    /// Returns the ranked cost-based plan for this query at `k`,
    /// computing and caching it (keyed by `(k, execution mode,
    /// objective)`) on first use.
    ///
    /// Statistics come from the shared handle: the first call collects
    /// them through the metric-free admin path; maintained writes
    /// registered on the handle update them in place; and when the
    /// mutated fraction exceeds [`RankJoinExecutor::staleness_bound`] the
    /// handle transparently re-collects. Cached plans are versioned
    /// against the handle, so every maintained write invalidates exactly
    /// the plans it makes stale —
    /// [`Plan::explain`](crate::planner::Plan::explain) reports which
    /// statistics path the plan used.
    pub fn plan_with_k(&self, k: usize) -> Result<Arc<Plan>> {
        self.plan_with_k_mode(k, self.execution_mode)
    }

    /// [`RankJoinExecutor::plan_with_k`] under an explicit execution mode
    /// (predictions are mode-aware — see [`planner::plan`]). Shares the
    /// same cache, keyed by the mode.
    pub fn plan_with_k_mode(&self, k: usize, mode: ExecutionMode) -> Result<Arc<Plan>> {
        let key = (
            k,
            mode,
            self.objective,
            self.isl_config,
            self.staleness_bound.to_bits(),
        );
        // Fast path: a cached plan whose recorded handle version is still
        // current needs no statistics work at all (version equality means
        // no delta, invalidation, or collection happened since it was
        // computed — so the staleness verdict is unchanged too).
        if let Some((version, plan)) = self.plan_cache.lock().expect("plan cache").get(&key) {
            if *version == self.stats.version() {
                return Ok(plan.clone());
            }
        }
        let planned = self
            .stats
            .stats_for_planning(self.engine.cluster(), self.staleness_bound)?;
        let mut plan = planner::plan(
            &planned.stats,
            &self.query,
            k,
            self.engine.cluster().cost_model(),
            self.objective,
            &self.cached_candidates(),
            mode,
        );
        plan.stats_source = planned.source;
        let plan = Arc::new(plan);
        self.plan_cache
            .lock()
            .expect("plan cache")
            .insert(key, (planned.version, plan.clone()));
        Ok(plan)
    }

    /// Compares mode-aware plans for `k` under [`ExecutionMode::Serial`]
    /// and `Parallel` (pool width = the profile's worker-node count) and
    /// returns the cheaper `(mode, plan)` under the executor's objective
    /// — the planner *recommending a mode*, not just an algorithm. Serial
    /// wins ties (parallelism that buys nothing is pure thread overhead);
    /// under [`Objective::Dollars`] read counts never depend on the mode,
    /// so predicted time breaks the tie.
    pub fn recommend_mode(&self, k: usize) -> Result<(ExecutionMode, Arc<Plan>)> {
        let workers = self.engine.cluster().cost_model().worker_nodes.max(1);
        let serial = self.plan_with_k_mode(k, ExecutionMode::Serial)?;
        let parallel = self.plan_with_k_mode(k, ExecutionMode::Parallel { workers })?;
        let seconds = |p: &Arc<Plan>| p.ranked.first().map_or(f64::INFINITY, |e| e.seconds);
        if seconds(&parallel) < seconds(&serial) {
            Ok((ExecutionMode::Parallel { workers }, parallel))
        } else {
            Ok((ExecutionMode::Serial, serial))
        }
    }

    /// Executes `algorithm` with the stored `k`.
    pub fn execute(&self, algorithm: Algorithm) -> Result<QueryOutcome> {
        self.execute_with_k(algorithm, self.query.k)
    }

    /// Executes `algorithm` with an overridden `k`.
    ///
    /// `k = 0` short-circuits to an empty, zero-cost outcome for every
    /// algorithm (the [`RankJoinQuery::with_k`] contract) — no store
    /// access, no planning.
    pub fn execute_with_k(&self, algorithm: Algorithm, k: usize) -> Result<QueryOutcome> {
        if k == 0 {
            return Ok(QueryOutcome::new(
                algorithm.name(),
                Vec::new(),
                rj_store::metrics::MetricsSnapshot::default(),
            ));
        }
        let query = self.query.with_k(k);
        match algorithm {
            Algorithm::Auto => {
                let plan = self.plan_with_k(k)?;
                let best = plan.best().ok_or(RankJoinError::Internal(
                    "planner produced no candidate (baselines missing)",
                ))?;
                let rank = plan.ranked.len() as f64;
                // An Auto-chosen ISL runs under divergence observation —
                // the mid-query adaptive path (a no-op wrapper while the
                // observed descent tracks the plan's histograms). Every
                // other choice runs natively.
                let outcome = if best == Algorithm::Isl {
                    self.execute_adaptive_isl(&plan, k)?
                } else {
                    self.execute_with_k(best, k)?
                };
                Ok(outcome.with_extra("planner_candidates", rank))
            }
            Algorithm::Hive => hive::run(&self.engine, &query),
            Algorithm::Pig => pig::run(&self.engine, &query),
            Algorithm::Ijlmr => {
                let t = self
                    .ijlmr_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("ijlmr (unprepared)".into()))?;
                ijlmr::run(&self.engine, &query, t)
            }
            Algorithm::Isl => {
                let t = self
                    .isl_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("isl (unprepared)".into()))?;
                isl::run_with_mode(
                    self.engine.cluster(),
                    &query,
                    t,
                    self.isl_config,
                    self.execution_mode,
                )
            }
            Algorithm::Bfhm => {
                let (t, config) = self
                    .bfhm_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("bfhm (unprepared)".into()))?;
                bfhm::run_with_mode(
                    self.engine.cluster(),
                    &query,
                    t,
                    config,
                    self.write_back,
                    self.execution_mode,
                )
            }
            Algorithm::Drjn => {
                let (t, config) = self
                    .drjn_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("drjn (unprepared)".into()))?;
                drjn::run_with_mode(&self.engine, &query, t, config, self.execution_mode)
            }
        }
    }

    /// Runs an [`Algorithm::Auto`]-chosen ISL under divergence
    /// observation ([`crate::adaptive`]). While the observed per-batch
    /// score descent tracks the plan's histogram prediction this is
    /// exactly an ISL run; when the divergence crosses
    /// [`replan_divergence`](RankJoinExecutor::replan_divergence) it
    /// aborts, feeds the observation back through the shared statistics
    /// handle (version bump → every sharer's cached plans invalidate
    /// coherently), re-plans over the corrected statistics — live region
    /// counts re-read, candidates minus ISL — and switches, re-using the
    /// prefix's genuine results where the target permits (BFHM seeds its
    /// top-k accumulator with them). The wasted prefix, the re-plan, and
    /// the switched run are all charged to the one returned
    /// [`QueryOutcome`], whose `algorithm` reads `"ISL→<TARGET>"`.
    fn execute_adaptive_isl(&self, plan: &Plan, k: usize) -> Result<QueryOutcome> {
        let table = self
            .isl_table
            .as_deref()
            .ok_or_else(|| RankJoinError::MissingIndex("isl (unprepared)".into()))?;
        let query = self.query.with_k(k);
        let cluster = self.engine.cluster();
        let meter = QueryMeter::start(cluster.metrics());
        let mut observer = adaptive::DivergenceObserver::new(
            plan,
            self.replan_divergence,
            self.adaptive_force_switch_after,
        );
        match adaptive::run_isl(
            cluster,
            &query,
            table,
            self.isl_config,
            self.execution_mode,
            &mut observer,
        )? {
            AdaptiveIsl::Completed(outcome) => Ok(outcome.with_extra("adaptive_switched", 0.0)),
            AdaptiveIsl::Switch(req) => {
                // The mid-query correction delta: one version bump
                // invalidates every cached plan sharing the handle.
                self.stats
                    .apply_observed_descent(req.observed, req.divergence);
                // Re-plan from the corrected statistics.
                // `stats_for_planning` re-reads live region counts (they
                // drift under auto-splits with no delta describing it),
                // and the algorithm that just proved mispriced is not a
                // switch target.
                let planned = self
                    .stats
                    .stats_for_planning(cluster, self.staleness_bound)?;
                let mut switch_plan = planner::plan(
                    &planned.stats,
                    &self.query,
                    k,
                    cluster.cost_model(),
                    self.objective,
                    &self.candidates().without(Algorithm::Isl),
                    self.execution_mode,
                );
                switch_plan.stats_source = planned.source;
                let target = switch_plan.best().ok_or(RankJoinError::Internal(
                    "switch planner produced no candidate (baselines missing)",
                ))?;
                let switched = match target {
                    Algorithm::Bfhm => {
                        let (t, config) = self.bfhm_table.as_ref().ok_or_else(|| {
                            RankJoinError::MissingIndex("bfhm (unprepared)".into())
                        })?;
                        bfhm::run_seeded(
                            cluster,
                            &query,
                            t,
                            config,
                            self.write_back,
                            self.execution_mode,
                            &req.partial_results,
                        )?
                    }
                    other => self.execute_with_k(other, k)?,
                };
                let mut out = switched;
                out.algorithm = adaptive::switched_name(target);
                out.metrics = meter.finish();
                Ok(out
                    .with_extra("adaptive_switched", 1.0)
                    .with_extra("adaptive_divergence", req.divergence)
                    .with_extra("adaptive_switch_batches", req.batches as f64)
                    .with_extra("adaptive_wasted_kv_reads", req.prefix.kv_reads as f64))
            }
        }
    }

    /// Opens a pull-based [`RankedCursor`] over `algorithm` targeting the
    /// top `k_hint` results — the cursor-shaped sibling of
    /// [`RankJoinExecutor::execute_with_k`]. The cursor is pinned to the
    /// shared statistics handle's current version, so a paused state
    /// resumed through [`RankJoinExecutor::resume_cursor`] after any
    /// maintained write or re-preparation fails with
    /// [`RankJoinError::StaleCursor`] instead of silently mixing epochs.
    ///
    /// `Algorithm::Auto` plans once at open (priced at `k_hint`); an
    /// ISL-chosen plan runs under the same divergence observation as
    /// [`RankJoinExecutor::execute_with_k`]`(Auto, ..)`, and a mid-query
    /// abort becomes a *cursor swap*: the remaining ranks are served by
    /// the re-planned target, seeded with the prefix's genuine results
    /// and carrying its full metric charge.
    pub fn open_cursor(
        &self,
        algorithm: Algorithm,
        k_hint: usize,
    ) -> Result<Box<dyn RankedCursor>> {
        let query = self.query.with_k(k_hint);
        let cluster = self.engine.cluster();
        match algorithm {
            Algorithm::Auto => {
                // Plan first: the first plan may run the statistics pass,
                // which bumps the handle version the cursor pins.
                let plan = self.plan_with_k(k_hint)?;
                let best = plan.best().ok_or(RankJoinError::Internal(
                    "planner produced no candidate (baselines missing)",
                ))?;
                if best != Algorithm::Isl {
                    return self.open_cursor(best, k_hint);
                }
                let table = self
                    .isl_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("isl (unprepared)".into()))?;
                let pinned = Some(self.stats.version());
                let mut isl = IslCursor::open(cluster, &query, table, self.isl_config, pinned)?;
                let observer = Arc::new(Mutex::new(DivergenceObserver::new(
                    &plan,
                    self.replan_divergence,
                    self.adaptive_force_switch_after,
                )));
                let hook = observer.clone();
                isl.set_observer(Box::new(move |state, batches| {
                    hook.lock()
                        .expect("divergence observer")
                        .after_batch(state, batches)
                }));
                Ok(Box::new(self.auto_cursor(
                    query,
                    observer,
                    AutoInner::Isl(Box::new(isl)),
                    false,
                )))
            }
            Algorithm::Isl => {
                let t = self
                    .isl_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("isl (unprepared)".into()))?;
                let pinned = Some(self.stats.version());
                Ok(Box::new(IslCursor::open(
                    cluster,
                    &query,
                    t,
                    self.isl_config,
                    pinned,
                )?))
            }
            Algorithm::Bfhm => {
                let (t, config) = self
                    .bfhm_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("bfhm (unprepared)".into()))?;
                let pinned = Some(self.stats.version());
                Ok(Box::new(BfhmCursor::open(
                    cluster,
                    &query,
                    t,
                    config,
                    self.write_back,
                    self.execution_mode,
                    pinned,
                )?))
            }
            Algorithm::Drjn => {
                let (t, config) = self
                    .drjn_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("drjn (unprepared)".into()))?;
                let pinned = Some(self.stats.version());
                Ok(Box::new(DrjnCursor::open(
                    cluster,
                    &query,
                    t,
                    config,
                    self.execution_mode,
                    pinned,
                )?))
            }
            Algorithm::Hive => Ok(Box::new(MaterializedCursor::open(
                cluster,
                &query,
                MaterializedSource::Hive,
                "HIVE",
                Some(self.stats.version()),
            ))),
            Algorithm::Pig => Ok(Box::new(MaterializedCursor::open(
                cluster,
                &query,
                MaterializedSource::Pig,
                "PIG",
                Some(self.stats.version()),
            ))),
            Algorithm::Ijlmr => {
                let t = self
                    .ijlmr_table
                    .clone()
                    .ok_or_else(|| RankJoinError::MissingIndex("ijlmr (unprepared)".into()))?;
                Ok(Box::new(MaterializedCursor::open(
                    cluster,
                    &query,
                    MaterializedSource::Ijlmr(t),
                    "IJLMR",
                    Some(self.stats.version()),
                )))
            }
        }
    }

    /// Resumes a paused [`CursorState`] on this executor's cluster,
    /// refusing a statistics-version mismatch with
    /// [`RankJoinError::StaleCursor`] (see the [`CursorState`] coherence
    /// contract). `Algorithm::Auto` states re-arm the divergence
    /// observation against the (cached) plan when the switch has not
    /// happened yet; switched or non-adaptive states resume natively.
    pub fn resume_cursor(&self, state: CursorState) -> Result<Box<dyn RankedCursor>> {
        self.check_cursor_version(&state)?;
        match state.inner {
            StateInner::Auto(auto) => {
                match (auto.switched, auto.inner) {
                    (false, StateInner::Isl(core)) => {
                        let query = core.query.clone();
                        let k = core.meta.k;
                        let mut isl = IslCursor::resume(self.engine.cluster(), *core);
                        // Same statistics version (just checked), so this
                        // is the cached plan the cursor was opened under.
                        let plan = self.plan_with_k(k)?;
                        let observer = Arc::new(Mutex::new(DivergenceObserver::new(
                            &plan,
                            self.replan_divergence,
                            self.adaptive_force_switch_after,
                        )));
                        let hook = observer.clone();
                        isl.set_observer(Box::new(move |state, batches| {
                            hook.lock()
                                .expect("divergence observer")
                                .after_batch(state, batches)
                        }));
                        Ok(Box::new(self.auto_cursor(
                            query,
                            observer,
                            AutoInner::Isl(Box::new(isl)),
                            false,
                        )))
                    }
                    // Already switched (or a non-ISL inner): the adaptive
                    // context is spent — resume the driving state natively.
                    (_, inner) => CursorState { inner }.resume_on(self.engine.cluster()),
                }
            }
            inner => CursorState { inner }.resume_on(self.engine.cluster()),
        }
    }

    /// Re-targets a paused ISL state to a deeper `new_k` and resumes it —
    /// the partial-work warm start (see
    /// [`CursorState::resume_retargeted`]), with the same staleness check
    /// as [`RankJoinExecutor::resume_cursor`].
    pub fn resume_cursor_retargeted(
        &self,
        state: CursorState,
        new_k: usize,
    ) -> Result<Box<dyn RankedCursor>> {
        self.check_cursor_version(&state)?;
        state.resume_retargeted(self.engine.cluster(), new_k)
    }

    fn check_cursor_version(&self, state: &CursorState) -> Result<()> {
        if let Some(expected) = state.pinned_version() {
            let found = self.stats.version();
            if expected != found {
                return Err(RankJoinError::StaleCursor { expected, found });
            }
        }
        Ok(())
    }

    /// Prices the next page of a cursor-shaped execution: the predicted
    /// *marginal* cost of deepening `algorithm` from `k_consumed` ranks
    /// to `k_consumed + page` — plans priced per-batch instead of
    /// per-query. Served from the same versioned plan cache as
    /// [`RankJoinExecutor::plan_with_k`]; `Algorithm::Auto` prices the
    /// deeper plan's winner.
    pub fn price_page(
        &self,
        algorithm: Algorithm,
        k_consumed: usize,
        page: usize,
    ) -> Result<CostEstimate> {
        let to = k_consumed.saturating_add(page).max(1);
        let deep = self.plan_with_k(to)?;
        let priced = if algorithm == Algorithm::Auto {
            deep.best().ok_or(RankJoinError::Internal(
                "planner produced no candidate (baselines missing)",
            ))?
        } else {
            algorithm
        };
        let not_candidate =
            RankJoinError::Internal("algorithm is not a candidate under the current preparation");
        if k_consumed == 0 {
            return deep.estimate(priced).cloned().ok_or(not_candidate);
        }
        let shallow = self.plan_with_k(k_consumed)?;
        deep.marginal_from(&shallow, priced).ok_or(not_candidate)
    }

    /// Builds an [`AutoCursor`] carrying everything the mid-query switch
    /// needs, detached from `self`'s lifetime.
    fn auto_cursor(
        &self,
        query: RankJoinQuery,
        observer: Arc<Mutex<DivergenceObserver>>,
        inner: AutoInner,
        switched: bool,
    ) -> AutoCursor {
        AutoCursor {
            cluster: self.engine.cluster().clone(),
            query,
            stats: self.stats.clone(),
            candidates: self.candidates(),
            objective: self.objective,
            staleness_bound: self.staleness_bound,
            write_back: self.write_back,
            execution_mode: self.execution_mode,
            bfhm_table: self.bfhm_table.clone(),
            drjn_table: self.drjn_table.clone(),
            ijlmr_table: self.ijlmr_table.clone(),
            observer,
            inner,
            switched,
        }
    }
}

/// The currently-driving execution inside an [`AutoCursor`].
enum AutoInner {
    /// The planned ISL descent, under divergence observation.
    Isl(Box<IslCursor>),
    /// The post-switch target cursor.
    Swapped(Box<dyn RankedCursor>),
    /// Transient placeholder while a switch is in flight; observable only
    /// after a switch error already surfaced to the caller.
    Midswitch,
}

/// An [`Algorithm::Auto`] execution as a [`RankedCursor`]: plans at open,
/// pulls from the chosen driver, and turns the mid-query adaptive
/// re-planning of [`crate::adaptive`] into a cursor swap — when the
/// divergence observer aborts the ISL descent, the statistics are
/// corrected, a switch plan is computed, and the remaining ranks are
/// served by the target's cursor (BFHM seeded with the prefix's genuine
/// results; bulk targets parked behind a [`MaterializedCursor`]), all
/// inside the same `next_batch` call.
struct AutoCursor {
    cluster: Cluster,
    query: RankJoinQuery,
    stats: Arc<SharedTableStats>,
    candidates: Candidates,
    objective: Objective,
    staleness_bound: f64,
    write_back: WriteBackPolicy,
    execution_mode: ExecutionMode,
    bfhm_table: Option<(String, BfhmConfig)>,
    drjn_table: Option<(String, DrjnConfig)>,
    ijlmr_table: Option<String>,
    observer: Arc<Mutex<DivergenceObserver>>,
    inner: AutoInner,
    switched: bool,
}

impl AutoCursor {
    /// Performs the abort-and-switch on the consumed ISL cursor: correct
    /// the shared statistics, re-plan without ISL, and install the target
    /// cursor seeded/charged with the prefix. Mirrors
    /// [`RankJoinExecutor::execute_adaptive_isl`]'s switch arm.
    fn switch_now(&mut self, isl: IslCursor) -> Result<()> {
        let emitted = isl.emitted();
        let charged = isl.charged();
        let hrjn = isl.into_hrjn();
        let partial_results = hrjn.current_results();
        let divergence = self
            .observer
            .lock()
            .expect("divergence observer")
            .divergence();
        self.stats
            .apply_observed_descent(adaptive::observed_from(&hrjn), divergence);
        let planned = self
            .stats
            .stats_for_planning(&self.cluster, self.staleness_bound)?;
        let switch_plan = planner::plan(
            &planned.stats,
            &self.query,
            self.query.k,
            self.cluster.cost_model(),
            self.objective,
            &self.candidates.clone().without(Algorithm::Isl),
            self.execution_mode,
        );
        let target = switch_plan.best().ok_or(RankJoinError::Internal(
            "switch planner produced no candidate (baselines missing)",
        ))?;
        // The correction bump came from this very cursor, so the swapped
        // cursor pins the *new* version — its buffered prefix is still
        // coherent with the data (only the statistics moved).
        let pinned = Some(self.stats.version());
        let swapped: Box<dyn RankedCursor> = match target {
            Algorithm::Bfhm => {
                let (t, config) = self
                    .bfhm_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("bfhm (unprepared)".into()))?;
                let mut cur = BfhmCursor::open(
                    &self.cluster,
                    &self.query,
                    t,
                    config,
                    self.write_back,
                    self.execution_mode,
                    pinned,
                )?;
                cur.seed(&partial_results, emitted);
                cur.add_charge(charged);
                Box::new(cur)
            }
            other => {
                let source = match other {
                    Algorithm::Hive => MaterializedSource::Hive,
                    Algorithm::Pig => MaterializedSource::Pig,
                    Algorithm::Ijlmr => {
                        let t = self.ijlmr_table.clone().ok_or_else(|| {
                            RankJoinError::MissingIndex("ijlmr (unprepared)".into())
                        })?;
                        MaterializedSource::Ijlmr(t)
                    }
                    Algorithm::Drjn => {
                        let (t, config) = self.drjn_table.as_ref().ok_or_else(|| {
                            RankJoinError::MissingIndex("drjn (unprepared)".into())
                        })?;
                        MaterializedSource::Drjn(t.clone(), *config, self.execution_mode)
                    }
                    // `without(Isl)` excludes ISL; the planner never
                    // ranks Auto or Bfhm here (Bfhm handled above).
                    Algorithm::Isl | Algorithm::Auto | Algorithm::Bfhm => {
                        return Err(RankJoinError::Internal("impossible switch target"))
                    }
                };
                let mut meta = CursorMeta::new(self.query.k, pinned);
                meta.emitted = emitted;
                meta.charged = charged;
                Box::new(MaterializedCursor::resume(
                    &self.cluster,
                    MaterializedCore {
                        meta,
                        query: self.query.clone(),
                        source,
                        results: None,
                        algorithm: adaptive::switched_name(other),
                    },
                ))
            }
        };
        self.inner = AutoInner::Swapped(swapped);
        self.switched = true;
        Ok(())
    }
}

impl RankedCursor for AutoCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        let ledger = self.cluster.metrics();
        let before = ledger.snapshot();
        let mut out = match &mut self.inner {
            AutoInner::Isl(cursor) => {
                let batch = cursor.next_batch(n, policy)?;
                if cursor.observer_aborted() {
                    let AutoInner::Isl(isl) =
                        std::mem::replace(&mut self.inner, AutoInner::Midswitch)
                    else {
                        unreachable!("just matched Isl");
                    };
                    self.switch_now(*isl)?;
                    let mut merged = batch;
                    let want_more = n.saturating_sub(merged.results.len());
                    if want_more > 0 && merged.stopped.is_none() {
                        let AutoInner::Swapped(swapped) = &mut self.inner else {
                            unreachable!("switch_now installed the target");
                        };
                        let more = swapped.next_batch(want_more, policy)?;
                        merged.results.extend(more.results);
                        merged.done = more.done;
                        merged.stopped = more.stopped;
                    }
                    merged
                } else {
                    batch
                }
            }
            AutoInner::Swapped(cursor) => cursor.next_batch(n, policy)?,
            AutoInner::Midswitch => {
                return Err(RankJoinError::Internal(
                    "Auto cursor unusable after a failed switch",
                ))
            }
        };
        // The whole call — prefix pull, statistics correction, re-plan,
        // and target pull — is this page's consumed delta.
        out.metrics = ledger.snapshot().delta_since(&before);
        Ok(out)
    }

    fn pause(self: Box<Self>) -> CursorState {
        let inner = match self.inner {
            AutoInner::Isl(cursor) => cursor.pause().inner,
            AutoInner::Swapped(cursor) => cursor.pause().inner,
            // Unreachable without a prior switch error; park an empty,
            // already-done buffer so pause stays infallible.
            AutoInner::Midswitch => StateInner::Materialized(Box::new(MaterializedCore {
                meta: CursorMeta::new(0, None),
                query: self.query.clone(),
                source: MaterializedSource::Buffered,
                results: Some(Vec::new()),
                algorithm: "AUTO",
            })),
        };
        CursorState {
            inner: StateInner::Auto(Box::new(AutoCore {
                inner,
                switched: self.switched,
            })),
        }
    }

    fn emitted(&self) -> usize {
        match &self.inner {
            AutoInner::Isl(c) => c.emitted(),
            AutoInner::Swapped(c) => c.emitted(),
            AutoInner::Midswitch => 0,
        }
    }

    fn consumed_depth(&self) -> u64 {
        match &self.inner {
            AutoInner::Isl(c) => c.consumed_depth(),
            AutoInner::Swapped(c) => c.consumed_depth(),
            AutoInner::Midswitch => 0,
        }
    }

    fn charged(&self) -> rj_store::metrics::MetricsSnapshot {
        match &self.inner {
            AutoInner::Isl(c) => c.charged(),
            AutoInner::Swapped(c) => c.charged(),
            AutoInner::Midswitch => rj_store::metrics::MetricsSnapshot::default(),
        }
    }

    fn is_done(&self) -> bool {
        match &self.inner {
            AutoInner::Isl(c) => RankedCursor::is_done(c.as_ref()),
            AutoInner::Swapped(c) => c.is_done(),
            AutoInner::Midswitch => false,
        }
    }

    fn algorithm(&self) -> &'static str {
        "AUTO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::statsmaint::StatsMaintainer;
    use crate::testsupport::running_example_cluster;

    #[test]
    fn all_algorithms_agree_via_the_facade() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_ijlmr().unwrap();
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();

        let want = oracle::topk(&c, &q).unwrap();
        for algo in Algorithm::ALL {
            let got = ex.execute(algo).unwrap();
            assert_eq!(got.results, want, "{}", algo.name());
            assert_eq!(got.algorithm, algo.name());
        }
    }

    #[test]
    fn parallel_mode_matches_serial_results_and_counted_costs() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();
        for algo in [Algorithm::Isl, Algorithm::Bfhm, Algorithm::Drjn] {
            ex.execution_mode = ExecutionMode::Serial;
            let serial = ex.execute(algo).unwrap();
            ex.execution_mode = ExecutionMode::Parallel { workers: 4 };
            let parallel = ex.execute(algo).unwrap();
            let name = algo.name();
            assert_eq!(parallel.results, serial.results, "{name}: results");
            assert_eq!(
                parallel.metrics.kv_reads, serial.metrics.kv_reads,
                "{name}: dollar cost must not depend on execution mode"
            );
            assert_eq!(
                parallel.metrics.network_bytes, serial.metrics.network_bytes,
                "{name}: bandwidth must not depend on execution mode"
            );
            assert_eq!(
                parallel.metrics.rpc_calls, serial.metrics.rpc_calls,
                "{name}: RPC count must not depend on execution mode"
            );
            assert!(
                parallel.metrics.sim_seconds <= serial.metrics.sim_seconds + 1e-9,
                "{name}: parallel wall-clock must not exceed serial"
            );
            assert!(
                parallel.metrics.sim_seconds <= parallel.metrics.node_seconds + 1e-9,
                "{name}: wall <= total node-seconds"
            );
        }
    }

    #[test]
    fn unprepared_index_errors() {
        let (c, q) = running_example_cluster();
        let ex = RankJoinExecutor::new(&c, q);
        for algo in [
            Algorithm::Ijlmr,
            Algorithm::Isl,
            Algorithm::Bfhm,
            Algorithm::Drjn,
        ] {
            assert!(matches!(
                ex.execute(algo).unwrap_err(),
                RankJoinError::MissingIndex(_)
            ));
            assert!(algo.needs_index());
        }
        assert!(!Algorithm::Hive.needs_index());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["HIVE", "PIG", "IJLMR", "ISL", "BFHM", "DRJN"]);
        assert_eq!(Algorithm::Auto.name(), "AUTO");
        assert!(!Algorithm::Auto.needs_index());
    }

    #[test]
    fn auto_matches_oracle_and_caches_plans() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        for k in [1, 3, 10, 38] {
            let qk = q.with_k(k);
            let got = ex.execute_with_k(Algorithm::Auto, k).unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
            assert!(got.extra("planner_candidates").unwrap() >= 4.0);
        }
        // Cached: the same (k, mode, objective) returns the same Arc.
        let p1 = ex.plan_with_k(3).unwrap();
        let p2 = ex.plan_with_k(3).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "plan must be cached");
        // Different objective → different cache slot.
        ex.objective = crate::planner::Objective::Dollars;
        let p3 = ex.plan_with_k(3).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn auto_without_any_index_falls_back_to_baselines() {
        let (c, q) = running_example_cluster();
        let ex = RankJoinExecutor::new(&c, q.clone());
        let got = ex.execute(Algorithm::Auto).unwrap();
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
        let plan = ex.plan().unwrap();
        assert!(matches!(
            plan.best().unwrap(),
            Algorithm::Hive | Algorithm::Pig
        ));
    }

    #[test]
    fn k_zero_short_circuits_every_algorithm() {
        let (c, q) = running_example_cluster();
        let ex = RankJoinExecutor::new(&c, q);
        // No index prepared, yet k = 0 is answerable for all of them.
        for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
            let got = ex.execute_with_k(algo, 0).unwrap();
            assert!(got.results.is_empty(), "{}", algo.name());
            assert_eq!(got.metrics.kv_reads, 0, "{}", algo.name());
            assert_eq!(got.metrics.sim_seconds, 0.0, "{}", algo.name());
        }
    }

    #[test]
    fn re_preparation_replaces_the_index() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        let kvs_first = c.table(&isl::index_table_name(&q)).unwrap().kv_count();
        // Second prepare must not error, must not double entries, and the
        // query must stay correct.
        ex.prepare_isl().unwrap();
        let kvs_second = c.table(&isl::index_table_name(&q)).unwrap().kv_count();
        assert_eq!(kvs_first, kvs_second, "rebuild must replace, not append");
        assert_eq!(
            ex.execute(Algorithm::Isl).unwrap().results,
            oracle::topk(&c, &q).unwrap()
        );
        // Same for the other three index builders.
        ex.prepare_ijlmr().unwrap();
        ex.prepare_ijlmr().unwrap();
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        };
        ex.prepare_bfhm(config.clone()).unwrap();
        ex.prepare_bfhm(config).unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        for algo in Algorithm::ALL {
            assert_eq!(ex.execute(algo).unwrap().results, want, "{}", algo.name());
        }
    }

    #[test]
    fn shared_stats_handle_collects_once_across_executors() {
        let (c, q) = running_example_cluster();
        let mut builder = RankJoinExecutor::new(&c, q.clone());
        builder.prepare_isl().unwrap();
        builder.prepare_ijlmr().unwrap();
        let _ = builder.plan().unwrap();
        assert_eq!(builder.stats_handle().collections(), 1);

        // A fork_metrics clone serving the same pair adopts the handle:
        // no second statistics pass, observable on both the collection
        // counter and the admin-read ledger.
        let fork = c.fork_metrics();
        let mut other = RankJoinExecutor::new(&fork, q.clone());
        other.attach_isl(&isl::index_table_name(&q)).unwrap();
        other.attach_stats(builder.stats_handle()).unwrap();
        let admin_before = fork.metrics().snapshot().admin_kv_reads;
        let plan = other.plan().unwrap();
        assert_eq!(builder.stats_handle().collections(), 1);
        assert_eq!(fork.metrics().snapshot().admin_kv_reads, admin_before);
        assert!(plan.best().is_some());

        // Adopting a further index after sharing changes this executor's
        // candidate set, not the base tables — the shared snapshot must
        // survive (no re-collection for anyone).
        other.attach_ijlmr(&ijlmr::index_table_name(&q)).unwrap();
        let plan = other.plan().unwrap();
        assert_eq!(builder.stats_handle().collections(), 1);
        assert_eq!(fork.metrics().snapshot().admin_kv_reads, admin_before);
        assert!(plan.estimate(Algorithm::Ijlmr).is_some());

        // Re-preparing through one executor invalidates coherently: the
        // other's next plan comes from a fresh pass.
        builder.prepare_isl().unwrap();
        let _ = other.plan().unwrap();
        assert_eq!(builder.stats_handle().collections(), 2);
    }

    #[test]
    fn tightening_the_staleness_bound_takes_effect_immediately() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        let _ = ex.plan().unwrap();
        // One mutation on an 11-tuple side ≈ 9% staleness.
        ex.stats_handle()
            .apply_delta(&crate::statsmaint::StatsDelta {
                table: q.left.table.clone(),
                join_col: q.left.join_col.clone(),
                score_col: q.left.score_col.clone(),
                op: crate::statsmaint::DeltaOp::Insert,
                join_fingerprint: 7,
                score: 0.5,
                entry_bytes: 32.0,
            });
        let p1 = ex.plan().unwrap();
        assert!(matches!(
            p1.stats_source,
            crate::planner::StatsSource::Maintained { .. }
        ));
        // Tightening the public bound must not be masked by the cached
        // plan: the next plan re-collects.
        ex.staleness_bound = 0.01;
        let p2 = ex.plan().unwrap();
        assert!(
            matches!(
                p2.stats_source,
                crate::planner::StatsSource::Recollected { .. }
            ),
            "bound change ignored: {:?}",
            p2.stats_source
        );
        assert_eq!(ex.stats_handle().collections(), 2);
    }

    #[test]
    fn attach_stats_rejects_a_different_query_pair() {
        let (c, q) = running_example_cluster();
        let ex = RankJoinExecutor::new(&c, q.clone());
        let mut swapped = q.clone();
        std::mem::swap(&mut swapped.left, &mut swapped.right);
        let mut other = RankJoinExecutor::new(&c, swapped);
        assert!(other.attach_stats(ex.stats_handle()).is_err());
    }

    #[test]
    fn auto_isl_with_truthful_stats_never_switches() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        // Fresh statistics are exact, so the observed descent tracks the
        // predicted one and the adaptive wrapper is a no-op ISL run.
        let plan = ex.plan().unwrap();
        if plan.best() == Some(Algorithm::Isl) {
            let got = ex.execute(Algorithm::Auto).unwrap();
            assert_eq!(got.algorithm, "ISL");
            assert_eq!(got.extra("adaptive_switched"), Some(0.0));
            assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
        }
        assert!(!ex.stats_handle().midquery_corrected());
    }

    #[test]
    fn forced_switch_returns_the_oracle_answer_and_marks_the_outcome() {
        // EC2 constants: the 12s MR job startup guarantees Auto picks the
        // only coordinator candidate (ISL) at 11-tuple scale.
        let (c, q) = crate::testsupport::running_example_cluster_with(
            rj_store::costmodel::CostModel::ec2(8),
        );
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        ex.isl_config = IslConfig::uniform(2);
        ex.adaptive_force_switch_after = Some(1);
        let plan = ex.plan().unwrap();
        assert_eq!(
            plan.best(),
            Some(Algorithm::Isl),
            "precondition: Auto must pick ISL"
        );
        let got = ex.execute(Algorithm::Auto).unwrap();
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
        assert_eq!(got.extra("adaptive_switched"), Some(1.0));
        assert!(got.algorithm.starts_with("ISL→"), "{}", got.algorithm);
        assert!(got.extra("adaptive_wasted_kv_reads").unwrap() > 0.0);
        // The correction delta landed on the shared handle and marked it.
        assert!(ex.stats_handle().midquery_corrected());
    }

    #[test]
    fn candidate_evaluations_stay_flat_until_preparation_changes() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        let evals = ex.candidate_evaluations();
        for k in [1, 2, 3, 5, 8] {
            let _ = ex.plan_with_k(k).unwrap();
            let _ = ex.candidates();
        }
        assert_eq!(
            ex.candidate_evaluations(),
            evals + 1,
            "negative candidacy (BFHM/DRJN unprepared) must be cached, \
             not re-checked per plan"
        );
        // A preparation change is the re-check signal.
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        let _ = ex.plan().unwrap();
        assert_eq!(ex.candidate_evaluations(), evals + 2);
        assert!(ex.candidates().bfhm.is_some());
        // Mutating the public ISL config must not serve a stale cache.
        ex.isl_config = IslConfig::uniform(7);
        assert_eq!(ex.candidates().isl, Some(IslConfig::uniform(7)));
    }

    #[test]
    fn recommend_mode_prefers_parallel_only_when_it_pays() {
        let (c, q) = crate::testsupport::running_example_cluster_with(
            rj_store::costmodel::CostModel::ec2(8),
        );
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        // Baselines only: MR jobs model their own parallelism, the mode
        // changes nothing, and serial wins the tie.
        let (mode, _) = ex.recommend_mode(3).unwrap();
        assert_eq!(mode, ExecutionMode::Serial);
        // With BFHM the only coordinator candidate, it wins both modes
        // (MR startup dwarfs it) and its reverse-get share fans out — the
        // parallel plan is strictly cheaper in predicted time.
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        let (mode, plan) = ex.recommend_mode(3).unwrap();
        assert!(mode.is_parallel(), "got {mode:?}");
        assert_eq!(plan.mode, mode);
        assert_eq!(plan.best(), Some(Algorithm::Bfhm));
        assert!(plan.explain().contains("parallel"));
    }

    #[test]
    fn attach_adopts_existing_indices() {
        let (c, q) = running_example_cluster();
        let mut builder = RankJoinExecutor::new(&c, q.clone());
        builder.prepare_isl().unwrap();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        assert!(ex.attach_isl("no_such_table").is_err());
        ex.attach_isl(&isl::index_table_name(&q)).unwrap();
        assert_eq!(
            ex.execute(Algorithm::Isl).unwrap().results,
            oracle::topk(&c, &q).unwrap()
        );
    }
}
