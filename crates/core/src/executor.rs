//! A uniform entry point over all six rank-join algorithms.
//!
//! The executor owns the MapReduce engine handle, remembers which indices
//! have been built for a query pair, and dispatches [`Algorithm`] choices
//! to the right module — the shape the experiment harness and the
//! examples drive everything through.

use rj_mapreduce::MapReduceEngine;
use rj_store::cluster::Cluster;
use rj_store::parallel::ExecutionMode;

use crate::bfhm::{self, maintenance::WriteBackPolicy, BfhmConfig};
use crate::drjn::{self, DrjnConfig};
use crate::error::{RankJoinError, Result};
use crate::indexutil::BuildStats;
use crate::isl::{self, IslConfig};
use crate::query::RankJoinQuery;
use crate::stats::QueryOutcome;
use crate::{hive, ijlmr, pig};

/// The algorithm suite of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Hive-style baseline (§3.1).
    Hive,
    /// Pig-style baseline (§3.1).
    Pig,
    /// Inverse Join List MapReduce rank join (§4.1).
    Ijlmr,
    /// Inverse Score List rank join (§4.2).
    Isl,
    /// Bloom Filter Histogram Matrix rank join (§5).
    Bfhm,
    /// DRJN comparator (§7.1).
    Drjn,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Hive,
        Algorithm::Pig,
        Algorithm::Ijlmr,
        Algorithm::Isl,
        Algorithm::Bfhm,
        Algorithm::Drjn,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Hive => "HIVE",
            Algorithm::Pig => "PIG",
            Algorithm::Ijlmr => "IJLMR",
            Algorithm::Isl => "ISL",
            Algorithm::Bfhm => "BFHM",
            Algorithm::Drjn => "DRJN",
        }
    }

    /// Whether the algorithm needs a pre-built index.
    pub fn needs_index(&self) -> bool {
        !matches!(self, Algorithm::Hive | Algorithm::Pig)
    }
}

/// Facade over engine + indices for one query pair.
pub struct RankJoinExecutor {
    engine: MapReduceEngine,
    query: RankJoinQuery,
    ijlmr_table: Option<String>,
    isl_table: Option<String>,
    bfhm_table: Option<(String, BfhmConfig)>,
    drjn_table: Option<(String, DrjnConfig)>,
    /// ISL batch sizes used at query time.
    pub isl_config: IslConfig,
    /// BFHM write-back policy used at query time.
    pub write_back: WriteBackPolicy,
    /// How multi-region reads execute (ISL, BFHM, and DRJN honour this;
    /// the MapReduce-driven algorithms model task parallelism already).
    /// Defaults to [`ExecutionMode::Serial`], whose results *and* counted
    /// metrics the parallel mode reproduces exactly.
    pub execution_mode: ExecutionMode,
}

impl RankJoinExecutor {
    /// Creates an executor for `query` on `cluster`.
    pub fn new(cluster: &Cluster, query: RankJoinQuery) -> Self {
        RankJoinExecutor {
            engine: MapReduceEngine::new(cluster.clone()),
            query,
            ijlmr_table: None,
            isl_table: None,
            bfhm_table: None,
            drjn_table: None,
            isl_config: IslConfig::default(),
            write_back: WriteBackPolicy::Off,
            execution_mode: ExecutionMode::Serial,
        }
    }

    /// Sets the execution mode, builder-style.
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// The underlying engine (for direct module calls).
    pub fn engine(&self) -> &MapReduceEngine {
        &self.engine
    }

    /// The query this executor serves.
    pub fn query(&self) -> &RankJoinQuery {
        &self.query
    }

    /// Builds the IJLMR index.
    pub fn prepare_ijlmr(&mut self) -> Result<BuildStats> {
        let table = ijlmr::index_table_name(&self.query);
        let stats = ijlmr::build(&self.engine, &self.query, &table)?;
        self.ijlmr_table = Some(table);
        Ok(stats)
    }

    /// Builds the ISL index.
    pub fn prepare_isl(&mut self) -> Result<BuildStats> {
        let table = isl::index_table_name(&self.query);
        let stats = isl::build(&self.engine, &self.query, &table)?;
        self.isl_table = Some(table);
        Ok(stats)
    }

    /// Builds the BFHM index.
    pub fn prepare_bfhm(&mut self, config: BfhmConfig) -> Result<BuildStats> {
        let table = bfhm::index_table_name(&self.query);
        let (stats, _m) = bfhm::build_pair(&self.engine, &self.query, &table, &config)?;
        self.bfhm_table = Some((table, config));
        Ok(stats)
    }

    /// Builds the DRJN matrices.
    pub fn prepare_drjn(&mut self, config: DrjnConfig) -> Result<BuildStats> {
        let table = drjn::index_table_name(&self.query);
        let stats = drjn::build_pair(&self.engine, &self.query, &table, &config)?;
        self.drjn_table = Some((table, config));
        Ok(stats)
    }

    /// Executes `algorithm` with the stored `k`.
    pub fn execute(&self, algorithm: Algorithm) -> Result<QueryOutcome> {
        self.execute_with_k(algorithm, self.query.k)
    }

    /// Executes `algorithm` with an overridden `k`.
    pub fn execute_with_k(&self, algorithm: Algorithm, k: usize) -> Result<QueryOutcome> {
        let query = self.query.with_k(k);
        match algorithm {
            Algorithm::Hive => hive::run(&self.engine, &query),
            Algorithm::Pig => pig::run(&self.engine, &query),
            Algorithm::Ijlmr => {
                let t = self
                    .ijlmr_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("ijlmr (unprepared)".into()))?;
                ijlmr::run(&self.engine, &query, t)
            }
            Algorithm::Isl => {
                let t = self
                    .isl_table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("isl (unprepared)".into()))?;
                isl::run_with_mode(
                    self.engine.cluster(),
                    &query,
                    t,
                    self.isl_config,
                    self.execution_mode,
                )
            }
            Algorithm::Bfhm => {
                let (t, config) = self
                    .bfhm_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("bfhm (unprepared)".into()))?;
                bfhm::run_with_mode(
                    self.engine.cluster(),
                    &query,
                    t,
                    config,
                    self.write_back,
                    self.execution_mode,
                )
            }
            Algorithm::Drjn => {
                let (t, config) = self
                    .drjn_table
                    .as_ref()
                    .ok_or_else(|| RankJoinError::MissingIndex("drjn (unprepared)".into()))?;
                drjn::run_with_mode(&self.engine, &query, t, config, self.execution_mode)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::testsupport::running_example_cluster;

    #[test]
    fn all_algorithms_agree_via_the_facade() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_ijlmr().unwrap();
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();

        let want = oracle::topk(&c, &q).unwrap();
        for algo in Algorithm::ALL {
            let got = ex.execute(algo).unwrap();
            assert_eq!(got.results, want, "{}", algo.name());
            assert_eq!(got.algorithm, algo.name());
        }
    }

    #[test]
    fn parallel_mode_matches_serial_results_and_counted_costs() {
        let (c, q) = running_example_cluster();
        let mut ex = RankJoinExecutor::new(&c, q.clone());
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        })
        .unwrap();
        ex.prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();
        for algo in [Algorithm::Isl, Algorithm::Bfhm, Algorithm::Drjn] {
            ex.execution_mode = ExecutionMode::Serial;
            let serial = ex.execute(algo).unwrap();
            ex.execution_mode = ExecutionMode::Parallel { workers: 4 };
            let parallel = ex.execute(algo).unwrap();
            let name = algo.name();
            assert_eq!(parallel.results, serial.results, "{name}: results");
            assert_eq!(
                parallel.metrics.kv_reads, serial.metrics.kv_reads,
                "{name}: dollar cost must not depend on execution mode"
            );
            assert_eq!(
                parallel.metrics.network_bytes, serial.metrics.network_bytes,
                "{name}: bandwidth must not depend on execution mode"
            );
            assert_eq!(
                parallel.metrics.rpc_calls, serial.metrics.rpc_calls,
                "{name}: RPC count must not depend on execution mode"
            );
            assert!(
                parallel.metrics.sim_seconds <= serial.metrics.sim_seconds + 1e-9,
                "{name}: parallel wall-clock must not exceed serial"
            );
            assert!(
                parallel.metrics.sim_seconds <= parallel.metrics.node_seconds + 1e-9,
                "{name}: wall <= total node-seconds"
            );
        }
    }

    #[test]
    fn unprepared_index_errors() {
        let (c, q) = running_example_cluster();
        let ex = RankJoinExecutor::new(&c, q);
        for algo in [
            Algorithm::Ijlmr,
            Algorithm::Isl,
            Algorithm::Bfhm,
            Algorithm::Drjn,
        ] {
            assert!(matches!(
                ex.execute(algo).unwrap_err(),
                RankJoinError::MissingIndex(_)
            ));
            assert!(algo.needs_index());
        }
        assert!(!Algorithm::Hive.needs_index());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["HIVE", "PIG", "IJLMR", "ISL", "BFHM", "DRJN"]);
    }
}
