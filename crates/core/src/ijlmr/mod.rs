//! IJLMR — Inverse Join List MapReduce rank join (paper §4.1).
//!
//! The IJLMR index is "a space-optimized form of ... inverted lists, where
//! index values consist of a list of tuples each being a combination of
//! the row key and score value of the indexed row" (Fig. 2): index rows
//! are keyed by **join value**, with one column family per indexed
//! relation, so co-joining tuples of both relations live side by side in
//! the same row — on the same region server.
//!
//! Query processing (§4.1.2) is a single MapReduce job: each mapper scans
//! its index region, computes the per-join-value Cartesian products, keeps
//! a running top-k, and emits only that list; a single reducer merges the
//! local lists. Network cost is tiny (k tuples per mapper), but the
//! mappers "still have to scan through the entire input dataset, weighing
//! on the dollar-cost of query processing".

mod index;
mod query;

pub use index::{build, index_table_name, IjlmrBuildStats};
pub use query::run;
