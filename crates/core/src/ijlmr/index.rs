//! IJLMR index creation (paper Algorithm 1).
//!
//! One map-only job per indexed relation: each mapper scans its region and
//! puts `{join value: base row key, score}` into the shared index table,
//! under the relation's column family. "The IJLMR index is built with a
//! map-only MapReduce job — a special type of MapReduce job where there
//! are no reducers and the output of mappers is written directly into the
//! NoSQL store" (§4.1.1).

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_store::cell::Mutation;

use crate::error::Result;
use crate::indexutil::{sample_join_splits, BuildStats};
use crate::query::{JoinSide, RankJoinQuery};

/// Build statistics for the IJLMR index.
pub type IjlmrBuildStats = BuildStats;

/// Canonical index-table name for a query pair.
pub fn index_table_name(query: &RankJoinQuery) -> String {
    format!("ijlmr__{}__{}", query.left.label, query.right.label)
}

struct IndexMapper {
    side: JoinSide,
}

impl Mapper for IndexMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        // Index row: key = join value; column = {CF: side label,
        // qualifier: base row key, value: score}.
        out.put(
            join_value,
            Mutation::put(&self.side.label, &row.key, score.to_be_bytes().to_vec()),
        );
    }
}

/// Builds the IJLMR index for both sides of `query` into `table`
/// (created here, pre-split from a sampled join-value distribution).
/// Returns build statistics; the index table's disk size is in
/// [`BuildStats::index_bytes`].
pub fn build(engine: &MapReduceEngine, query: &RankJoinQuery, table: &str) -> Result<BuildStats> {
    let cluster = engine.cluster();
    let pieces = cluster.num_nodes() * 2;
    // Sample the (larger-domain) left side for split points; both sides
    // share the join-value key space by definition of the equi-join.
    let splits = sample_join_splits(engine, &query.left, pieces)?;
    cluster.create_table_with_splits(
        table,
        &[query.left.label.as_str(), query.right.label.as_str()],
        &splits,
    )?;

    let mut stats = BuildStats::default();
    for side in [&query.left, &query.right] {
        let families = [side.join_col.0.as_str(), side.score_col.0.as_str()];
        let spec = JobSpec::new(
            &format!("ijlmr-build-{}", side.label),
            JobInput::Tables(vec![TableInput::projected(&side.table, &families)]),
            0,
        )
        .put_table(table);
        let side_cl = side.clone();
        let result = engine.run(
            &spec,
            &move || {
                Box::new(IndexMapper {
                    side: side_cl.clone(),
                })
            },
            None,
            None,
        )?;
        stats.absorb(result.counters);
    }
    stats.index_bytes = cluster.table(table)?.disk_size();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::ScoreFn;
    use rj_store::cluster::Cluster;
    use rj_store::costmodel::CostModel;
    use rj_store::scan::Scan;

    fn setup() -> (Cluster, RankJoinQuery) {
        let c = Cluster::new(2, CostModel::test());
        c.create_table("l", &["d"]).unwrap();
        c.create_table("r", &["d"]).unwrap();
        let client = c.client();
        let data: &[(&str, &str, &[u8], f64)] = &[
            ("l", "l1", b"a", 0.9),
            ("l", "l2", b"b", 0.8),
            ("r", "r1", b"a", 0.7),
            ("r", "r2", b"a", 0.6),
            ("r", "r3", b"c", 0.5),
        ];
        for (t, k, j, s) in data {
            client
                .mutate_row(
                    t,
                    k.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        let q = RankJoinQuery::new(
            JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
            2,
            ScoreFn::Sum,
        );
        (c, q)
    }

    #[test]
    fn build_creates_inverted_lists() {
        let (c, q) = setup();
        let engine = MapReduceEngine::new(c.clone());
        let stats = build(&engine, &q, "ijlmr_idx").unwrap();
        assert_eq!(stats.jobs.len(), 2, "one map-only job per side");
        assert!(stats.index_bytes > 0);

        // Join value "a" row: 1 left entry + 2 right entries.
        let client = c.client();
        let row = client.get("ijlmr_idx", b"a").unwrap().expect("row a");
        assert_eq!(row.family_cells("L").count(), 1);
        assert_eq!(row.family_cells("R").count(), 2);
        // Score roundtrip.
        let score = f64::from_be_bytes(row.value("L", b"l1").unwrap().as_ref().try_into().unwrap());
        assert_eq!(score, 0.9);

        // "c" appears only on the right.
        let row_c = client.get("ijlmr_idx", b"c").unwrap().expect("row c");
        assert_eq!(row_c.family_cells("L").count(), 0);
        assert_eq!(row_c.family_cells("R").count(), 1);

        // Total index entries = total base tuples.
        let n: usize = client
            .scan("ijlmr_idx", Scan::new())
            .unwrap()
            .map(|r| r.cells.len())
            .sum();
        assert_eq!(n, 5);
    }

    #[test]
    fn index_name_is_stable() {
        let (_c, q) = setup();
        assert_eq!(index_table_name(&q), "ijlmr__L__R");
    }
}
