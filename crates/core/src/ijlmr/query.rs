//! IJLMR query processing (paper Algorithm 2).
//!
//! A single MapReduce job over the index table: mappers compute the
//! Cartesian product of the two column families **within each row** (all
//! cells of one row share one join value), maintain an in-memory top-k,
//! and emit only their final local list; a single reducer merges the local
//! lists into the global top-k.

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper, Reducer};
use rj_mapreduce::MapReduceEngine;
use rj_store::metrics::QueryMeter;

use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};
use crate::score::ScoreFn;
use crate::stats::QueryOutcome;

struct TopKMapper {
    left_family: String,
    score_fn: ScoreFn,
    top: TopK,
}

impl Mapper for TopKMapper {
    fn map(&mut self, input: InputRecord<'_>, _out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        // Partition the row's cells into sides; qualifiers are base row
        // keys, values are f64 BE scores.
        let mut left: Vec<(&[u8], f64)> = Vec::new();
        let mut right: Vec<(&[u8], f64)> = Vec::new();
        for cell in &row.cells {
            let Some(bytes) = cell.value.as_ref().get(..8) else {
                continue;
            };
            let score = f64::from_be_bytes(bytes.try_into().expect("8 bytes"));
            if cell.family == self.left_family {
                left.push((&cell.qualifier, score));
            } else {
                right.push((&cell.qualifier, score));
            }
        }
        for (lk, ls) in &left {
            for (rk, rs) in &right {
                self.top.offer(JoinTuple {
                    left_key: lk.to_vec(),
                    right_key: rk.to_vec(),
                    join_value: row.key.clone(),
                    left_score: *ls,
                    right_score: *rs,
                    inner: Vec::new(),
                    score: self.score_fn.combine(*ls, *rs),
                });
            }
        }
    }

    fn finish(&mut self, out: &mut Emitter) {
        // Emit the local top-k once the region is exhausted (§4.1.2: "the
        // mappers store in-memory only the top-k ranking result tuples,
        // and emit their final top-k list when their input data is
        // exhausted").
        for t in self.top.iter() {
            out.emit(b"topk".to_vec(), codec::encode_join_tuple(t));
        }
    }
}

struct MergeReducer {
    k: usize,
}

impl Reducer for MergeReducer {
    fn reduce(&mut self, _key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let mut top = TopK::new(self.k);
        for v in values {
            if let Ok(t) = codec::decode_join_tuple(v) {
                top.offer(t);
            }
        }
        for t in top.iter() {
            out.emit(b"result".to_vec(), codec::encode_join_tuple(t));
        }
    }
}

/// Executes the IJLMR rank join over a previously built index table.
pub fn run(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    index_table: &str,
) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "IJLMR",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    engine
        .cluster()
        .table(index_table)
        .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
    let meter = QueryMeter::start(engine.cluster().metrics());

    let spec = JobSpec::new(
        "ijlmr-query",
        JobInput::Tables(vec![TableInput::all(index_table)]),
        1, // "a single reducer"
    )
    .sink(OutputSink::Collect);
    let left_family = query.left.label.clone();
    let score_fn = query.score_fn;
    let k = query.k;
    let result = engine.run(
        &spec,
        &move || {
            Box::new(TopKMapper {
                left_family: left_family.clone(),
                score_fn,
                top: TopK::new(k),
            })
        },
        Some(&move || Box::new(MergeReducer { k })),
        None,
    )?;

    let mut top = TopK::new(query.k);
    for (_k, v) in &result.collected {
        top.offer(codec::decode_join_tuple(v)?);
    }
    Ok(
        QueryOutcome::new("IJLMR", top.into_sorted_vec(), meter.finish())
            .with_extra("mr_jobs", 1.0)
            .with_extra(
                "map_input_records",
                result.counters.map_input_records as f64,
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use crate::{ijlmr, oracle};

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();
        let got = run(&engine, &q, "ijlmr_idx").unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }

    #[test]
    fn matches_oracle_for_all_k() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();
        for k in [1, 2, 5, 10, 40] {
            let qk = q.with_k(k);
            let got = run(&engine, &qk, "ijlmr_idx").unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
        }
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c);
        assert!(matches!(
            run(&engine, &q, "nope").unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }

    #[test]
    fn ships_only_topk_lists() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();
        let got = run(&engine, &q, "ijlmr_idx").unwrap();
        // Dollar cost: the whole index is scanned (22 cells).
        assert!(got.metrics.kv_reads >= 22);
        // Bandwidth: only per-mapper top-k lists + final merge cross the
        // network — far less than shipping all 38 join pairs.
        assert!(got.metrics.network_bytes < 6000);
    }
}
