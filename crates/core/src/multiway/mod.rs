//! N-ary rank joins over a [`crate::query::JoinSpec`].
//!
//! The paper presents HRJN/ISL over binary equi-joins; the ranked-
//! enumeration literature (Tziavelis et al., *Ranked Enumeration for
//! Database Queries*; *Optimal Join Algorithms Meet Top-k*) shows the
//! same threshold machinery covers any acyclic multi-way join. This
//! module is that generalization, layer by layer:
//!
//! * [`hrjn`] — the N-way HRJN operator: per-side score bounds feeding
//!   one global threshold over [`crate::score::ScoreFn::combine_many`],
//!   with join enumeration along the spec's edge tree.
//! * [`index`] — the multiway score index: every side of the spec built
//!   into one shared table (column family per side label, rows ordered
//!   by descending score), the N-ary sibling of [`crate::isl::build`].
//! * [`cursor`] — [`cursor::MultiwayCursor`], the operator behind the
//!   PR 8 [`crate::cursor::RankedCursor`] seam: pausable, resumable,
//!   re-targetable, with the same strictly-above-threshold emission
//!   certification as the binary cursors.
//! * [`planner`] — per-side statistics, the per-side access choice
//!   (batched index **descent** vs. **materialize**-then-join), and the
//!   cost model that picks the cheapest assignment; plus
//!   [`planner::SharedSpecStats`], the N-side staleness/versioning
//!   handle (any side's maintained write bumps the version plan caches,
//!   cursors, and serving caches check).
//! * [`exec`] — [`exec::SpecExecutor`], the spec-driven facade. A
//!   two-side spec degenerates to the existing binary
//!   [`crate::executor::RankJoinExecutor`] verbatim, so every binary
//!   query's results *and* counted metrics are byte-for-byte unchanged.

pub mod cursor;
pub mod exec;
pub mod hrjn;
pub mod index;
pub mod planner;

pub use cursor::{MultiwayConfig, MultiwayCursor, SideAccess};
pub use exec::SpecExecutor;
pub use hrjn::{run_nary_hrjn, NaryHrjn, NaryTuple};
pub use index::{build, index_table_name};
pub use planner::{choose_access, collect_spec_stats, SharedSpecStats, SpecSideStats, SpecStats};
