//! The N-ary rank join as a [`RankedCursor`]: batched round-robin
//! descent over every [`SideAccess::Descend`] side of the multiway index,
//! with [`SideAccess::Materialize`] sides bulk-ingested up front —
//! per-side *materialize-then-join* inside one threshold-terminated
//! operator. Suspend/resume works exactly like the binary
//! [`crate::cursor::IslCursor`]: the detached state carries scan
//! positions plus the consumed-tuple log the [`NaryHrjn`] accumulator is
//! replayed from, and any `next_batch`/pause/resume schedule emits the
//! one-shot result sequence with the one-shot counted metrics.

use std::collections::VecDeque;

use rj_store::client::ScannerState;
use rj_store::cluster::Cluster;
use rj_store::keys;
use rj_store::metrics::MetricsSnapshot;
use rj_store::scan::Scan;

use crate::cancel::{StopPolicy, StopReason};
use crate::codec;
use crate::cursor::{
    policy_stop, snap_add, BatchStep, CursorBatch, CursorMeta, CursorState, RankedCursor,
    StateInner,
};
use crate::error::{RankJoinError, Result};
use crate::multiway::hrjn::{NaryHrjn, NaryTuple};
use crate::query::JoinSpec;

/// How one side of a multiway execution is consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SideAccess {
    /// Batched descending-score index descent — the side participates in
    /// the round-robin threshold race (ISL-style).
    Descend,
    /// The side's full index family is scanned and ingested before the
    /// descent starts — materialize-then-join, the right call for a small
    /// side whose exhaustion tightens the threshold immediately.
    Materialize,
}

/// Knobs of the multiway descent.
#[derive(Clone, Copy, Debug)]
pub struct MultiwayConfig {
    /// Rows fetched per batch from each descending side.
    pub batch: usize,
}

impl Default for MultiwayConfig {
    fn default() -> Self {
        MultiwayConfig { batch: 64 }
    }
}

/// Detached state of a [`MultiwayCursor`] — the N-ary sibling of
/// [`crate::cursor::IslCore`].
#[derive(Clone)]
pub(crate) struct MultiwayCore {
    pub meta: CursorMeta,
    /// The spec, with `spec.k == meta.k`.
    pub spec: JoinSpec,
    /// Multiway index table name.
    pub table: String,
    pub config: MultiwayConfig,
    /// Per-side access choice (the planner's assignment).
    pub access: Vec<SideAccess>,
    /// Detached per-side scanner positions (`None` until first demand;
    /// always `None` for materialized sides).
    pub scans: Vec<Option<ScannerState>>,
    pub exhausted: Vec<bool>,
    /// Whether the up-front materialization pass already ran.
    pub materialized: bool,
    /// Which side the current/next batch descends.
    pub turn: usize,
    /// Batches completed or started.
    pub batches: u64,
    /// A batch is part-way through (paused by early termination).
    pub in_batch: bool,
    /// Rows consumed within the current batch.
    pub rows_taken: usize,
    /// Decoded tuples of a partially-consumed row, not yet pushed.
    pub pending: VecDeque<(usize, NaryTuple)>,
    /// Every tuple pushed, in push order — replayed on resume to rebuild
    /// the accumulator without touching the store.
    pub log: Vec<(usize, NaryTuple)>,
}

impl MultiwayCore {
    pub(crate) fn retarget(&mut self, new_k: usize) {
        self.spec = self.spec.with_k(new_k);
        self.meta = CursorMeta::new(new_k, self.meta.pinned_version);
    }
}

/// The multiway rank join as a [`RankedCursor`] (see the module docs).
pub struct MultiwayCursor {
    cluster: Cluster,
    core: MultiwayCore,
    state: NaryHrjn,
}

impl MultiwayCursor {
    /// Opens a cursor over a previously built multiway index
    /// ([`crate::multiway::index::build`]), consuming each side per
    /// `access`.
    pub fn open(
        cluster: &Cluster,
        spec: &JoinSpec,
        index_table: &str,
        config: MultiwayConfig,
        access: Vec<SideAccess>,
    ) -> Result<Self> {
        MultiwayCursor::open_pinned(cluster, spec, index_table, config, access, None)
    }

    pub(crate) fn open_pinned(
        cluster: &Cluster,
        spec: &JoinSpec,
        index_table: &str,
        config: MultiwayConfig,
        access: Vec<SideAccess>,
        pinned_version: Option<u64>,
    ) -> Result<Self> {
        if access.len() != spec.n() {
            return Err(RankJoinError::InvalidSpec(
                "one SideAccess per side required",
            ));
        }
        cluster
            .table(index_table)
            .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
        Ok(MultiwayCursor {
            cluster: cluster.clone(),
            state: NaryHrjn::new(spec),
            core: MultiwayCore {
                meta: CursorMeta::new(spec.k, pinned_version),
                spec: spec.clone(),
                table: index_table.to_owned(),
                config,
                scans: vec![None; access.len()],
                exhausted: vec![false; access.len()],
                access,
                materialized: false,
                turn: 0,
                batches: 0,
                in_batch: false,
                rows_taken: 0,
                pending: VecDeque::new(),
                log: Vec::new(),
            },
        })
    }

    /// Reattaches a detached state, replaying the consumed-tuple log into
    /// a fresh accumulator (pure in-memory — nothing re-read or
    /// re-billed).
    pub(crate) fn resume(cluster: &Cluster, core: MultiwayCore) -> Self {
        let mut state = NaryHrjn::new(&core.spec);
        for (side, tuple) in &core.log {
            state.push(*side, tuple.clone());
        }
        for (i, &done) in core.exhausted.iter().enumerate() {
            if done {
                state.exhaust(i);
            }
        }
        MultiwayCursor {
            cluster: cluster.clone(),
            state,
            core,
        }
    }

    fn drained(&self) -> bool {
        self.core.meta.k == 0 || self.state.is_done() || self.core.exhausted.iter().all(|&e| e)
    }

    /// Results certain to be final: strictly above the threshold while
    /// running, everything once drained (the same strict-emission rule as
    /// every other cursor — see [`crate::cursor`]'s contract).
    fn certified(&self) -> usize {
        if self.drained() {
            return self.state.result_count();
        }
        let Some(threshold) = self.state.threshold() else {
            return 0;
        };
        self.state
            .current_results()
            .iter()
            .take_while(|t| t.score > threshold)
            .count()
    }

    fn push_logged(&mut self, side: usize, tuple: NaryTuple) {
        self.core.log.push((side, tuple.clone()));
        self.state.push(side, tuple);
    }

    /// Bulk-ingests every `Materialize` side: full descending-score scan
    /// of its index family, all tuples pushed and the side exhausted.
    /// Reads are charged like any scan — materialization is paid once,
    /// on whichever pull triggers it.
    fn materialize_sides(&mut self) -> Result<()> {
        let client = self.cluster.client();
        for i in 0..self.core.access.len() {
            if self.core.access[i] != SideAccess::Materialize || self.core.exhausted[i] {
                continue;
            }
            let family = self.core.spec.sides[i].label.clone();
            let scan = client.scan(
                &self.core.table,
                Scan::new()
                    .families(&[family.as_str()])
                    .caching(self.core.config.batch),
            )?;
            for row in scan {
                if keys::decode_score_desc(&row.key).is_none() {
                    continue;
                }
                for cell in row.family_cells(&family) {
                    let Ok((edge_values, exact_score)) =
                        codec::decode_multi_value_score(&cell.value)
                    else {
                        continue;
                    };
                    self.push_logged(
                        i,
                        NaryTuple {
                            key: cell.qualifier.clone(),
                            edge_values,
                            score: exact_score,
                        },
                    );
                }
            }
            self.core.exhausted[i] = true;
            self.state.exhaust(i);
        }
        self.core.materialized = true;
        Ok(())
    }

    /// Runs one batch of the round-robin descent (after materializing on
    /// the first call) — the N-ary mirror of
    /// [`crate::cursor::IslCursor::advance_one_batch`].
    fn advance_one_batch(&mut self) -> Result<BatchStep> {
        if self.drained() {
            return Ok(BatchStep::Drained);
        }
        if !self.core.materialized {
            self.materialize_sides()?;
            if self.drained() {
                return Ok(BatchStep::Drained);
            }
        }
        let client = self.cluster.client();
        let n = self.core.spec.n();
        if !self.core.in_batch {
            // Advance to the next descendable side. At least one exists:
            // materialized sides are all exhausted, and all-exhausted is
            // `drained`.
            while self.core.access[self.core.turn] != SideAccess::Descend
                || self.core.exhausted[self.core.turn]
            {
                self.core.turn = (self.core.turn + 1) % n;
            }
            self.core.batches += 1;
            self.core.rows_taken = 0;
            self.core.in_batch = true;
        }
        let turn = self.core.turn;
        let family = self.core.spec.sides[turn].label.clone();
        let batch_size = self.core.config.batch;

        // Leftover cells of a row a previous (shallower) target stopped
        // inside — already read and billed, never re-fetched.
        while let Some((side, tuple)) = self.core.pending.pop_front() {
            self.push_logged(side, tuple);
            if self.state.is_done() {
                return Ok(BatchStep::Drained);
            }
        }

        let mut scan = match self.core.scans[turn].take() {
            Some(state) => client.resume_scan(state)?,
            None => {
                let spec = Scan::new().families(&[family.as_str()]).caching(batch_size);
                client.scan(&self.core.table, spec)?
            }
        };

        let mut step = BatchStep::Completed;
        'rows: while self.core.rows_taken < batch_size {
            let Some(row) = scan.next() else {
                self.core.exhausted[turn] = true;
                self.state.exhaust(turn);
                break;
            };
            self.core.rows_taken += 1;
            if keys::decode_score_desc(&row.key).is_none() {
                continue;
            }
            let mut cells: VecDeque<NaryTuple> = row
                .family_cells(&family)
                .filter_map(|cell| {
                    let (edge_values, score) = codec::decode_multi_value_score(&cell.value).ok()?;
                    Some(NaryTuple {
                        key: cell.qualifier.clone(),
                        edge_values,
                        score,
                    })
                })
                .collect();
            while let Some(tuple) = cells.pop_front() {
                self.push_logged(turn, tuple);
                if self.state.is_done() {
                    self.core.pending = cells.into_iter().map(|t| (turn, t)).collect();
                    step = BatchStep::Drained;
                    break 'rows;
                }
            }
        }
        self.core.scans[turn] = Some(scan.into_state());
        if step == BatchStep::Completed {
            self.core.in_batch = false;
            self.core.turn = (turn + 1) % n;
        }
        Ok(step)
    }

    /// Advances batches until `want` results are certified, the cursor
    /// drains, or the policy fires at a batch boundary.
    fn pump(
        &mut self,
        want: usize,
        policy: &StopPolicy,
    ) -> Result<(Option<StopReason>, MetricsSnapshot)> {
        let ledger = self.cluster.metrics();
        let before = ledger.snapshot();
        let mut stopped = None;
        loop {
            if self.drained() || self.certified() >= want {
                break;
            }
            match self.advance_one_batch()? {
                BatchStep::Drained => break,
                BatchStep::Completed => {
                    if self.core.exhausted.iter().all(|&e| e) {
                        continue;
                    }
                    let sim_so_far = self.core.meta.charged.sim_seconds
                        + ledger.snapshot().delta_since(&before).sim_seconds;
                    if let Some(reason) = policy_stop(policy, self.core.batches, sim_so_far) {
                        stopped = Some(reason);
                        break;
                    }
                }
            }
        }
        let delta = ledger.snapshot().delta_since(&before);
        self.core.meta.charged = snap_add(self.core.meta.charged, delta);
        Ok((stopped, delta))
    }
}

impl RankedCursor for MultiwayCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        let want = self
            .core
            .meta
            .emitted
            .saturating_add(n)
            .min(self.core.meta.k);
        let (stopped, metrics) = self.pump(want, policy)?;
        let all = self.state.current_results();
        let certified = self.certified();
        let emit_to = certified.min(want).max(self.core.meta.emitted);
        let results = all[self.core.meta.emitted..emit_to].to_vec();
        self.core.meta.emitted = emit_to;
        Ok(CursorBatch {
            results,
            done: self.is_done(),
            stopped,
            metrics,
        })
    }

    fn pause(self: Box<Self>) -> CursorState {
        CursorState {
            inner: StateInner::Multiway(Box::new(self.core)),
        }
    }

    fn emitted(&self) -> usize {
        self.core.meta.emitted
    }

    fn consumed_depth(&self) -> u64 {
        self.core.log.len() as u64
    }

    fn charged(&self) -> MetricsSnapshot {
        self.core.meta.charged
    }

    fn is_done(&self) -> bool {
        self.drained() && self.core.meta.emitted == self.state.result_count()
    }

    fn algorithm(&self) -> &'static str {
        "MULTIWAY"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiway::index;
    use crate::oracle;
    use crate::testsupport::three_way_path_cluster;
    use rj_mapreduce::MapReduceEngine;

    fn built(k: usize) -> (Cluster, JoinSpec, String) {
        let (c, spec) = three_way_path_cluster(k);
        let engine = MapReduceEngine::new(c.clone());
        let table = index::index_table_name(&spec);
        index::build(&engine, &spec, &table).unwrap();
        (c, spec, table)
    }

    fn drain(cursor: &mut MultiwayCursor, page: usize) -> Vec<crate::result::JoinTuple> {
        let mut out = Vec::new();
        loop {
            let batch = cursor.next_batch(page, &StopPolicy::default()).unwrap();
            out.extend(batch.results);
            if batch.done {
                return out;
            }
        }
    }

    #[test]
    fn all_descend_matches_oracle() {
        let (c, spec, table) = built(5);
        let mut cursor = MultiwayCursor::open(
            &c,
            &spec,
            &table,
            MultiwayConfig::default(),
            vec![SideAccess::Descend; 3],
        )
        .unwrap();
        let got = drain(&mut cursor, 2);
        let want = oracle::topk_spec(&c, &spec).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn every_access_mix_matches_oracle() {
        use SideAccess::{Descend, Materialize};
        let want = {
            let (c, spec, _) = built(6);
            oracle::topk_spec(&c, &spec).unwrap()
        };
        for mask in 0..8u8 {
            let (c, spec, table) = built(6);
            let access: Vec<SideAccess> = (0..3)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        Materialize
                    } else {
                        Descend
                    }
                })
                .collect();
            let mut cursor =
                MultiwayCursor::open(&c, &spec, &table, MultiwayConfig { batch: 3 }, access)
                    .unwrap();
            let got = drain(&mut cursor, 4);
            assert_eq!(got, want, "access mask {mask:03b}");
        }
    }

    #[test]
    fn pause_resume_preserves_sequence_and_charge() {
        let (c, spec, table) = built(6);
        let one_shot = {
            let before = c.metrics().snapshot();
            let mut cursor = MultiwayCursor::open(
                &c,
                &spec,
                &table,
                MultiwayConfig { batch: 2 },
                vec![SideAccess::Descend; 3],
            )
            .unwrap();
            let results = drain(&mut cursor, 100);
            (results, c.metrics().snapshot().delta_since(&before))
        };

        let (c2, spec2, table2) = built(6);
        let before = c2.metrics().snapshot();
        let mut cursor: Box<dyn RankedCursor> = Box::new(
            MultiwayCursor::open(
                &c2,
                &spec2,
                &table2,
                MultiwayConfig { batch: 2 },
                vec![SideAccess::Descend; 3],
            )
            .unwrap(),
        );
        let mut paged = Vec::new();
        loop {
            let batch = cursor.next_batch(1, &StopPolicy::default()).unwrap();
            paged.extend(batch.results);
            if batch.done {
                break;
            }
            let state = cursor.pause();
            assert_eq!(state.algorithm(), "MULTIWAY");
            cursor = state.resume_on(&c2).unwrap();
        }
        assert_eq!(paged, one_shot.0);
        let charged = c2.metrics().snapshot().delta_since(&before);
        assert_eq!(charged.kv_reads, one_shot.1.kv_reads);
        assert_eq!(charged.rpc_calls, one_shot.1.rpc_calls);
        assert_eq!(charged.network_bytes, one_shot.1.network_bytes);
    }

    #[test]
    fn retarget_deepens_without_rereads() {
        let (c, spec, table) = built(2);
        let mut cursor = MultiwayCursor::open(
            &c,
            &spec,
            &table,
            MultiwayConfig::default(),
            vec![SideAccess::Descend; 3],
        )
        .unwrap();
        let top2 = drain(&mut cursor, 100);
        assert_eq!(
            top2.len(),
            2.min(oracle::topk_spec(&c, &spec).unwrap().len())
        );
        let state = Box::new(cursor).pause();
        assert!(state.supports_retarget());
        let mut deeper = state.resume_retargeted(&c, 6).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = deeper.next_batch(10, &StopPolicy::default()).unwrap();
            got.extend(batch.results);
            if batch.done {
                break;
            }
        }
        let want = oracle::topk_spec(&c, &spec.with_k(6)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn k_zero_is_empty_and_free() {
        let (c, spec, table) = built(0);
        let before = c.metrics().snapshot();
        let mut cursor = MultiwayCursor::open(
            &c,
            &spec,
            &table,
            MultiwayConfig::default(),
            vec![SideAccess::Descend; 3],
        )
        .unwrap();
        let batch = cursor.next_batch(5, &StopPolicy::default()).unwrap();
        assert!(batch.results.is_empty());
        assert!(batch.done);
        let after = c.metrics().snapshot();
        assert_eq!(before.kv_reads, after.kv_reads);
    }
}
