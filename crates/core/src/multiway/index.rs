//! Multiway score-index creation — Algorithm 3 generalized to every
//! side of a [`JoinSpec`].
//!
//! One map-only job per side, putting `{negated score: base row key,
//! edge values}` into one shared index table under the side's column
//! family. The cell payload is [`codec::encode_multi_value_score`]: a
//! side with several incident join edges carries one value per edge, in
//! [`JoinSpec::incident_edges`] order. Layout otherwise matches the
//! binary ISL index (shared table, CF per label, uniform pre-splits over
//! the inverted `[0,1]` score domain).

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_store::cell::Mutation;
use rj_store::keys;

use crate::codec;
use crate::error::Result;
use crate::indexutil::BuildStats;
use crate::query::JoinSpec;

/// Canonical index-table name for a spec: `mw__<label>__<label>...`.
/// Distinct from the binary `isl__` namespace — the cell encodings
/// differ, so the tables must never be confused.
pub fn index_table_name(spec: &JoinSpec) -> String {
    let mut name = String::from("mw");
    for s in &spec.sides {
        name.push_str("__");
        name.push_str(&s.label);
    }
    name
}

struct SpecIndexMapper {
    spec: JoinSpec,
    side: usize,
}

impl Mapper for SpecIndexMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((edge_values, score)) = self.spec.extract_side(self.side, row) else {
            return;
        };
        out.put(
            keys::encode_score_desc(score).to_vec(),
            Mutation::put(
                &self.spec.sides[self.side].label,
                &row.key,
                codec::encode_multi_value_score(&edge_values, score),
            ),
        );
    }
}

/// Builds the multiway index for every side of `spec` into `table`.
pub fn build(engine: &MapReduceEngine, spec: &JoinSpec, table: &str) -> Result<BuildStats> {
    let cluster = engine.cluster();
    let pieces = cluster.num_nodes() * 2;
    let splits: Vec<Vec<u8>> = (1..pieces)
        .map(|i| keys::encode_score_desc(1.0 - i as f64 / pieces as f64).to_vec())
        .collect();
    let labels: Vec<&str> = spec.sides.iter().map(|s| s.label.as_str()).collect();
    cluster.create_table_with_splits(table, &labels, &splits)?;

    let mut stats = BuildStats::default();
    for (i, side) in spec.sides.iter().enumerate() {
        let mut families: Vec<String> = vec![side.score_col.0.clone()];
        families.extend(spec.incident_edges(i).into_iter().map(|(_, col)| col.0));
        families.sort();
        families.dedup();
        let family_refs: Vec<&str> = families.iter().map(|f| f.as_str()).collect();
        let job = JobSpec::new(
            &format!("mw-build-{}", side.label),
            JobInput::Tables(vec![TableInput::projected(&side.table, &family_refs)]),
            0,
        )
        .put_table(table);
        let spec_cl = spec.clone();
        let result = engine.run(
            &job,
            &move || {
                Box::new(SpecIndexMapper {
                    spec: spec_cl.clone(),
                    side: i,
                })
            },
            None,
            None,
        )?;
        stats.absorb(result.counters);
    }
    stats.index_bytes = cluster.table(table)?.disk_size();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::three_way_path_cluster;
    use rj_store::scan::Scan;

    #[test]
    fn index_rows_sorted_by_descending_score_per_side() {
        let (c, spec) = three_way_path_cluster(3);
        let engine = MapReduceEngine::new(c.clone());
        let table = index_table_name(&spec);
        assert_eq!(table, "mw__A__B__C");
        build(&engine, &spec, &table).unwrap();
        let client = c.client();
        for label in ["A", "B", "C"] {
            let mut scores = Vec::new();
            for row in client.scan(&table, Scan::new().families(&[label])).unwrap() {
                if row.family_cells(label).count() > 0 {
                    scores.push(keys::decode_score_desc(&row.key).unwrap());
                }
            }
            assert!(!scores.is_empty(), "{label} indexed");
            assert!(
                scores.windows(2).all(|w| w[0] >= w[1]),
                "{label}: {scores:?}"
            );
        }
    }

    #[test]
    fn interior_side_cells_carry_both_edge_values() {
        let (c, spec) = three_way_path_cluster(3);
        let engine = MapReduceEngine::new(c.clone());
        build(&engine, &spec, "mw_idx").unwrap();
        let client = c.client();
        let mut checked = 0usize;
        for row in client.scan("mw_idx", Scan::new().families(&["B"])).unwrap() {
            let score = keys::decode_score_desc(&row.key).unwrap();
            for cell in row.family_cells("B") {
                let (values, s) = codec::decode_multi_value_score(&cell.value).unwrap();
                assert_eq!(values.len(), 2, "B has two incident edges");
                assert_eq!(s, score);
                checked += 1;
            }
        }
        assert_eq!(checked, 12, "every tb row indexed");
    }

    #[test]
    fn leaf_side_cells_carry_one_edge_value() {
        let (c, spec) = three_way_path_cluster(3);
        let engine = MapReduceEngine::new(c.clone());
        build(&engine, &spec, "mw_idx").unwrap();
        let client = c.client();
        for row in client.scan("mw_idx", Scan::new().families(&["A"])).unwrap() {
            for cell in row.family_cells("A") {
                let (values, _) = codec::decode_multi_value_score(&cell.value).unwrap();
                assert_eq!(values.len(), 1);
            }
        }
    }
}
