//! The N-way HRJN operator: the binary threshold machinery of
//! [`crate::hrjn`] generalized along a [`JoinSpec`]'s edge tree.
//!
//! Each side feeds tuples in descending score order (any interleaving of
//! sides). A new tuple from side `i` is joined against everything seen so
//! far by walking the spec's join tree outward from `i`: every edge
//! constrains the neighbour side's candidates to tuples carrying the same
//! value on that edge, and a complete assignment — one tuple per side —
//! is a join result scored by [`ScoreFn::combine_many`] over the sides'
//! individual scores in side order.
//!
//! The termination threshold is the N-ary form of HRJN's
//! `S = max{f(s̄_1, ŝ_2), f(ŝ_1, s̄_2)}`: for each non-exhausted side
//! `i`, the best score any future result using an *unseen* tuple of `i`
//! can achieve is `f(ŝ_1, …, s̄_i, …, ŝ_n)` — side `i` at its minimum
//! seen score, every other side at its maximum — and the threshold is
//! the max over those bounds. Monotonicity of `f` in every argument
//! (which all [`ScoreFn`]s satisfy over the paper's `[0,1]` domain)
//! makes each bound valid; two sides degenerates to the exact binary
//! formula.

use std::collections::HashMap;

use crate::query::JoinSpec;
use crate::result::{JoinTuple, TopK};
use crate::score::ScoreFn;

/// One input tuple of side `i`: base key, one join value per edge
/// incident to `i` (in [`JoinSpec::incident_edges`] order), and the
/// side's individual score.
#[derive(Clone, Debug, PartialEq)]
pub struct NaryTuple {
    /// Base-table row key.
    pub key: Vec<u8>,
    /// Join values, one per incident edge, in incident order.
    pub edge_values: Vec<Vec<u8>>,
    /// Individual score.
    pub score: f64,
}

/// Per-side seen-tuple store: the tuples plus one hash index per
/// incident edge (join value on that edge → tuple ids).
#[derive(Clone, Default)]
struct SeenNary {
    tuples: Vec<NaryTuple>,
    /// One map per incident edge, parallel to the side's incident list.
    by_edge: Vec<HashMap<Vec<u8>, Vec<u32>>>,
}

/// Incremental N-way HRJN state machine. Feed tuples in descending score
/// order per side and poll [`NaryHrjn::is_done`].
pub struct NaryHrjn {
    k: usize,
    score_fn: ScoreFn,
    results: TopK,
    seen: Vec<SeenNary>,
    /// `(max seen, min seen)` per side; `None` until the first tuple.
    bounds: Vec<Option<(f64, f64)>>,
    exhausted: Vec<bool>,
    consumed: Vec<usize>,
    /// Incident edge ids per side, in incident order.
    incident: Vec<Vec<usize>>,
    /// `edge_slot[side][edge] = position` of `edge` in `incident[side]`.
    edge_slot: Vec<HashMap<usize, usize>>,
    /// Preorder tree walks, one per possible root: `dfs[root]` lists
    /// `(child, edge, parent)` with every parent before its children.
    dfs: Vec<Vec<(usize, usize, usize)>>,
    /// `(side, incident slot)` carrying edge 0's value — fills the
    /// binary-compatible `join_value` field of emitted results.
    edge0_slot: (usize, usize),
}

impl NaryHrjn {
    /// Fresh state for `spec` at `k = spec.k` (pass a re-targeted spec
    /// for other depths).
    pub fn new(spec: &JoinSpec) -> Self {
        let n = spec.n();
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (e, edge) in spec.edges.iter().enumerate() {
            incident[edge.a].push(e);
            incident[edge.b].push(e);
        }
        let edge_slot: Vec<HashMap<usize, usize>> = incident
            .iter()
            .map(|edges| edges.iter().enumerate().map(|(s, &e)| (e, s)).collect())
            .collect();
        // Adjacency: side → [(neighbour, edge)].
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (e, edge) in spec.edges.iter().enumerate() {
            adj[edge.a].push((edge.b, e));
            adj[edge.b].push((edge.a, e));
        }
        let mut dfs = Vec::with_capacity(n);
        for root in 0..n {
            let mut order = Vec::with_capacity(n.saturating_sub(1));
            let mut visited = vec![false; n];
            visited[root] = true;
            let mut stack = vec![root];
            while let Some(side) = stack.pop() {
                for &(next, e) in &adj[side] {
                    if !visited[next] {
                        visited[next] = true;
                        order.push((next, e, side));
                        stack.push(next);
                    }
                }
            }
            dfs.push(order);
        }
        let edge0_owner = spec.edges[0].a;
        let edge0_slot = (edge0_owner, edge_slot[edge0_owner][&0]);
        NaryHrjn {
            k: spec.k,
            score_fn: spec.score_fn,
            results: TopK::new(spec.k),
            seen: incident
                .iter()
                .map(|edges| SeenNary {
                    tuples: Vec::new(),
                    by_edge: vec![HashMap::new(); edges.len()],
                })
                .collect(),
            bounds: vec![None; n],
            exhausted: vec![false; n],
            consumed: vec![0; n],
            incident,
            edge_slot,
            dfs,
            edge0_slot,
        }
    }

    fn n(&self) -> usize {
        self.bounds.len()
    }

    /// Feeds one tuple from side `side`. Panics in debug builds if scores
    /// go up — inputs must be score-descending — or if the tuple carries
    /// the wrong number of edge values.
    pub fn push(&mut self, side: usize, tuple: NaryTuple) {
        debug_assert_eq!(tuple.edge_values.len(), self.incident[side].len());
        debug_assert!(
            self.bounds[side].is_none_or(|(_, min)| tuple.score <= min + 1e-12),
            "input not score-descending"
        );
        self.bounds[side] = Some(match self.bounds[side] {
            None => (tuple.score, tuple.score),
            Some((max, min)) => (max, min.min(tuple.score)),
        });

        // Enumerate every complete assignment using the new tuple:
        // backtracking over the tree walk rooted at `side`.
        let order = std::mem::take(&mut self.dfs[side]);
        let mut chosen = vec![0u32; self.n()];
        let mut fresh = Vec::new();
        self.enumerate(&order, 0, side, &tuple, &mut chosen, &mut fresh);
        self.dfs[side] = order;
        for t in fresh {
            self.results.offer(t);
        }

        let slots = self.incident[side].len();
        let id = u32::try_from(self.seen[side].tuples.len()).expect("tuple count overflows u32");
        for slot in 0..slots {
            self.seen[side].by_edge[slot]
                .entry(tuple.edge_values[slot].clone())
                .or_default()
                .push(id);
        }
        self.seen[side].tuples.push(tuple);
        self.consumed[side] += 1;
    }

    /// Backtracking walk: `order[pos..]` still to assign; sides before
    /// `pos` fixed in `chosen` (the root uses `new` instead).
    fn enumerate(
        &self,
        order: &[(usize, usize, usize)],
        pos: usize,
        root: usize,
        new: &NaryTuple,
        chosen: &mut [u32],
        out: &mut Vec<JoinTuple>,
    ) {
        if pos == order.len() {
            out.push(self.assemble(root, new, chosen));
            return;
        }
        let (child, edge, parent) = order[pos];
        let parent_values = if parent == root {
            &new.edge_values
        } else {
            &self.seen[parent].tuples[chosen[parent] as usize].edge_values
        };
        let value = &parent_values[self.edge_slot[parent][&edge]];
        let child_slot = self.edge_slot[child][&edge];
        let Some(ids) = self.seen[child].by_edge[child_slot].get(value) else {
            return;
        };
        for &id in ids {
            chosen[child] = id;
            self.enumerate(order, pos + 1, root, new, chosen, out);
        }
    }

    /// Builds the result tuple of a complete assignment.
    fn assemble(&self, root: usize, new: &NaryTuple, chosen: &[u32]) -> JoinTuple {
        let n = self.n();
        let tuple_at = |i: usize| -> &NaryTuple {
            if i == root {
                new
            } else {
                &self.seen[i].tuples[chosen[i] as usize]
            }
        };
        let scores: Vec<f64> = (0..n).map(|i| tuple_at(i).score).collect();
        let (jv_side, jv_slot) = self.edge0_slot;
        JoinTuple {
            left_key: tuple_at(0).key.clone(),
            right_key: tuple_at(n - 1).key.clone(),
            join_value: tuple_at(jv_side).edge_values[jv_slot].clone(),
            left_score: scores[0],
            right_score: scores[n - 1],
            inner: (1..n - 1)
                .map(|i| (tuple_at(i).key.clone(), scores[i]))
                .collect(),
            score: self.score_fn.combine_many(&scores),
        }
    }

    /// Marks a side as fully consumed.
    pub fn exhaust(&mut self, side: usize) {
        self.exhausted[side] = true;
    }

    /// The N-ary HRJN threshold: the maximum attainable score of any
    /// result not yet produced. `None` while no bound exists (nothing
    /// pulled from some non-exhausted side).
    pub fn threshold(&self) -> Option<f64> {
        let n = self.n();
        let mut t: Option<f64> = None;
        'sides: for i in 0..n {
            if self.exhausted[i] {
                continue;
            }
            let Some((_, my_min)) = self.bounds[i] else {
                // Nothing pulled from an active side: unbounded.
                return None;
            };
            let mut args = Vec::with_capacity(n);
            for j in 0..n {
                if j == i {
                    args.push(my_min);
                    continue;
                }
                match self.bounds[j] {
                    Some((max, _)) => args.push(max),
                    // An exhausted empty side can never partner any
                    // future tuple — side i contributes no bound.
                    None if self.exhausted[j] => continue 'sides,
                    // An active side with nothing pulled: unbounded.
                    None => return None,
                }
            }
            let bound = self.score_fn.combine_many(&args);
            t = Some(t.map_or(bound, |x: f64| x.max(bound)));
        }
        t.or(Some(f64::NEG_INFINITY))
    }

    /// Termination test: k results buffered and the k-th ≥ threshold.
    pub fn is_done(&self) -> bool {
        match (self.results.kth_score(), self.threshold()) {
            (Some(kth), Some(t)) => kth >= t,
            (None, Some(t)) => t == f64::NEG_INFINITY,
            _ => false,
        }
    }

    /// Current result count.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Total tuples consumed across all sides.
    pub fn tuples_consumed(&self) -> usize {
        self.consumed.iter().sum()
    }

    /// Tuples consumed from one side.
    pub fn consumed(&self, side: usize) -> usize {
        self.consumed[side]
    }

    /// The k-th buffered score, or `None` while fewer than k buffered.
    pub fn kth_score(&self) -> Option<f64> {
        self.results.kth_score()
    }

    /// The genuine results buffered so far, rank-ordered.
    pub fn current_results(&self) -> Vec<JoinTuple> {
        self.results.iter().cloned().collect()
    }

    /// Finishes, returning the rank-ordered results.
    pub fn into_results(self) -> Vec<JoinTuple> {
        self.results.into_sorted_vec()
    }

    /// Requested k.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Runs N-way HRJN to completion over in-memory score-descending
/// per-side lists, round-robin over the sides — the reference driver
/// used by tests and the bench baselines.
pub fn run_nary_hrjn(spec: &JoinSpec, sides: &[Vec<NaryTuple>]) -> Vec<JoinTuple> {
    assert_eq!(sides.len(), spec.n());
    let mut state = NaryHrjn::new(spec);
    let mut at = vec![0usize; sides.len()];
    loop {
        if state.is_done() {
            break;
        }
        let mut advanced = false;
        for (i, list) in sides.iter().enumerate() {
            if at[i] < list.len() {
                state.push(i, list[at[i]].clone());
                at[i] += 1;
                if at[i] == list.len() {
                    state.exhaust(i);
                }
                advanced = true;
                if state.is_done() {
                    break;
                }
            }
        }
        if !advanced {
            for i in 0..sides.len() {
                state.exhaust(i);
            }
            break;
        }
    }
    state.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hrjn::{run_hrjn, RankedTuple};
    use crate::query::JoinSide;

    fn side(label: &str) -> JoinSide {
        JoinSide::new(&label.to_lowercase(), label, ("d", b"jk"), ("d", b"score"))
    }

    fn nt(key: &[u8], values: &[&[u8]], score: f64) -> NaryTuple {
        NaryTuple {
            key: key.to_vec(),
            edge_values: values.iter().map(|v| v.to_vec()).collect(),
            score,
        }
    }

    fn sorted(mut v: Vec<NaryTuple>) -> Vec<NaryTuple> {
        v.sort_by(|a, b| b.score.total_cmp(&a.score));
        v
    }

    /// A deterministic pseudo-random side: `n` tuples, join values drawn
    /// from `domain` letters, scores spread over (0,1].
    fn gen_side(n: usize, domain: u8, seed: u64, edges: usize) -> Vec<NaryTuple> {
        let mut v = Vec::new();
        let mut x = seed;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = b'a' + (x >> 33) as u8 % domain;
            let score = ((x >> 11) % 1000) as f64 / 1000.0;
            v.push(nt(
                format!("k{i}").as_bytes(),
                &vec![&[j][..]; edges],
                score,
            ));
        }
        sorted(v)
    }

    /// Brute-force 3-way path oracle over in-memory lists.
    fn brute_path3(spec: &JoinSpec, s: &[Vec<NaryTuple>]) -> Vec<JoinTuple> {
        let mut top = TopK::new(spec.k);
        for a in &s[0] {
            for b in &s[1] {
                if a.edge_values[0] != b.edge_values[0] {
                    continue;
                }
                for c in &s[2] {
                    if b.edge_values[1] != c.edge_values[0] {
                        continue;
                    }
                    top.offer(JoinTuple {
                        left_key: a.key.clone(),
                        right_key: c.key.clone(),
                        join_value: a.edge_values[0].clone(),
                        left_score: a.score,
                        right_score: c.score,
                        inner: vec![(b.key.clone(), b.score)],
                        score: spec.score_fn.combine_many(&[a.score, b.score, c.score]),
                    });
                }
            }
        }
        top.into_sorted_vec()
    }

    #[test]
    fn binary_spec_matches_binary_hrjn() {
        let spec = JoinSpec::path(vec![side("L"), side("R")], 5, ScoreFn::Sum).unwrap();
        let l = gen_side(30, 3, 7, 1);
        let r = gen_side(25, 3, 13, 1);
        let as_ranked = |v: &[NaryTuple]| -> Vec<RankedTuple> {
            v.iter()
                .map(|t| RankedTuple {
                    key: t.key.clone(),
                    join_value: t.edge_values[0].clone(),
                    score: t.score,
                })
                .collect()
        };
        let want = run_hrjn(5, ScoreFn::Sum, &as_ranked(&l), &as_ranked(&r));
        let got = run_nary_hrjn(&spec, &[l, r]);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.score, w.score);
            assert_eq!(g.left_key, w.left_key);
            assert_eq!(g.right_key, w.right_key);
        }
    }

    #[test]
    fn path3_matches_brute_force() {
        for f in [ScoreFn::Sum, ScoreFn::Product, ScoreFn::Min, ScoreFn::Max] {
            let spec = JoinSpec::path(vec![side("A"), side("B"), side("C")], 8, f).unwrap();
            let sides = vec![
                gen_side(20, 3, 1, 1),
                gen_side(18, 3, 2, 2),
                gen_side(22, 3, 3, 1),
            ];
            let got = run_nary_hrjn(&spec, &sides);
            let want = brute_path3(&spec, &sides);
            let gs: Vec<f64> = got.iter().map(|t| t.score).collect();
            let ws: Vec<f64> = want.iter().map(|t| t.score).collect();
            assert_eq!(gs, ws, "{f:?}");
        }
    }

    #[test]
    fn star3_hub_joins_both_leaves() {
        // Hub H joins leaves X and Y on different attributes.
        let spec = JoinSpec::star(vec![side("H"), side("X"), side("Y")], 10, ScoreFn::Sum).unwrap();
        // Hub tuples carry one value per incident edge (2 edges).
        let hub = sorted(vec![
            nt(b"h1", &[b"a", b"p"], 0.9),
            nt(b"h2", &[b"a", b"q"], 0.7),
            nt(b"h3", &[b"b", b"p"], 0.5),
        ]);
        let x = sorted(vec![nt(b"x1", &[b"a"], 0.8), nt(b"x2", &[b"b"], 0.6)]);
        let y = sorted(vec![nt(b"y1", &[b"p"], 0.4), nt(b"y2", &[b"q"], 0.9)]);
        let got = run_nary_hrjn(&spec, &[hub, x, y]);
        // h1⋈x1⋈y1 (0.9+0.8+0.4=2.1), h2⋈x1⋈y2 (0.7+0.8+0.9=2.4),
        // h3⋈x2⋈y1 (0.5+0.6+0.4=1.5).
        let scores: Vec<f64> = got.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![2.4, 2.1, 1.5]);
        // Hub is side 0 → result's left; inner holds side 1 (X).
        assert_eq!(got[0].left_key, b"h2".to_vec());
        assert_eq!(got[0].inner, vec![(b"x1".to_vec(), 0.8)]);
        assert_eq!(got[0].right_key, b"y2".to_vec());
    }

    #[test]
    fn early_termination_on_path() {
        // Clear winner at the top: top-1 should not consume everything.
        let mk = |prefix: &str, n: usize| -> Vec<NaryTuple> {
            sorted(
                (0..n)
                    .map(|i| {
                        nt(
                            format!("{prefix}{i}").as_bytes(),
                            &[b"x"],
                            1.0 - i as f64 / n as f64,
                        )
                    })
                    .collect(),
            )
        };
        let mid: Vec<NaryTuple> = sorted(
            (0..50)
                .map(|i| {
                    nt(
                        format!("m{i}").as_bytes(),
                        &[b"x", b"x"],
                        1.0 - i as f64 / 50.0,
                    )
                })
                .collect(),
        );
        let spec = JoinSpec::path(vec![side("A"), side("B"), side("C")], 1, ScoreFn::Sum).unwrap();
        let mut state = NaryHrjn::new(&spec);
        let sides = [mk("a", 50), mid, mk("c", 50)];
        let mut at = [0usize; 3];
        while !state.is_done() {
            for i in 0..3 {
                state.push(i, sides[i][at[i]].clone());
                at[i] += 1;
            }
        }
        assert!(
            state.tuples_consumed() <= 9,
            "top-1 needed {} pulls",
            state.tuples_consumed()
        );
    }

    #[test]
    fn threshold_none_until_every_side_bounded() {
        let spec = JoinSpec::path(vec![side("A"), side("B"), side("C")], 2, ScoreFn::Sum).unwrap();
        let mut s = NaryHrjn::new(&spec);
        assert_eq!(s.threshold(), None);
        s.push(0, nt(b"a", &[b"x"], 0.9));
        s.push(1, nt(b"b", &[b"x", b"x"], 0.8));
        assert_eq!(s.threshold(), None, "side 2 untouched → no bound");
        s.push(2, nt(b"c", &[b"x"], 0.7));
        assert!(s.threshold().is_some());
    }

    #[test]
    fn exhausted_empty_side_terminates() {
        let spec = JoinSpec::path(vec![side("A"), side("B"), side("C")], 2, ScoreFn::Sum).unwrap();
        let mut s = NaryHrjn::new(&spec);
        s.push(0, nt(b"a", &[b"x"], 0.9));
        s.push(2, nt(b"c", &[b"x"], 0.7));
        s.exhaust(1);
        s.exhaust(0);
        s.exhaust(2);
        assert_eq!(s.threshold(), Some(f64::NEG_INFINITY));
        assert!(s.is_done());
        assert_eq!(s.result_count(), 0);
    }
}
