//! Per-side statistics, the per-side access choice, and the N-side
//! staleness/versioning handle behind [`crate::multiway::SpecExecutor`].
//!
//! The binary planner ([`crate::planner`]) ranks whole algorithms; the
//! multiway planner's unit of choice is finer — **per side**, descend
//! the score index ([`SideAccess::Descend`]) or bulk-ingest it
//! ([`SideAccess::Materialize`]) — with one cost model composed along
//! the spec's join tree: at a uniform descent depth `d`, the expected
//! result count is `Π_i m_i / Π_e D_e` (tuples seen per side over the
//! product of per-edge distinct-value counts, the classic
//! independent-uniform join estimate), and the predicted read bill is
//! the sum of per-side consumption. [`choose_access`] minimizes that
//! bill over all `2^n` assignments — a small, exact search (specs are a
//! handful of sides, never hundreds).
//!
//! [`SharedSpecStats`] is the N-side sibling of
//! [`crate::statsmaint::SharedTableStats`]: one `Arc`-shared maintained
//! snapshot per spec, fed by the same [`StatsDelta`] fan-out the §6
//! maintained write path emits, with a mutation-fraction staleness bound
//! and an atomic coherence version that plan caches, cursors, and the
//! serving layer's warm caches pin against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rj_store::cluster::Cluster;

use crate::error::{RankJoinError, Result};
use crate::multiway::cursor::SideAccess;
use crate::planner::{StatsSource, KV_OVERHEAD_BYTES, STAT_BUCKETS};
use crate::query::JoinSpec;
use crate::statsmaint::{join_fingerprint, DeltaOp, StatsDelta, StatsMaintainer};

/// Statistics for one side of a spec (same histogram geometry as the
/// binary [`crate::planner::SideStats`]).
#[derive(Clone, Debug)]
pub struct SpecSideStats {
    /// Tuples with a valid `(edge values, score)` extraction.
    pub tuples: u64,
    /// Equi-width score histogram over `[0,1]`.
    pub hist: Vec<u64>,
    /// Highest score seen (0.0 when empty).
    pub max_score: f64,
    /// Average bytes per indexed entry.
    pub avg_entry_bytes: f64,
}

impl SpecSideStats {
    fn empty() -> Self {
        SpecSideStats {
            tuples: 0,
            hist: vec![0; STAT_BUCKETS],
            max_score: 0.0,
            avg_entry_bytes: KV_OVERHEAD_BYTES,
        }
    }

    fn bucket_of(score: f64) -> usize {
        ((score * STAT_BUCKETS as f64) as usize).min(STAT_BUCKETS - 1)
    }
}

/// A statistics snapshot over every side and edge of a spec.
#[derive(Clone, Debug)]
pub struct SpecStats {
    /// Per-side statistics, in side order.
    pub sides: Vec<SpecSideStats>,
    /// Per-edge distinct join-value counts `(at endpoint a, at endpoint
    /// b)`, in edge order.
    pub edge_distinct: Vec<(u64, u64)>,
}

impl SpecStats {
    /// The join-selectivity divisor of edge `e`: the larger endpoint's
    /// distinct count (the independent-uniform estimate divides by the
    /// join attribute's domain size, best approximated by the bigger
    /// side's distinct count), floored at 1.
    fn edge_divisor(&self, e: usize) -> f64 {
        let (a, b) = self.edge_distinct[e];
        a.max(b).max(1) as f64
    }

    /// Expected join results when each side contributes its first
    /// `seen[i]` tuples: `Π_i seen_i / Π_e D_e`.
    pub(crate) fn expected_results(&self, seen: &[f64]) -> f64 {
        let numerator: f64 = seen.iter().product();
        let denominator: f64 = (0..self.edge_distinct.len())
            .map(|e| self.edge_divisor(e))
            .product();
        numerator / denominator
    }
}

/// Collects a [`SpecStats`] snapshot through the store's metric-free
/// admin read path — the N-ary `ANALYZE` (one pass per side; charged to
/// [`rj_store::metrics::MetricsSnapshot::admin_kv_reads`] only).
pub fn collect_spec_stats(cluster: &Cluster, spec: &JoinSpec) -> Result<SpecStats> {
    let n = spec.n();
    let mut sides = Vec::with_capacity(n);
    // Per (edge, endpoint-slot 0/1): distinct fingerprints seen.
    let mut edge_values: Vec<[HashMap<u64, u64>; 2]> = spec
        .edges
        .iter()
        .map(|_| [HashMap::new(), HashMap::new()])
        .collect();
    let mut admin_reads = 0u64;
    for i in 0..n {
        let table = cluster.table(&spec.sides[i].table)?;
        let incident = spec.incident_edges(i);
        let mut s = SpecSideStats::empty();
        let mut bytes = 0.0f64;
        for row in table.debug_all_rows() {
            admin_reads += 1;
            let Some((values, score)) = spec.extract_side(i, &row) else {
                continue;
            };
            s.tuples += 1;
            s.max_score = s.max_score.max(score);
            s.hist[SpecSideStats::bucket_of(score)] += 1;
            bytes += crate::planner::entry_bytes_of(
                &values.iter().map(|v| v.len()).sum::<usize>().to_be_bytes(),
                &row.key,
            );
            for (slot, &(e, _)) in incident.iter().enumerate() {
                let endpoint = usize::from(spec.edges[e].a != i);
                *edge_values[e][endpoint]
                    .entry(join_fingerprint(&values[slot]))
                    .or_insert(0) += 1;
            }
        }
        if s.tuples > 0 {
            s.avg_entry_bytes = bytes / s.tuples as f64;
        }
        sides.push(s);
    }
    cluster.metrics().add_admin_kv_reads(admin_reads);
    let edge_distinct = edge_values
        .iter()
        .map(|[a, b]| (a.len() as u64, b.len() as u64))
        .collect();
    Ok(SpecStats {
        sides,
        edge_distinct,
    })
}

/// Predicted index reads of one access assignment: materialized sides
/// pay their full tuple count up front; descending sides pay the uniform
/// round-robin depth at which the expected result count reaches `k`.
pub(crate) fn predicted_reads(stats: &SpecStats, access: &[SideAccess], k: usize) -> f64 {
    let n = access.len();
    let totals: Vec<f64> = stats.sides.iter().map(|s| s.tuples as f64).collect();
    let max_depth = totals
        .iter()
        .zip(access)
        .filter(|(_, a)| **a == SideAccess::Descend)
        .map(|(t, _)| *t as u64)
        .max()
        .unwrap_or(0);
    // Smallest uniform descend depth whose expected yield covers k
    // (doubling scan — depths are small integers, exactness is not the
    // point of a ranking model).
    let mut depth = 0u64;
    if k > 0 && max_depth > 0 {
        depth = 1;
        loop {
            let seen: Vec<f64> = (0..n)
                .map(|i| match access[i] {
                    SideAccess::Materialize => totals[i],
                    SideAccess::Descend => totals[i].min(depth as f64),
                })
                .collect();
            if stats.expected_results(&seen) >= k as f64 || depth >= max_depth {
                break;
            }
            depth *= 2;
        }
    }
    (0..n)
        .map(|i| match access[i] {
            SideAccess::Materialize => totals[i],
            SideAccess::Descend => totals[i].min(depth as f64),
        })
        .sum()
}

/// Chooses the cheapest per-side access assignment for a top-`k` run of
/// `spec` under `stats` — exact enumeration of all `2^n` assignments,
/// deterministic tie-break (first minimum in mask order, which prefers
/// all-descend on ties).
pub fn choose_access(spec: &JoinSpec, stats: &SpecStats, k: usize) -> Vec<SideAccess> {
    let n = spec.n();
    let mut best: Option<(f64, Vec<SideAccess>)> = None;
    for mask in 0..(1u32 << n) {
        let access: Vec<SideAccess> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    SideAccess::Materialize
                } else {
                    SideAccess::Descend
                }
            })
            .collect();
        let cost = predicted_reads(stats, &access, k);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, access));
        }
    }
    // rjlint: allow(no-unwrap) — the assignment enumeration always yields at
    // least one candidate (every side has a non-empty access-choice set).
    best.expect("at least one assignment").1
}

/// What [`SharedSpecStats::stats_for_planning`] hands the executor.
pub struct PlannedSpecStats {
    /// The snapshot to plan from.
    pub stats: Arc<SpecStats>,
    /// Which path produced it.
    pub source: StatsSource,
    /// Handle version the snapshot corresponds to.
    pub version: u64,
}

/// Per-edge `[endpoint a, endpoint b]` join-value fingerprint → count
/// sketches (distinct-count maintenance).
type EdgeSketches = Vec<[HashMap<u64, u64>; 2]>;

/// The maintained snapshot plus the per-edge fingerprint sketches deltas
/// merge into.
struct MaintainedSpec {
    stats: SpecStats,
    /// Per-(edge, endpoint) fingerprint → count (distinct maintenance).
    edge_values: EdgeSketches,
    mutations: Vec<u64>,
    baseline_tuples: Vec<u64>,
}

impl MaintainedSpec {
    fn staleness(&self) -> f64 {
        self.mutations
            .iter()
            .zip(&self.baseline_tuples)
            .map(|(&m, &b)| m as f64 / b.max(1) as f64)
            .fold(0.0, f64::max)
    }
}

/// One spec's `Arc`-shared, incrementally-maintained statistics — the
/// N-side sibling of [`crate::statsmaint::SharedTableStats`], fed by the
/// same [`StatsDelta`] fan-out.
///
/// A delta matches side `i` when its `(table, score_col)` equal the
/// side's and its `join_col` is one of the side's incident edge columns.
/// The side's tuple count and histogram fold the delta in once, and
/// every incident edge whose column the delta names adjusts its distinct
/// sketch. The write-path contract for a side with several incident
/// edges: emit **one** delta per row mutation (keyed by whichever join
/// column the writer maintains — other edges' distinct counts drift
/// until the staleness bound forces a re-collection, exactly the drift
/// the bound exists to bound).
pub struct SharedSpecStats {
    spec: JoinSpec,
    version: AtomicU64,
    collections: AtomicU64,
    maintained: Mutex<Option<MaintainedSpec>>,
}

impl SharedSpecStats {
    /// A handle for one spec (no snapshot yet; the first planning call
    /// collects).
    pub fn new(spec: &JoinSpec) -> Arc<Self> {
        Arc::new(SharedSpecStats {
            spec: spec.clone(),
            version: AtomicU64::new(0),
            collections: AtomicU64::new(0),
            maintained: Mutex::new(None),
        })
    }

    /// The spec this handle describes.
    pub fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    /// Current coherence version (bumped by maintained deltas and
    /// invalidations — *not* by collections, which only read the data
    /// and must not spuriously invalidate caches or pinned cursors).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Full statistics passes run through this handle.
    pub fn collections(&self) -> u64 {
        self.collections.load(Ordering::Relaxed)
    }

    /// Fraction of any side's tuples mutated since the last full pass
    /// (`f64::INFINITY` when no snapshot exists yet).
    pub fn staleness(&self) -> f64 {
        self.maintained
            .lock()
            .expect("spec stats handle")
            .as_ref()
            .map_or(f64::INFINITY, MaintainedSpec::staleness)
    }

    /// The maintained snapshot as it stands, without collecting.
    pub fn maintained_stats(&self) -> Option<SpecStats> {
        self.maintained
            .lock()
            .expect("spec stats handle")
            .as_ref()
            .map(|m| m.stats.clone())
    }

    /// Drops the snapshot; the next planning call re-collects.
    pub fn invalidate(&self) {
        *self.maintained.lock().expect("spec stats handle") = None;
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// The planner entry point: maintained statistics while the mutated
    /// fraction is within `staleness_bound`, a transparent full pass
    /// otherwise (or before the first snapshot).
    pub fn stats_for_planning(
        &self,
        cluster: &Cluster,
        staleness_bound: f64,
    ) -> Result<PlannedSpecStats> {
        let staleness_bound = staleness_bound.max(0.0);
        let mut guard = self.maintained.lock().expect("spec stats handle");
        let source = match guard.as_ref().map(MaintainedSpec::staleness) {
            Some(s) if s <= staleness_bound => StatsSource::Maintained { staleness: s },
            Some(s) => StatsSource::Recollected { staleness: s },
            None => StatsSource::Exact,
        };
        if !matches!(source, StatsSource::Maintained { .. }) {
            let stats = collect_with_sketch(cluster, &self.spec)?;
            let baseline_tuples = stats.0.sides.iter().map(|s| s.tuples).collect();
            *guard = Some(MaintainedSpec {
                stats: stats.0,
                edge_values: stats.1,
                mutations: vec![0; self.spec.n()],
                baseline_tuples,
            });
            self.collections.fetch_add(1, Ordering::Relaxed);
        }
        let m = guard.as_ref().ok_or(RankJoinError::Internal(
            "stats snapshot missing after ensure",
        ))?;
        Ok(PlannedSpecStats {
            stats: Arc::new(m.stats.clone()),
            source,
            version: self.version(),
        })
    }
}

/// [`collect_spec_stats`] keeping the per-edge fingerprint sketches the
/// maintained path merges deltas into. One shared implementation so the
/// collect path and the delta path stay structurally in sync.
fn collect_with_sketch(cluster: &Cluster, spec: &JoinSpec) -> Result<(SpecStats, EdgeSketches)> {
    let n = spec.n();
    let mut sides = Vec::with_capacity(n);
    let mut edge_values: EdgeSketches = spec
        .edges
        .iter()
        .map(|_| [HashMap::new(), HashMap::new()])
        .collect();
    let mut admin_reads = 0u64;
    for i in 0..n {
        let table = cluster.table(&spec.sides[i].table)?;
        let incident = spec.incident_edges(i);
        let mut s = SpecSideStats::empty();
        let mut bytes = 0.0f64;
        for row in table.debug_all_rows() {
            admin_reads += 1;
            let Some((values, score)) = spec.extract_side(i, &row) else {
                continue;
            };
            s.tuples += 1;
            s.max_score = s.max_score.max(score);
            s.hist[SpecSideStats::bucket_of(score)] += 1;
            bytes += crate::planner::entry_bytes_of(
                &values.iter().map(|v| v.len()).sum::<usize>().to_be_bytes(),
                &row.key,
            );
            for (slot, &(e, _)) in incident.iter().enumerate() {
                let endpoint = usize::from(spec.edges[e].a != i);
                *edge_values[e][endpoint]
                    .entry(join_fingerprint(&values[slot]))
                    .or_insert(0) += 1;
            }
        }
        if s.tuples > 0 {
            s.avg_entry_bytes = bytes / s.tuples as f64;
        }
        sides.push(s);
    }
    cluster.metrics().add_admin_kv_reads(admin_reads);
    let edge_distinct = edge_values
        .iter()
        .map(|[a, b]| (a.len() as u64, b.len() as u64))
        .collect();
    Ok((
        SpecStats {
            sides,
            edge_distinct,
        },
        edge_values,
    ))
}

impl StatsMaintainer for SharedSpecStats {
    /// Folds a maintained write into every side it describes (see the
    /// type docs for the matching rule). Deltas for foreign schemas are
    /// ignored; deltas arriving before the first collection only bump
    /// the version.
    fn apply_delta(&self, delta: &StatsDelta) {
        // (side, incident edges whose column the delta names).
        let mut matched: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, side) in self.spec.sides.iter().enumerate() {
            if side.table != delta.table || side.score_col != delta.score_col {
                continue;
            }
            let incident = self.spec.incident_edges(i);
            let edges: Vec<usize> = incident
                .iter()
                .filter(|(_, col)| *col == delta.join_col)
                .map(|(e, _)| *e)
                .collect();
            if !edges.is_empty() {
                matched.push((i, edges));
            }
        }
        if matched.is_empty() {
            return;
        }
        if let Some(m) = self.maintained.lock().expect("spec stats handle").as_mut() {
            for (i, edges) in &matched {
                let s = &mut m.stats.sides[*i];
                let bucket = SpecSideStats::bucket_of(delta.score);
                match delta.op {
                    DeltaOp::Insert => {
                        s.tuples += 1;
                        s.hist[bucket] += 1;
                        s.max_score = s.max_score.max(delta.score);
                    }
                    DeltaOp::Delete => {
                        s.tuples = s.tuples.saturating_sub(1);
                        s.hist[bucket] = s.hist[bucket].saturating_sub(1);
                        if s.tuples == 0 {
                            s.max_score = 0.0;
                        }
                    }
                }
                for &e in edges {
                    let endpoint = usize::from(self.spec.edges[e].a != *i);
                    let sketch = &mut m.edge_values[e][endpoint];
                    match delta.op {
                        DeltaOp::Insert => {
                            *sketch.entry(delta.join_fingerprint).or_insert(0) += 1;
                        }
                        DeltaOp::Delete => {
                            if let Some(c) = sketch.get_mut(&delta.join_fingerprint) {
                                *c = c.saturating_sub(1);
                                if *c == 0 {
                                    sketch.remove(&delta.join_fingerprint);
                                }
                            }
                        }
                    }
                    let (a, b) = (
                        m.edge_values[e][0].len() as u64,
                        m.edge_values[e][1].len() as u64,
                    );
                    m.stats.edge_distinct[e] = (a, b);
                }
                m.mutations[*i] += 1;
            }
        }
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::three_way_path_cluster;

    #[test]
    fn collect_counts_sides_and_edges() {
        let (c, spec) = three_way_path_cluster(3);
        let before = c.metrics().snapshot();
        let stats = collect_spec_stats(&c, &spec).unwrap();
        let after = c.metrics().snapshot();
        assert_eq!(stats.sides.len(), 3);
        assert_eq!(stats.sides[0].tuples, 14);
        assert_eq!(stats.sides[1].tuples, 12);
        assert_eq!(stats.sides[2].tuples, 13);
        assert_eq!(stats.edge_distinct.len(), 2);
        for &(a, b) in &stats.edge_distinct {
            assert!((1..=3).contains(&a), "values drawn from 3 letters");
            assert!((1..=3).contains(&b));
        }
        assert_eq!(before.kv_reads, after.kv_reads, "admin path only");
        assert!(after.admin_kv_reads > before.admin_kv_reads);
    }

    #[test]
    fn choose_access_materializes_a_small_selective_side() {
        // A 50-tuple interior side between two 1000-tuple sides over a
        // selective join (distinct ~100 per edge): paying the 50-row
        // ingest up front yields the side's full contribution at once,
        // halving the depth the big sides must descend to — strictly
        // cheaper than round-robining all three.
        let (_, spec) = three_way_path_cluster(50);
        let mut stats = SpecStats {
            sides: vec![
                SpecSideStats {
                    tuples: 1000,
                    ..SpecSideStats::empty()
                },
                SpecSideStats {
                    tuples: 50,
                    ..SpecSideStats::empty()
                },
                SpecSideStats {
                    tuples: 1000,
                    ..SpecSideStats::empty()
                },
            ],
            edge_distinct: vec![(100, 50), (50, 100)],
        };
        stats.sides[0].hist[50] = 1000;
        stats.sides[1].hist[50] = 50;
        stats.sides[2].hist[50] = 1000;
        let access = choose_access(&spec, &stats, 5);
        assert_eq!(access[1], SideAccess::Materialize, "{access:?}");
        assert_eq!(access[0], SideAccess::Descend);
        assert_eq!(access[2], SideAccess::Descend);
    }

    #[test]
    fn choose_access_prefers_descend_for_small_k() {
        let (c, spec) = three_way_path_cluster(1);
        let stats = collect_spec_stats(&c, &spec).unwrap();
        let access = choose_access(&spec, &stats, 1);
        // Whatever the assignment, its predicted bill must be minimal.
        let chosen = predicted_reads(&stats, &access, 1);
        for mask in 0..8u32 {
            let alt: Vec<SideAccess> = (0..3)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        SideAccess::Materialize
                    } else {
                        SideAccess::Descend
                    }
                })
                .collect();
            assert!(chosen <= predicted_reads(&stats, &alt, 1));
        }
    }

    #[test]
    fn maintained_deltas_track_and_staleness_bounds() {
        let (c, spec) = three_way_path_cluster(3);
        let h = SharedSpecStats::new(&spec);
        assert!(h.staleness().is_infinite());
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::Exact);
        assert_eq!(h.collections(), 1);
        // Below-bound maintained path: no re-collection.
        let p2 = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p2.source, StatsSource::Maintained { staleness: 0.0 });
        assert_eq!(h.collections(), 1);
        // A delta against side 2 (table tc, column jk).
        let v = h.version();
        h.apply_delta(&StatsDelta {
            table: "tc".into(),
            join_col: ("d".into(), b"jk".to_vec()),
            score_col: ("d".into(), b"score".to_vec()),
            op: DeltaOp::Insert,
            join_fingerprint: join_fingerprint(b"zz"),
            score: 0.95,
            entry_bytes: 32.0,
        });
        assert!(h.version() > v, "delta bumps the coherence version");
        let m = h.maintained_stats().unwrap();
        assert_eq!(m.sides[2].tuples, 14);
        assert_eq!(m.sides[2].hist[95], 1);
        // New distinct value on edge 1's C endpoint.
        let fresh = collect_spec_stats(&c, &spec).unwrap();
        assert_eq!(m.edge_distinct[1].1, fresh.edge_distinct[1].1 + 1);
        assert!(h.staleness() > 0.0 && h.staleness() < 0.1);
        // Churn past the bound forces a re-collection.
        for _ in 0..3 {
            h.apply_delta(&StatsDelta {
                table: "tc".into(),
                join_col: ("d".into(), b"jk".to_vec()),
                score_col: ("d".into(), b"score".to_vec()),
                op: DeltaOp::Insert,
                join_fingerprint: join_fingerprint(b"zz"),
                score: 0.95,
                entry_bytes: 32.0,
            });
        }
        assert!(h.staleness() > 0.1);
        let p3 = h.stats_for_planning(&c, 0.1).unwrap();
        assert!(matches!(p3.source, StatsSource::Recollected { .. }));
        assert_eq!(h.collections(), 2);
        assert_eq!(h.staleness(), 0.0);
    }

    #[test]
    fn interior_side_matches_either_edge_column() {
        let (c, spec) = three_way_path_cluster(3);
        let h = SharedSpecStats::new(&spec);
        h.stats_for_planning(&c, 1.0).unwrap();
        // Side B joins A on jk1 and C on jk2; a delta naming jk2 must
        // land on B (tuples) and on edge 1's B endpoint (distinct).
        h.apply_delta(&StatsDelta {
            table: "tb".into(),
            join_col: ("d".into(), b"jk2".to_vec()),
            score_col: ("d".into(), b"score".to_vec()),
            op: DeltaOp::Insert,
            join_fingerprint: join_fingerprint(b"qq"),
            score: 0.5,
            entry_bytes: 32.0,
        });
        let m = h.maintained_stats().unwrap();
        assert_eq!(m.sides[1].tuples, 13);
        let fresh = collect_spec_stats(&c, &spec).unwrap();
        assert_eq!(m.edge_distinct[1].0, fresh.edge_distinct[1].0 + 1);
        assert_eq!(
            m.edge_distinct[0], fresh.edge_distinct[0],
            "edge 0 untouched"
        );
    }

    #[test]
    fn foreign_deltas_are_ignored() {
        let (c, spec) = three_way_path_cluster(3);
        let h = SharedSpecStats::new(&spec);
        h.stats_for_planning(&c, 0.1).unwrap();
        let v = h.version();
        h.apply_delta(&StatsDelta {
            table: "unrelated".into(),
            join_col: ("d".into(), b"jk".to_vec()),
            score_col: ("d".into(), b"score".to_vec()),
            op: DeltaOp::Insert,
            join_fingerprint: 7,
            score: 0.5,
            entry_bytes: 32.0,
        });
        assert_eq!(h.version(), v);
        assert_eq!(h.staleness(), 0.0);
    }

    #[test]
    fn invalidate_forces_fresh_pass() {
        let (c, spec) = three_way_path_cluster(3);
        let h = SharedSpecStats::new(&spec);
        h.stats_for_planning(&c, 0.1).unwrap();
        h.invalidate();
        assert!(h.maintained_stats().is_none());
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::Exact);
        assert_eq!(h.collections(), 2);
    }
}
