//! [`SpecExecutor`] — the spec-driven execution facade.
//!
//! One entry point for any [`JoinSpec`]. A two-side spec degenerates to
//! the existing binary [`RankJoinExecutor`] **verbatim** (the spec's
//! [`JoinSpec::as_binary`] projection constructs the very
//! [`crate::query::RankJoinQuery`] the binary path has always run), so a
//! binary query's results *and* counted metrics are byte-for-byte
//! unchanged by construction — the refactor's compatibility pin. Specs
//! with three or more sides run the multiway path: index build
//! ([`crate::multiway::index`]), per-side access planning
//! ([`crate::multiway::planner`]), and the threshold-terminated
//! [`MultiwayCursor`], pinned to the spec's [`SharedSpecStats`] version
//! exactly like binary cursors pin their table-stats version.

use std::sync::Arc;

use rj_mapreduce::MapReduceEngine;
use rj_store::cluster::Cluster;

use crate::cancel::StopPolicy;
use crate::cursor::{CursorState, RankedCursor};
use crate::error::{RankJoinError, Result};
use crate::executor::{Algorithm, RankJoinExecutor};
use crate::indexutil::BuildStats;
use crate::multiway::cursor::{MultiwayConfig, MultiwayCursor, SideAccess};
use crate::multiway::index;
use crate::multiway::planner::{choose_access, SharedSpecStats};
use crate::query::JoinSpec;
use crate::stats::QueryOutcome;
use crate::statsmaint::DEFAULT_STALENESS_BOUND;

enum SpecKind {
    /// Two sides: the binary executor, delegated to verbatim.
    Binary(Box<RankJoinExecutor>),
    /// Three or more sides: the multiway path.
    Nary {
        /// Built/attached multiway index table.
        table: Option<String>,
        stats: Arc<SharedSpecStats>,
    },
}

/// Executes any [`JoinSpec`] (see the module docs).
pub struct SpecExecutor {
    engine: MapReduceEngine,
    spec: JoinSpec,
    kind: SpecKind,
    /// Multiway descent knobs (N-ary path; the binary path keeps its own
    /// [`RankJoinExecutor::isl_config`], reachable via
    /// [`SpecExecutor::binary_mut`]).
    pub config: MultiwayConfig,
    /// Forces the per-side access assignment instead of planning it
    /// (N-ary path only).
    pub access_override: Option<Vec<SideAccess>>,
    /// Staleness bound fed to spec-statistics planning — same contract
    /// as [`RankJoinExecutor::staleness_bound`], which governs the
    /// binary path independently.
    pub staleness_bound: f64,
}

impl SpecExecutor {
    /// Creates an executor for `spec` on `cluster`.
    pub fn new(cluster: &Cluster, spec: JoinSpec) -> Self {
        let kind = match spec.as_binary() {
            Some(query) => SpecKind::Binary(Box::new(RankJoinExecutor::new(cluster, query))),
            None => SpecKind::Nary {
                table: None,
                stats: SharedSpecStats::new(&spec),
            },
        };
        SpecExecutor {
            engine: MapReduceEngine::new(cluster.clone()),
            spec,
            kind,
            config: MultiwayConfig::default(),
            access_override: None,
            staleness_bound: DEFAULT_STALENESS_BOUND,
        }
    }

    /// The spec this executor serves.
    pub fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    /// The spec's canonical fingerprint ([`JoinSpec::fingerprint`]) —
    /// the sharing/caching key serving layers coalesce on.
    pub fn fingerprint(&self) -> u64 {
        self.spec.fingerprint()
    }

    /// Whether this executor runs the binary delegation path.
    pub fn is_binary(&self) -> bool {
        matches!(self.kind, SpecKind::Binary(_))
    }

    /// The delegated binary executor, when two-sided (full binary API:
    /// every algorithm, planner, adaptive switching).
    pub fn binary(&self) -> Option<&RankJoinExecutor> {
        match &self.kind {
            SpecKind::Binary(b) => Some(b),
            SpecKind::Nary { .. } => None,
        }
    }

    /// Mutable access to the delegated binary executor.
    pub fn binary_mut(&mut self) -> Option<&mut RankJoinExecutor> {
        match &mut self.kind {
            SpecKind::Binary(b) => Some(b),
            SpecKind::Nary { .. } => None,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &MapReduceEngine {
        &self.engine
    }

    /// The spec-statistics handle (N-ary path only) — register it on the
    /// maintained write path so all-sides deltas keep plans fresh, share
    /// it across forks.
    pub fn spec_stats(&self) -> Option<Arc<SharedSpecStats>> {
        match &self.kind {
            SpecKind::Binary(_) => None,
            SpecKind::Nary { stats, .. } => Some(stats.clone()),
        }
    }

    /// Current statistics coherence version — binary delegates to the
    /// table-stats handle, N-ary to the spec-stats handle.
    pub fn stats_version(&self) -> u64 {
        match &self.kind {
            SpecKind::Binary(b) => b.stats_handle().version(),
            SpecKind::Nary { stats, .. } => stats.version(),
        }
    }

    /// Builds the score index: the binary ISL index for two sides, the
    /// multiway index ([`index::build`]) otherwise.
    pub fn prepare(&mut self) -> Result<BuildStats> {
        match &mut self.kind {
            SpecKind::Binary(b) => b.prepare_isl(),
            SpecKind::Nary { table, stats } => {
                let name = index::index_table_name(&self.spec);
                let built = index::build(&self.engine, &self.spec, &name)?;
                *table = Some(name);
                // Same contract as the binary `prepare_*`: preparation
                // invalidates statistics (and bumps the version every
                // open cursor is pinned against).
                stats.invalidate();
                Ok(built)
            }
        }
    }

    /// Attaches an already-built index table instead of building one.
    pub fn attach(&mut self, index_table: &str) -> Result<()> {
        match &mut self.kind {
            SpecKind::Binary(b) => b.attach_isl(index_table),
            SpecKind::Nary { table, stats } => {
                self.engine
                    .cluster()
                    .table(index_table)
                    .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
                *table = Some(index_table.to_owned());
                stats.invalidate();
                Ok(())
            }
        }
    }

    /// Whether the index is ready (built or attached).
    pub fn prepared(&self) -> bool {
        match &self.kind {
            SpecKind::Binary(b) => b.isl_table().is_some(),
            SpecKind::Nary { table, .. } => table.is_some(),
        }
    }

    /// The index table in use, if prepared.
    pub fn index_table(&self) -> Option<&str> {
        match &self.kind {
            SpecKind::Binary(b) => b.isl_table(),
            SpecKind::Nary { table, .. } => table.as_deref(),
        }
    }

    /// The per-side access assignment a top-`k` run would use:
    /// [`access_override`](SpecExecutor::access_override) if set,
    /// otherwise the planner's choice over current spec statistics
    /// (collecting within the staleness bound — see
    /// [`SharedSpecStats::stats_for_planning`]). Binary specs descend
    /// both sides by construction (that *is* ISL).
    pub fn plan_access(&self, k: usize) -> Result<Vec<SideAccess>> {
        if let Some(access) = &self.access_override {
            return Ok(access.clone());
        }
        match &self.kind {
            SpecKind::Binary(_) => Ok(vec![SideAccess::Descend; 2]),
            SpecKind::Nary { stats, .. } => {
                let planned =
                    stats.stats_for_planning(self.engine.cluster(), self.staleness_bound)?;
                Ok(choose_access(&self.spec, &planned.stats, k))
            }
        }
    }

    /// Opens a pull-based [`RankedCursor`] targeting the top `k_hint` —
    /// the spec-level sibling of [`RankJoinExecutor::open_cursor`].
    pub fn open_cursor(&self, k_hint: usize) -> Result<Box<dyn RankedCursor>> {
        match &self.kind {
            SpecKind::Binary(b) => b.open_cursor(Algorithm::Isl, k_hint),
            SpecKind::Nary { table, stats } => {
                let table = table
                    .as_deref()
                    .ok_or_else(|| RankJoinError::MissingIndex("multiway (unprepared)".into()))?;
                // Plan first, then pin: the access choice may run a
                // statistics pass, and the cursor must pin the version
                // as of the moment it starts reading.
                let access = self.plan_access(k_hint)?;
                let pinned = Some(stats.version());
                Ok(Box::new(MultiwayCursor::open_pinned(
                    self.engine.cluster(),
                    &self.spec.with_k(k_hint),
                    table,
                    self.config,
                    access,
                    pinned,
                )?))
            }
        }
    }

    /// Executes the spec's own `k`.
    pub fn execute(&self) -> Result<QueryOutcome> {
        self.execute_with_k(self.spec.k)
    }

    /// Executes with an overridden `k` (`k = 0` short-circuits to an
    /// empty, zero-cost outcome — the [`JoinSpec::with_k`] contract).
    pub fn execute_with_k(&self, k: usize) -> Result<QueryOutcome> {
        match &self.kind {
            SpecKind::Binary(b) => b.execute_with_k(Algorithm::Isl, k),
            SpecKind::Nary { .. } => {
                if k == 0 {
                    return Ok(QueryOutcome::new(
                        "MULTIWAY",
                        Vec::new(),
                        rj_store::metrics::MetricsSnapshot::default(),
                    ));
                }
                let mut cursor = self.open_cursor(k)?;
                let mut results = Vec::new();
                loop {
                    let batch = cursor.next_batch(k, &StopPolicy::default())?;
                    results.extend(batch.results);
                    if batch.done {
                        break;
                    }
                }
                Ok(QueryOutcome::new("MULTIWAY", results, cursor.charged()))
            }
        }
    }

    /// Resumes a paused [`CursorState`], refusing a statistics-version
    /// mismatch with [`RankJoinError::StaleCursor`] — the same coherence
    /// contract as [`RankJoinExecutor::resume_cursor`].
    pub fn resume_cursor(&self, state: CursorState) -> Result<Box<dyn RankedCursor>> {
        match &self.kind {
            SpecKind::Binary(b) => b.resume_cursor(state),
            SpecKind::Nary { .. } => {
                self.check_cursor_version(&state)?;
                state.resume_on(self.engine.cluster())
            }
        }
    }

    /// Re-targets a paused state to a deeper `new_k` and resumes it (the
    /// warm start), with the same staleness check.
    pub fn resume_cursor_retargeted(
        &self,
        state: CursorState,
        new_k: usize,
    ) -> Result<Box<dyn RankedCursor>> {
        match &self.kind {
            SpecKind::Binary(b) => b.resume_cursor_retargeted(state, new_k),
            SpecKind::Nary { .. } => {
                self.check_cursor_version(&state)?;
                state.resume_retargeted(self.engine.cluster(), new_k)
            }
        }
    }

    fn check_cursor_version(&self, state: &CursorState) -> Result<()> {
        if let Some(expected) = state.pinned_version() {
            let found = self.stats_version();
            if expected != found {
                return Err(RankJoinError::StaleCursor { expected, found });
            }
        }
        Ok(())
    }

    /// Clones this executor onto `cluster` (typically a
    /// [`Cluster::fork_metrics`] fork): same spec, same attached index,
    /// same tuning, and the *same* shared statistics handle, so
    /// maintained-write invalidations stay coherent across forks while
    /// each fork bills its own ledger.
    pub fn fork_onto(&self, cluster: &Cluster) -> Result<SpecExecutor> {
        let kind = match &self.kind {
            SpecKind::Binary(b) => SpecKind::Binary(Box::new(b.fork_onto(cluster)?)),
            SpecKind::Nary { table, stats } => {
                if let Some(t) = table {
                    cluster
                        .table(t)
                        .map_err(|_| RankJoinError::MissingIndex(t.clone()))?;
                }
                SpecKind::Nary {
                    table: table.clone(),
                    stats: stats.clone(),
                }
            }
        };
        Ok(SpecExecutor {
            engine: MapReduceEngine::new(cluster.clone()),
            spec: self.spec.clone(),
            kind,
            config: self.config,
            access_override: self.access_override.clone(),
            staleness_bound: self.staleness_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::testsupport::{running_example_cluster, three_way_path_cluster};

    #[test]
    fn binary_spec_delegates_byte_for_byte() {
        // The compatibility pin in miniature (the proptest version lives
        // in tests/multiway.rs): identical results AND identical counted
        // metrics between the spec path and the binary path.
        let (c1, q1) = running_example_cluster();
        let mut binary = RankJoinExecutor::new(&c1, q1.clone());
        binary.prepare_isl().unwrap();
        let before1 = c1.metrics().snapshot();
        let direct = binary.execute_with_k(Algorithm::Isl, 3).unwrap();
        let charge1 = c1.metrics().snapshot().delta_since(&before1);

        let (c2, q2) = running_example_cluster();
        let mut spec_exec = SpecExecutor::new(&c2, q2.to_spec());
        assert!(spec_exec.is_binary());
        spec_exec.prepare().unwrap();
        let before2 = c2.metrics().snapshot();
        let via_spec = spec_exec.execute_with_k(3).unwrap();
        let charge2 = c2.metrics().snapshot().delta_since(&before2);

        assert_eq!(direct.results, via_spec.results);
        assert_eq!(direct.algorithm, via_spec.algorithm);
        assert_eq!(charge1, charge2, "metrics must be byte-for-byte identical");
    }

    #[test]
    fn nary_execute_matches_oracle() {
        let (c, spec) = three_way_path_cluster(5);
        let mut exec = SpecExecutor::new(&c, spec.clone());
        assert!(!exec.is_binary());
        assert!(!exec.prepared());
        exec.prepare().unwrap();
        assert!(exec.prepared());
        let outcome = exec.execute().unwrap();
        assert_eq!(outcome.algorithm, "MULTIWAY");
        assert_eq!(outcome.results, oracle::topk_spec(&c, &spec).unwrap());
        assert!(outcome.metrics.kv_reads > 0, "index reads are billed");
    }

    #[test]
    fn unprepared_nary_refuses() {
        let (c, spec) = three_way_path_cluster(3);
        let exec = SpecExecutor::new(&c, spec);
        assert!(matches!(
            exec.execute(),
            Err(RankJoinError::MissingIndex(_))
        ));
    }

    #[test]
    fn k_zero_is_free() {
        let (c, spec) = three_way_path_cluster(3);
        let mut exec = SpecExecutor::new(&c, spec);
        exec.prepare().unwrap();
        let before = c.metrics().snapshot();
        let outcome = exec.execute_with_k(0).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(before.kv_reads, c.metrics().snapshot().kv_reads);
    }

    #[test]
    fn cursor_roundtrip_with_staleness_check() {
        let (c, spec) = three_way_path_cluster(6);
        let mut exec = SpecExecutor::new(&c, spec.clone());
        exec.prepare().unwrap();
        let mut cursor = exec.open_cursor(6).unwrap();
        let first = cursor.next_batch(2, &StopPolicy::default()).unwrap();
        let state = cursor.pause();
        let mut resumed = exec.resume_cursor(state).unwrap();
        let mut rest = Vec::new();
        loop {
            let batch = resumed.next_batch(10, &StopPolicy::default()).unwrap();
            rest.extend(batch.results);
            if batch.done {
                break;
            }
        }
        let mut all = first.results;
        all.extend(rest);
        assert_eq!(all, oracle::topk_spec(&c, &spec).unwrap());

        // A version bump between pause and resume must be refused.
        let mut cursor = exec.open_cursor(6).unwrap();
        cursor.next_batch(1, &StopPolicy::default()).unwrap();
        let state = cursor.pause();
        exec.spec_stats().unwrap().invalidate();
        assert!(matches!(
            exec.resume_cursor(state),
            Err(RankJoinError::StaleCursor { .. })
        ));
    }

    #[test]
    fn access_override_is_honoured() {
        let (c, spec) = three_way_path_cluster(4);
        let mut exec = SpecExecutor::new(&c, spec.clone());
        exec.prepare().unwrap();
        exec.access_override = Some(vec![
            SideAccess::Materialize,
            SideAccess::Descend,
            SideAccess::Materialize,
        ]);
        assert_eq!(
            exec.plan_access(4).unwrap(),
            exec.access_override.clone().unwrap()
        );
        let outcome = exec.execute().unwrap();
        assert_eq!(outcome.results, oracle::topk_spec(&c, &spec).unwrap());
    }

    #[test]
    fn fork_shares_stats_and_bills_own_ledger() {
        let (c, spec) = three_way_path_cluster(4);
        let mut exec = SpecExecutor::new(&c, spec);
        exec.prepare().unwrap();
        exec.execute().unwrap();
        let collections = exec.spec_stats().unwrap().collections();
        let fork_cluster = c.fork_metrics();
        let fork = exec.fork_onto(&fork_cluster).unwrap();
        let before_parent = c.metrics().snapshot();
        let outcome = fork.execute().unwrap();
        assert!(!outcome.results.is_empty());
        assert_eq!(
            c.metrics().snapshot().kv_reads,
            before_parent.kv_reads,
            "fork work billed to the fork's ledger"
        );
        assert_eq!(
            fork.spec_stats().unwrap().collections(),
            collections,
            "fork reuses the shared snapshot instead of re-collecting"
        );
    }
}
