//! Rank (top-k) join queries in NoSQL databases.
//!
//! This crate implements the complete algorithm suite of Ntarmos, Patlakas
//! & Triantafillou, *"Rank Join Queries in NoSQL Databases"*, PVLDB 7(7),
//! 2014 — the first study of top-k equi-joins over cloud stores. A rank
//! join computes
//!
//! ```sql
//! SELECT * FROM R1, R2
//! WHERE R1.jk = R2.jk
//! ORDER BY f(R1.score, R2.score)
//! STOP AFTER k
//! ```
//!
//! without materializing the full join. Implemented algorithms, all over
//! the [`rj_store`] cloudstore and the [`rj_mapreduce`] engine:
//!
//! | module | algorithm | paper |
//! |--------|-----------|-------|
//! | [`hive`] | Hive-style baseline: 2 MR jobs + fetch | §3.1 |
//! | [`pig`] | Pig-style baseline: 3 MR jobs with early projection, sampling, top-k combiners | §3.1 |
//! | [`ijlmr`] | Inverse Join List MapReduce rank join: indexed, single MR job | §4.1 |
//! | [`isl`] | Inverse Score List rank join: coordinator-based HRJN over score-ordered index | §4.2 |
//! | [`bfhm`] | Bloom Filter Histogram Matrix: statistical rank join with 100% recall | §5 |
//! | [`drjn`] | DRJN comparator (Doulkeridis et al., ICDE 2012) as adapted in §7.1 | §7.1 |
//! | [`hrjn`] | the centralized HRJN operator (Ilyas et al., VLDB 2003) ISL builds on | §4.2.1 |
//! | [`planner`] | cost-based adaptive selection over the suite ([`Algorithm::Auto`]) | Figs. 7–8 |
//! | [`adaptive`] | mid-query re-planning: ISL abort-and-switch on observed score-descent divergence | Figs. 7–8 |
//! | [`multiway`] | N-ary generalization: [`query::JoinSpec`]-driven multi-way rank joins (binary is the two-side degenerate form) | §8 outlook |
//!
//! Every algorithm returns the same deterministic top-k (ties broken by
//! key) and a [`rj_store::metrics::MetricsSnapshot`] with the paper's three
//! metrics: simulated time, network bytes, and KV read units (dollar cost).
//!
//! The update/maintenance machinery of §6 lives in [`maintenance`] (write
//! interception for the inverted-list indices) and
//! [`bfhm::maintenance`] (insertion/tombstone records + blob replay);
//! [`statsmaint`] extends the same interception to the planner's
//! statistics, so [`executor::Algorithm::Auto`] keeps choosing from fresh
//! histograms under maintained writes (with an explicit staleness bound).
//!
//! Start with [`executor::RankJoinExecutor`] for a uniform entry point, or
//! call each algorithm module directly.

#![warn(missing_docs)]

pub mod adaptive;
pub mod bfhm;
pub mod cancel;
pub mod codec;
pub mod cursor;
pub mod drjn;
pub mod error;
pub mod executor;
pub mod hive;
pub mod hrjn;
pub mod ijlmr;
pub mod indexutil;
pub mod isl;
pub mod maintenance;
pub mod multiway;
pub mod oracle;
pub mod pig;
pub mod planner;
pub mod query;
pub mod result;
pub mod score;
pub mod stats;
pub mod statsmaint;

#[cfg(test)]
pub(crate) mod testsupport;

pub use adaptive::DEFAULT_REPLAN_DIVERGENCE;
pub use cancel::{CancelToken, StopPolicy, StopReason};
pub use cursor::{open_isl_cursor, CursorBatch, CursorState, RankedCursor};
pub use executor::{Algorithm, RankJoinExecutor};
pub use multiway::{MultiwayConfig, MultiwayCursor, SharedSpecStats, SideAccess, SpecExecutor};
pub use planner::{DescentModel, Objective, Plan, StatsSource, TableStats};
pub use query::{JoinEdge, JoinSide, JoinSpec, RankJoinQuery, SpecShape};
pub use result::{JoinTuple, TopK};
pub use rj_store::parallel::ExecutionMode;
pub use score::ScoreFn;
pub use stats::QueryOutcome;
pub use statsmaint::{
    ObservedDescent, SharedTableStats, StatsDelta, StatsMaintainer, DEFAULT_STALENESS_BOUND,
};
