//! Wire encodings for records the algorithms ship between stages:
//! tagged join inputs, joined tuples, and index cell payloads.
//!
//! Simple length-prefixed framing: each field is `u32 BE length ‖ bytes`.
//! Fixed-width scalars (scores, tags) are encoded raw. The codecs are
//! deliberately byte-exact — network/byte metrics in the experiments are
//! only meaningful if record sizes are real.

use crate::result::JoinTuple;

/// Encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Appends a length-prefixed field.
pub fn put_field(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_be_bytes());
    out.extend_from_slice(field);
}

/// Appends an f64.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reading cursor over an encoded record.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Reads a length-prefixed field.
    pub fn field(&mut self) -> Result<&'a [u8], CodecError> {
        let len_bytes = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(CodecError("truncated length"))?;
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        self.pos += 4;
        let field = self
            .buf
            .get(self.pos..self.pos + len)
            .ok_or(CodecError("truncated field"))?;
        self.pos += len;
        Ok(field)
    }

    /// Reads an f64.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(CodecError("truncated f64"))?;
        self.pos += 8;
        Ok(f64::from_be_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a raw big-endian u32 (counts, not length-prefixed fields).
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(CodecError("truncated u32"))?;
        self.pos += 4;
        Ok(u32::from_be_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError("truncated u8"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Whether the record is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A join input tuple tagged with its side (the Hive/Pig shuffle record).
#[derive(Clone, Debug, PartialEq)]
pub struct TaggedTuple {
    /// 0 = left relation, 1 = right.
    pub side: u8,
    /// Base row key.
    pub row_key: Vec<u8>,
    /// Individual score.
    pub score: f64,
    /// Extra shipped payload (full-row bytes for Hive; empty for Pig's
    /// early-projected records).
    pub payload: Vec<u8>,
}

impl TaggedTuple {
    /// Encodes the tuple.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.row_key.len() + self.payload.len() + 16);
        out.push(self.side);
        put_f64(&mut out, self.score);
        put_field(&mut out, &self.row_key);
        put_field(&mut out, &self.payload);
        out
    }

    /// Decodes a tuple.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let side = r.u8()?;
        let score = r.f64()?;
        let row_key = r.field()?.to_vec();
        let payload = r.field()?.to_vec();
        Ok(TaggedTuple {
            side,
            row_key,
            score,
            payload,
        })
    }
}

/// Encodes a full [`JoinTuple`] (the joined-record files of Hive/Pig and
/// the shuffle values of IJLMR's reduce stage).
pub fn encode_join_tuple(t: &JoinTuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.left_key.len() + t.right_key.len() + 40);
    put_f64(&mut out, t.score);
    put_f64(&mut out, t.left_score);
    put_f64(&mut out, t.right_score);
    put_field(&mut out, &t.join_value);
    put_field(&mut out, &t.left_key);
    put_field(&mut out, &t.right_key);
    out
}

/// Inverse of [`encode_join_tuple`].
pub fn decode_join_tuple(buf: &[u8]) -> Result<JoinTuple, CodecError> {
    let mut r = Reader::new(buf);
    let score = r.f64()?;
    let left_score = r.f64()?;
    let right_score = r.f64()?;
    let join_value = r.field()?.to_vec();
    let left_key = r.field()?.to_vec();
    let right_key = r.field()?.to_vec();
    Ok(JoinTuple {
        left_key,
        right_key,
        join_value,
        left_score,
        right_score,
        inner: Vec::new(),
        score,
    })
}

/// Encodes a `(join value, score)` pair — the BFHM reverse-mapping cell
/// value (`{rowkey: join value, score}`, §5.1 Fig. 5) and the ISL index
/// cell value.
pub fn encode_value_score(join_value: &[u8], score: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(join_value.len() + 12);
    put_f64(&mut out, score);
    put_field(&mut out, join_value);
    out
}

/// Inverse of [`encode_value_score`].
pub fn decode_value_score(buf: &[u8]) -> Result<(Vec<u8>, f64), CodecError> {
    let mut r = Reader::new(buf);
    let score = r.f64()?;
    let join_value = r.field()?.to_vec();
    Ok((join_value, score))
}

/// Encodes a `(score, join values)` cell for the N-ary index: a side with
/// several incident join edges carries one join value per edge (edge
/// order fixed by [`crate::query::JoinSpec::incident_edges`]). The
/// one-value layout is deliberately *not* byte-identical to
/// [`encode_value_score`] — multiway cells carry a count so a truncated
/// or mixed-up read fails loudly instead of mis-joining.
pub fn encode_multi_value_score(join_values: &[Vec<u8>], score: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + join_values.iter().map(|v| v.len() + 4).sum::<usize>());
    put_f64(&mut out, score);
    out.extend_from_slice(&(join_values.len() as u32).to_be_bytes());
    for v in join_values {
        put_field(&mut out, v);
    }
    out
}

/// Inverse of [`encode_multi_value_score`].
pub fn decode_multi_value_score(buf: &[u8]) -> Result<(Vec<Vec<u8>>, f64), CodecError> {
    let mut r = Reader::new(buf);
    let score = r.f64()?;
    let count = r.u32()? as usize;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.field()?.to_vec());
    }
    if !r.is_exhausted() {
        return Err(CodecError("trailing bytes in multi value/score cell"));
    }
    Ok((values, score))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_tuple_roundtrip() {
        let t = TaggedTuple {
            side: 1,
            row_key: b"r123".to_vec(),
            score: 0.82,
            payload: b"full row bytes".to_vec(),
        };
        assert_eq!(TaggedTuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn join_tuple_roundtrip() {
        let t = JoinTuple {
            left_key: b"l".to_vec(),
            right_key: b"r".to_vec(),
            join_value: b"d".to_vec(),
            left_score: 0.82,
            right_score: 0.91,
            inner: Vec::new(),
            score: 1.73,
        };
        assert_eq!(decode_join_tuple(&encode_join_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn value_score_roundtrip() {
        let (j, s) = decode_value_score(&encode_value_score(b"dval", 0.41)).unwrap();
        assert_eq!(j, b"dval".to_vec());
        assert_eq!(s, 0.41);
    }

    #[test]
    fn multi_value_score_roundtrip() {
        let vals = vec![b"e0".to_vec(), b"edge-1".to_vec(), Vec::new()];
        let enc = encode_multi_value_score(&vals, 0.63);
        let (got, s) = decode_multi_value_score(&enc).unwrap();
        assert_eq!(got, vals);
        assert_eq!(s, 0.63);
        // Zero edges is legal (a single-side degenerate read).
        let (got, s) = decode_multi_value_score(&encode_multi_value_score(&[], 1.0)).unwrap();
        assert!(got.is_empty());
        assert_eq!(s, 1.0);
        // Trailing garbage fails loudly.
        let mut bad = enc.clone();
        bad.push(0);
        assert!(decode_multi_value_score(&bad).is_err());
        assert!(decode_multi_value_score(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let t = TaggedTuple {
            side: 0,
            row_key: b"rk".to_vec(),
            score: 1.0,
            payload: vec![],
        };
        let enc = t.encode();
        for cut in [0, 1, 5, enc.len() - 1] {
            assert!(TaggedTuple::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_fields_are_fine() {
        let (j, s) = decode_value_score(&encode_value_score(b"", 0.0)).unwrap();
        assert!(j.is_empty());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn reader_exhaustion_tracking() {
        let mut out = Vec::new();
        put_field(&mut out, b"x");
        let mut r = Reader::new(&out);
        assert!(!r.is_exhausted());
        r.field().unwrap();
        assert!(r.is_exhausted());
    }
}
