//! Unit-test fixtures shared across algorithm modules.

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

use crate::query::{JoinEdge, JoinSide, JoinSpec, RankJoinQuery};
use crate::score::ScoreFn;

/// The paper's Fig. 1 running example: relations R1 and R2 with 11 tuples
/// each, join values a–d, scores as printed. Returns a loaded cluster and
/// the top-3 sum-scored query used throughout §4–§5.
pub(crate) fn running_example_cluster() -> (Cluster, RankJoinQuery) {
    running_example_cluster_with(CostModel::test())
}

/// [`running_example_cluster`] under an explicit cost profile — for tests
/// that need realistic constants (e.g. MR job startup dominating at
/// 11-tuple scale) rather than the near-zero test profile.
pub(crate) fn running_example_cluster_with(cost: CostModel) -> (Cluster, RankJoinQuery) {
    let c = Cluster::new(3, cost);
    c.create_table("r1", &["d"]).unwrap();
    c.create_table("r2", &["d"]).unwrap();
    let client = c.client();
    for (rows, t) in [(fig1_r1(), "r1"), (fig1_r2(), "r2")] {
        for (k, j, s) in rows {
            client
                .mutate_row(
                    t,
                    k.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let q = RankJoinQuery::new(
        JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );
    (c, q)
}

/// A three-relation path fixture: `A ⋈ B ⋈ C`, where the interior side
/// `B` joins `A` on column `jk1` and `C` on a *different* column `jk2`
/// (exercising per-edge columns). Deterministically generated join
/// values over `{a, b, c}` and scores over `(0, 1]`. Returns the loaded
/// cluster and the top-`k` sum-scored path spec.
pub(crate) fn three_way_path_cluster(k: usize) -> (Cluster, JoinSpec) {
    let c = Cluster::new(3, CostModel::test());
    c.create_table("ta", &["d"]).unwrap();
    c.create_table("tb", &["d"]).unwrap();
    c.create_table("tc", &["d"]).unwrap();
    let client = c.client();
    let mut x: u64 = 0x9e37_79b9;
    let mut step = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    for i in 0..14 {
        let j = [b'a' + (step() >> 33) as u8 % 3];
        let s = ((step() >> 11) % 1000 + 1) as f64 / 1000.0;
        client
            .mutate_row(
                "ta",
                format!("a{i:02}").as_bytes(),
                vec![
                    Mutation::put("d", b"jk", j.to_vec()),
                    Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
    }
    for i in 0..12 {
        let j1 = [b'a' + (step() >> 33) as u8 % 3];
        let j2 = [b'a' + (step() >> 33) as u8 % 3];
        let s = ((step() >> 11) % 1000 + 1) as f64 / 1000.0;
        client
            .mutate_row(
                "tb",
                format!("b{i:02}").as_bytes(),
                vec![
                    Mutation::put("d", b"jk1", j1.to_vec()),
                    Mutation::put("d", b"jk2", j2.to_vec()),
                    Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
    }
    for i in 0..13 {
        let j = [b'a' + (step() >> 33) as u8 % 3];
        let s = ((step() >> 11) % 1000 + 1) as f64 / 1000.0;
        client
            .mutate_row(
                "tc",
                format!("c{i:02}").as_bytes(),
                vec![
                    Mutation::put("d", b"jk", j.to_vec()),
                    Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
    }
    let sides = vec![
        JoinSide::new("ta", "A", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("tb", "B", ("d", b"jk1"), ("d", b"score")),
        JoinSide::new("tc", "C", ("d", b"jk"), ("d", b"score")),
    ];
    let edges = vec![
        JoinEdge::on_join_cols(&sides, 0, 1),
        JoinEdge {
            a: 1,
            a_col: ("d".to_owned(), b"jk2".to_vec()),
            b: 2,
            b_col: ("d".to_owned(), b"jk".to_vec()),
        },
    ];
    let spec = JoinSpec::new(sides, edges, k, ScoreFn::Sum).unwrap();
    (c, spec)
}

/// Fig. 1, relation R1.
pub(crate) fn fig1_r1() -> Vec<(&'static str, &'static [u8], f64)> {
    vec![
        ("r1_01", b"d", 0.82),
        ("r1_02", b"c", 0.93),
        ("r1_03", b"c", 0.67),
        ("r1_04", b"d", 0.82),
        ("r1_05", b"a", 0.73),
        ("r1_06", b"c", 0.79),
        ("r1_07", b"b", 0.82),
        ("r1_08", b"b", 0.70),
        ("r1_09", b"d", 0.68),
        ("r1_10", b"a", 1.00),
        ("r1_11", b"b", 0.64),
    ]
}

/// Fig. 1, relation R2.
pub(crate) fn fig1_r2() -> Vec<(&'static str, &'static [u8], f64)> {
    vec![
        ("r2_01", b"a", 0.51),
        ("r2_02", b"b", 0.91),
        ("r2_03", b"c", 0.64),
        ("r2_04", b"d", 0.53),
        ("r2_05", b"d", 0.41),
        ("r2_06", b"d", 0.50),
        ("r2_07", b"a", 0.35),
        ("r2_08", b"a", 0.38),
        ("r2_09", b"a", 0.37),
        ("r2_10", b"c", 0.31),
        ("r2_11", b"b", 0.92),
    ]
}
