//! The Hive-style baseline (paper §3.1).
//!
//! "In Hive, rank join processing consists of two MapReduce jobs plus a
//! final stage. The first job computes and materializes the join result
//! set, while the second one computes the score of the join result set
//! tuples and stores them sorted on their score; a third, non-MapReduce
//! stage then fetches the k highest-ranked results from the final list."
//!
//! Faithfully expensive: mappers ship **whole rows** (no early
//! projection), the full join result is materialized to the DFS, and the
//! global sort funnels everything through a single reducer — which is why
//! Hive trails every other approach by orders of magnitude in the paper's
//! Figures 7–8.

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper, Reducer};
use rj_mapreduce::MapReduceEngine;
use rj_store::keys;
use rj_store::metrics::QueryMeter;

use crate::codec::{self, TaggedTuple};
use crate::error::Result;
use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

/// DFS path of the materialized join result.
const JOINED_FILE: &str = "hive/__joined";
/// DFS path of the score-sorted join result.
const SORTED_FILE: &str = "hive/__sorted";

/// Serializes every cell of a row — Hive's `SELECT *` shipping.
fn full_row_payload(row: &rj_store::row::RowResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.weight() as usize + 16);
    for cell in &row.cells {
        codec::put_field(&mut out, cell.family.as_bytes());
        codec::put_field(&mut out, &cell.qualifier);
        codec::put_field(&mut out, &cell.value);
    }
    out
}

struct JoinMapper {
    query: RankJoinQuery,
}

impl Mapper for JoinMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let (Some(table), Some(row)) = (input.table(), input.row()) else {
            return;
        };
        let (side_idx, side) = if table == self.query.left.table {
            (0u8, &self.query.left)
        } else {
            (1u8, &self.query.right)
        };
        let Some((join_value, score)) = side.extract(row) else {
            return;
        };
        let tagged = TaggedTuple {
            side: side_idx,
            row_key: row.key.clone(),
            score,
            payload: full_row_payload(row),
        };
        out.emit(join_value, tagged.encode());
    }
}

struct JoinReducer {
    query: RankJoinQuery,
}

impl Reducer for JoinReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for v in values {
            match TaggedTuple::decode(v) {
                Ok(t) if t.side == 0 => left.push(t),
                Ok(t) => right.push(t),
                Err(_) => {}
            }
        }
        for l in &left {
            for r in &right {
                let tuple = JoinTuple {
                    left_key: l.row_key.clone(),
                    right_key: r.row_key.clone(),
                    join_value: key.to_vec(),
                    left_score: l.score,
                    right_score: r.score,
                    inner: Vec::new(),
                    score: self.query.score_fn.combine(l.score, r.score),
                };
                // The joined record drags both full-row payloads along —
                // Hive materializes complete result tuples.
                let mut rec = codec::encode_join_tuple(&tuple);
                codec::put_field(&mut rec, &l.payload);
                codec::put_field(&mut rec, &r.payload);
                out.emit(key.to_vec(), rec);
            }
        }
    }
}

/// Sort key: order-inverted score, then the base keys for determinism.
fn sort_key(t: &JoinTuple) -> Vec<u8> {
    let mut k = Vec::with_capacity(16 + t.left_key.len() + t.right_key.len());
    k.extend_from_slice(&keys::encode_score_desc(t.score));
    k.extend_from_slice(&t.left_key);
    k.push(0);
    k.extend_from_slice(&t.right_key);
    k
}

struct SortMapper;

impl Mapper for SortMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let InputRecord::Pair { value, .. } = input else {
            return;
        };
        let Ok(tuple) = codec::decode_join_tuple(value) else {
            return;
        };
        out.emit(sort_key(&tuple), value.to_vec());
    }
}

struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        for v in values {
            out.emit(key.to_vec(), v.clone());
        }
    }
}

/// Executes the Hive-style rank join.
pub fn run(engine: &MapReduceEngine, query: &RankJoinQuery) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "HIVE",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let meter = QueryMeter::start(engine.cluster().metrics());

    // Job 1: materialize the join result.
    let join_spec = JobSpec::new(
        "hive-join",
        JobInput::two_tables(
            TableInput::all(&query.left.table),
            TableInput::all(&query.right.table),
        ),
        engine.cluster().num_nodes(),
    )
    .sink(OutputSink::File(JOINED_FILE.into()));
    let q1 = query.clone();
    let q2 = query.clone();
    let join_result = engine.run(
        &join_spec,
        &move || Box::new(JoinMapper { query: q1.clone() }),
        Some(&move || Box::new(JoinReducer { query: q2.clone() })),
        None,
    )?;

    // Job 2: global sort on score (single reducer, as Hive's ORDER BY).
    let sort_spec = JobSpec::new("hive-sort", JobInput::file(JOINED_FILE), 1)
        .sink(OutputSink::File(SORTED_FILE.into()));
    let sort_result = engine.run(
        &sort_spec,
        &|| Box::new(SortMapper),
        Some(&|| Box::new(IdentityReducer)),
        None,
    )?;

    // Final non-MapReduce stage: fetch the top-k prefix.
    let fetched = engine.fetch_file_prefix(SORTED_FILE, query.k)?;
    let mut top = TopK::new(query.k);
    for (_k, v) in &fetched {
        top.offer(codec::decode_join_tuple(v)?);
    }

    engine.dfs().remove(JOINED_FILE);
    engine.dfs().remove(SORTED_FILE);

    Ok(
        QueryOutcome::new("HIVE", top.into_sorted_vec(), meter.finish())
            .with_extra("mr_jobs", 2.0)
            .with_extra(
                "join_result_records",
                join_result.counters.output_records as f64,
            )
            .with_extra("sorted_records", sort_result.counters.output_records as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::query::JoinSide;
    use crate::score::ScoreFn;
    use rj_store::cell::Mutation;
    use rj_store::cluster::Cluster;
    use rj_store::costmodel::CostModel;

    fn setup(
        rows_l: &[(&str, &[u8], f64)],
        rows_r: &[(&str, &[u8], f64)],
    ) -> (Cluster, RankJoinQuery) {
        let c = Cluster::new(3, CostModel::test());
        c.create_table("l", &["d"]).unwrap();
        c.create_table("r", &["d"]).unwrap();
        let client = c.client();
        for (rows, t) in [(rows_l, "l"), (rows_r, "r")] {
            for &(k, j, s) in rows {
                client
                    .mutate_row(
                        t,
                        k.as_bytes(),
                        vec![
                            Mutation::put("d", b"jk", j.to_vec()),
                            Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                            Mutation::put("d", b"comment", b"some wide filler text".to_vec()),
                        ],
                    )
                    .unwrap();
            }
        }
        let q = RankJoinQuery::new(
            JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
            3,
            ScoreFn::Sum,
        );
        (c, q)
    }

    #[test]
    fn matches_oracle() {
        let (c, q) = setup(
            &[
                ("l1", b"a", 0.9),
                ("l2", b"b", 0.8),
                ("l3", b"a", 0.3),
                ("l4", b"c", 0.6),
            ],
            &[
                ("r1", b"a", 0.7),
                ("r2", b"b", 0.95),
                ("r3", b"c", 0.2),
                ("r4", b"a", 0.5),
            ],
        );
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q).unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        assert_eq!(got.results, want);
        assert_eq!(got.algorithm, "HIVE");
    }

    #[test]
    fn empty_join_is_empty() {
        let (c, q) = setup(&[("l1", b"a", 0.9)], &[("r1", b"z", 0.7)]);
        let engine = MapReduceEngine::new(c);
        let got = run(&engine, &q).unwrap();
        assert!(got.results.is_empty());
    }

    #[test]
    fn charges_two_jobs_and_cleans_up() {
        let (c, q) = setup(&[("l1", b"a", 0.9)], &[("r1", b"a", 0.7)]);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q).unwrap();
        assert_eq!(got.extra("mr_jobs"), Some(2.0));
        assert!(got.metrics.kv_reads >= 6, "scans both tables fully");
        assert!(!engine.dfs().exists(JOINED_FILE));
        assert!(!engine.dfs().exists(SORTED_FILE));
    }
}
