//! Incremental statistics maintenance: keeping the planner's
//! [`TableStats`] fresh under the §6 maintained write path.
//!
//! The cost-based planner ([`crate::planner`]) is only as good as the
//! freshness of the statistics behind it — the adaptive-operator
//! literature (Tziavelis et al., *Ranked Enumeration for Database
//! Queries*; *Optimal Join Algorithms Meet Top-k*) makes the same point
//! for every cost-based ranked-query choice. Before this module, an
//! executor snapshotted statistics once and only invalidated them on
//! `prepare_*`/`attach_*`; a workload mixing [`crate::maintenance::MaintainedSide`]
//! writes with [`crate::executor::Algorithm::Auto`] queries silently
//! planned against histograms that no longer described the data.
//!
//! The fix has three parts:
//!
//! * **Deltas.** Every maintained insert/delete is reduced to a
//!   [`StatsDelta`] — which side, which join value, which score, how many
//!   bytes — and fanned out to the registered [`StatsMaintainer`]s,
//!   exactly like the §6 index maintenance fans base mutations out to the
//!   attached indices.
//! * **In-place merge.** [`SharedTableStats`] holds one maintained
//!   [`TableStats`] snapshot per query pair plus the bookkeeping a delta
//!   needs to merge *exactly*: a per-join-value fingerprint sketch (so
//!   `distinct_joins` and the exact expected join cardinality
//!   `Σ_v |L_v|·|R_v|` adjust incrementally) and per-side byte totals.
//!   Tuple counts, histograms, distinct counts, and join cardinality stay
//!   exact under any interleaving; only `max_score` degrades to
//!   bucket-granular after deletes (the true maximum of the survivors is
//!   unknown without a recount — the same conservative deviation the BFHM
//!   blob maintenance documents, and conservative in the same direction:
//!   bounds only widen).
//! * **A staleness bound the planner can reason about.** The handle
//!   tracks the fraction of either side's tuples mutated since the last
//!   full [`crate::planner::collect_stats`] pass. Below the executor's bound, planning
//!   trusts the maintained snapshot (no table pass — asserted in tests
//!   via the store's admin-read accounting); above it, the executor
//!   transparently re-collects, and [`Plan::explain`](crate::planner::Plan::explain)
//!   reports which path was taken via [`StatsSource`].
//!
//! The handle is `Arc`-shared: the executor that owns a query pair, any
//! `fork_metrics` clones serving the same pair concurrently, and the
//! maintained write paths all see one set of statistics, and plan-cache
//! entries are versioned against it so every delta coherently invalidates
//! stale plans everywhere.
//!
//! **What the bound can and cannot see.** The mutation counter advances
//! only on deltas, i.e. on writes routed through `MaintainedSide` — so
//! the bound covers the maintained path's *own* imperfections (the
//! bucket-granular `max_score` after deletes, the double-count race
//! below, partial-failure retries), all of which do advance the counter
//! and therefore eventually force a re-collection. Writes that bypass
//! `MaintainedSide` entirely (raw `Client::mutate_row`) are invisible to
//! the counter, exactly as they are invisible to the §6 index
//! maintenance: the contract is that online mutations go through the
//! intercepted write path, and a caller who bulk-loads around it must
//! re-prepare (or [`SharedTableStats::invalidate`]) just as they must
//! rebuild the indices.
//!
//! **Concurrency caveat.** Exactness is guaranteed for writes serialized
//! against collections. A maintained write racing a concurrent full
//! collection can be counted twice: its base row lands early enough for
//! the collection's scan to see it, while its delta (blocked on the
//! handle lock the collection holds) merges into the freshly installed
//! snapshot afterwards. The drift is bounded by in-flight writes, every
//! such delta still advances the mutation counter, and the next
//! bound-crossing re-collection erases it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use rj_store::cluster::Cluster;

use crate::error::{RankJoinError, Result};
use crate::planner::{
    collect_stats_detailed, DetailedStats, SideStats, StatsSource, TableStats, KV_OVERHEAD_BYTES,
    STAT_BUCKETS,
};
use crate::query::RankJoinQuery;

/// Default fraction of a side's tuples that may mutate before the planner
/// stops trusting incrementally-maintained statistics and re-collects.
///
/// The maintained snapshot is exact in everything but `max_score`, so
/// the bound is really about the maintained path's residual
/// imperfections — bucket-granular extrema after deletes, the
/// double-count race under concurrent collection, partial-failure
/// retries — all of which advance the mutation counter. 10% keeps
/// re-collection rare under update-heavy workloads while bounding how
/// long such drift can influence depth estimates. (Writes bypassing
/// `MaintainedSide` never advance the counter — see the module docs.)
pub const DEFAULT_STALENESS_BOUND: f64 = 0.1;

/// Seed for the join-value fingerprint hash (stable across processes —
/// the sketch itself is in-memory only, but determinism keeps tests and
/// replays exact).
const FINGERPRINT_SEED: u64 = 0x5747_5353;

/// 64-bit fingerprint of a join value, keying the distinct-join-value
/// sketch. Collisions merge two join values' counts; at 64 bits they are
/// negligible next to histogram bucketing error.
pub fn join_fingerprint(join_value: &[u8]) -> u64 {
    rj_sketch::hash::hash_bytes(FINGERPRINT_SEED, join_value)
}

/// Whether a delta adds or removes a tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// A maintained insert landed.
    Insert,
    /// A maintained delete landed.
    Delete,
}

/// The statistics-relevant residue of one maintained base-table mutation,
/// emitted by [`crate::maintenance::MaintainedSide`] after the §6 write
/// fan-out succeeds.
///
/// A delta identifies the write by the *statistics schema* it touched —
/// base table plus join/score columns — not by side label: statistics
/// are a function of `(table, join_col, score_col)`, so a handle applies
/// a matching delta to **every** side with that schema. In particular, a
/// self-join over one table with identical columns sees each write on
/// both sides (exactly as a full `collect_stats` pass would); a
/// self-join ranking the two sides by *different* columns only updates
/// the side whose columns the write actually carried.
#[derive(Clone, Debug)]
pub struct StatsDelta {
    /// Base table the mutation hit.
    pub table: String,
    /// `(family, qualifier)` of the join-attribute column written.
    pub join_col: (String, Vec<u8>),
    /// `(family, qualifier)` of the score column written.
    pub score_col: (String, Vec<u8>),
    /// Insert or delete.
    pub op: DeltaOp,
    /// Fingerprint of the tuple's join value (see [`join_fingerprint`]).
    pub join_fingerprint: u64,
    /// The tuple's score.
    pub score: f64,
    /// Indexed-entry bytes the tuple contributes to transfer-size models
    /// (same accounting as the full statistics pass).
    pub entry_bytes: f64,
}

/// Anything that wants to observe maintained-write deltas — the §6 write
/// path fans each mutation out to every registered maintainer, mirroring
/// how it fans the mutation itself out to the attached indices.
pub trait StatsMaintainer: Send + Sync {
    /// Folds one write's delta in.
    fn apply_delta(&self, delta: &StatsDelta);
}

/// The maintained snapshot plus the bookkeeping deltas need to merge
/// exactly. Embeds the full pass's [`DetailedStats`] verbatim, so the
/// collect path and the merge path stay structurally in sync.
struct Maintained {
    detail: DetailedStats,
    /// Per-side mutations folded in since the last full pass.
    mutations: [u64; 2],
    /// Per-side tuple counts at the last full pass (staleness denominator).
    baseline_tuples: [u64; 2],
    /// Divergence of the last mid-query descent correction folded in
    /// (`None` when the snapshot carries no runtime corrections).
    /// Corrections are *not* mutations: they bring the snapshot closer to
    /// the truth, so they never advance the staleness clock — but plans
    /// built on a corrected snapshot report it via
    /// [`StatsSource::MidQuery`] until the next full pass resets it.
    midquery_divergence: Option<f64>,
}

impl Maintained {
    /// Fraction of tuples mutated since the last full pass — the larger
    /// of the two sides' fractions, so mutating 10% of a small side is as
    /// stale as mutating 10% of a large one.
    fn staleness(&self) -> f64 {
        (0..2)
            .map(|i| self.mutations[i] as f64 / self.baseline_tuples[i].max(1) as f64)
            .fold(0.0, f64::max)
    }

    /// Merges one delta into one side in place. Everything but
    /// `max_score` stays exact. For a same-schema self-join this runs
    /// once per side; the order-sensitive `partner_count` reads make the
    /// two applications compose to exactly the full-pass arithmetic
    /// (`(c+1)² − c² = 2c+1` pairs per inserted value, symmetrically for
    /// deletes).
    fn apply(&mut self, side: usize, delta: &StatsDelta) {
        let other = 1 - side;
        let counts = self
            .detail
            .join_counts
            .entry(delta.join_fingerprint)
            .or_insert([0, 0]);
        let partner_count = counts[other];
        let bucket = SideStats::bucket_of(delta.score);
        let s = if side == 0 {
            &mut self.detail.stats.left
        } else {
            &mut self.detail.stats.right
        };
        match delta.op {
            DeltaOp::Insert => {
                s.tuples += 1;
                s.hist[bucket] += 1;
                s.max_score = s.max_score.max(delta.score);
                self.detail.entry_bytes[side] += delta.entry_bytes;
                if counts[side] == 0 {
                    s.distinct_joins += 1;
                }
                counts[side] += 1;
                self.detail.stats.join_pairs += partner_count;
            }
            DeltaOp::Delete => {
                s.tuples = s.tuples.saturating_sub(1);
                s.hist[bucket] = s.hist[bucket].saturating_sub(1);
                self.detail.entry_bytes[side] =
                    (self.detail.entry_bytes[side] - delta.entry_bytes).max(0.0);
                // Only a tuple the sketch has actually seen can retire a
                // distinct join value or join pairs — deleting a row that
                // arrived outside the maintained path (fingerprint absent
                // or already zero) must not push these *below* the truth.
                if counts[side] > 0 {
                    counts[side] -= 1;
                    if counts[side] == 0 {
                        s.distinct_joins = s.distinct_joins.saturating_sub(1);
                    }
                    self.detail.stats.join_pairs =
                        self.detail.stats.join_pairs.saturating_sub(partner_count);
                }
                if *counts == [0, 0] {
                    self.detail.join_counts.remove(&delta.join_fingerprint);
                }
                // The true max of the survivors is unknown; clamp to the
                // highest non-empty bucket's upper bound (conservative:
                // never below the true max, at most one bucket above it).
                if s.tuples == 0 {
                    s.max_score = 0.0;
                } else if s.hist[SideStats::bucket_of(s.max_score)] == 0 {
                    let top = (0..STAT_BUCKETS).rev().find(|&b| s.hist[b] > 0);
                    s.max_score = top.map(SideStats::upper).unwrap_or(0.0).min(s.max_score);
                }
            }
        }
        if s.tuples > 0 {
            s.avg_entry_bytes = self.detail.entry_bytes[side] / s.tuples as f64;
        } else {
            s.avg_entry_bytes = KV_OVERHEAD_BYTES;
        }
        self.mutations[side] += 1;
    }
}

/// One side's *observed* score descent, read out of an aborted ISL
/// execution by the adaptive driver ([`crate::adaptive`]): the exact
/// bucket counts of every tuple the score-ordered scan consumed, down to
/// `low_score`. Ground truth for the score region `[low_score, 1]` — a
/// mid-query correction replaces the maintained histogram's prefix with
/// it (see [`SharedTableStats::apply_observed_descent`]).
#[derive(Clone, Debug)]
pub struct ObservedDescent {
    /// Observed bucket counts (100-bucket resolution, same geometry as
    /// the planner histograms).
    pub hist: Vec<u64>,
    /// Lowest score the descent reached (the boundary bucket is only
    /// partially observed).
    pub low_score: f64,
    /// Highest score seen. Score-ordered scans see the side's true
    /// maximum first, so this is exact.
    pub max_score: f64,
    /// Tuples consumed.
    pub tuples: u64,
}

/// What [`SharedTableStats::stats_for_planning`] hands the executor.
pub struct PlannedStats {
    /// The snapshot to predict from.
    pub stats: Arc<TableStats>,
    /// Which path produced it (reported by `Plan::explain`).
    pub source: StatsSource,
    /// Handle version the snapshot corresponds to — plan-cache entries
    /// keyed on it go stale the moment another delta or invalidation
    /// lands.
    pub version: u64,
}

/// One query pair's `Arc`-shared, incrementally-maintained statistics.
///
/// Created by [`crate::executor::RankJoinExecutor::new`]; share it across
/// executors serving the same pair (e.g. `fork_metrics` clones in the
/// throughput harness) via
/// [`stats_handle`](crate::executor::RankJoinExecutor::stats_handle) /
/// [`attach_stats`](crate::executor::RankJoinExecutor::attach_stats), and
/// register it on the write path with
/// [`MaintainedSide::with_stats`](crate::maintenance::MaintainedSide::with_stats).
pub struct SharedTableStats {
    query: RankJoinQuery,
    /// Bumped by every delta, invalidation, and collection — the
    /// plan-cache coherence token. Atomic so readers never block on the
    /// snapshot lock.
    version: AtomicU64,
    /// Full statistics passes run through this handle (tests assert the
    /// below-bound path never grows it).
    collections: AtomicU64,
    maintained: Mutex<Option<Maintained>>,
}

impl SharedTableStats {
    /// A handle for one query pair (no snapshot yet; the first planning
    /// call collects).
    pub fn new(query: &RankJoinQuery) -> Arc<Self> {
        Arc::new(SharedTableStats {
            query: query.clone(),
            version: AtomicU64::new(0),
            collections: AtomicU64::new(0),
            maintained: Mutex::new(None),
        })
    }

    /// The query pair this handle describes.
    pub fn query(&self) -> &RankJoinQuery {
        &self.query
    }

    /// Current coherence version (bumped by deltas, invalidations, and
    /// collections).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// How many full statistics passes this handle has run.
    pub fn collections(&self) -> u64 {
        self.collections.load(Ordering::Relaxed)
    }

    /// Fraction of either side's tuples mutated since the last full pass
    /// (`f64::INFINITY` when no snapshot exists yet).
    pub fn staleness(&self) -> f64 {
        self.maintained
            .lock()
            .expect("stats handle")
            .as_ref()
            .map_or(f64::INFINITY, Maintained::staleness)
    }

    /// The maintained snapshot as it stands, without triggering a
    /// collection — `None` before the first planning call or after an
    /// invalidation. Diagnostics and tests compare this against a fresh
    /// [`crate::planner::collect_stats`] pass.
    pub fn maintained_stats(&self) -> Option<TableStats> {
        self.maintained
            .lock()
            .expect("stats handle")
            .as_ref()
            .map(|m| m.detail.stats.clone())
    }

    /// Drops the snapshot entirely — index (re-)preparation changed the
    /// world in ways deltas don't describe. The next planning call
    /// re-collects.
    pub fn invalidate(&self) {
        *self.maintained.lock().expect("stats handle") = None;
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether the maintained snapshot currently carries a mid-query
    /// descent correction (reset by the next full pass or invalidation).
    pub fn midquery_corrected(&self) -> bool {
        self.maintained
            .lock()
            .expect("stats handle")
            .as_ref()
            .is_some_and(|m| m.midquery_divergence.is_some())
    }

    /// Folds an aborted execution's observed score descent back into the
    /// maintained snapshot — the mid-query correction delta of the
    /// adaptive driver ([`crate::adaptive`]).
    ///
    /// Per side with an observation: the histogram's fully-observed
    /// prefix (every bucket strictly above the boundary bucket of
    /// `low_score`) is *replaced* by the observed counts — ground truth,
    /// the scan consumed every tuple there — the partially-observed
    /// boundary bucket keeps the larger of the two counts (conservative),
    /// `max_score` snaps to the observed maximum (exact for a
    /// score-ordered scan), and the tuple total is re-derived from the
    /// corrected histogram. Join-correlation statistics (`distinct_joins`,
    /// the join-cardinality sketch) are *not* touched: a per-side descent
    /// observes score marginals only (feeding measured join rates back is
    /// the ROADMAP "learned correction" item).
    ///
    /// Corrections never advance the staleness clock (they move the
    /// snapshot *toward* the truth), never trigger a full pass, and bump
    /// the coherence version exactly once — so every cached plan sharing
    /// the handle invalidates, and subsequent plans report
    /// [`StatsSource::MidQuery`] until the next full pass. Returns `false`
    /// (and changes nothing) when no snapshot exists — there is nothing
    /// to correct, and the next planning call collects fresh statistics
    /// anyway.
    ///
    /// **Concurrency caveat** (the correction-side sibling of the module
    /// docs' collection race): a maintained write racing the observed
    /// scan — its delta lands after the scan's tuples were read but
    /// before this correction — is overwritten if it falls in the
    /// fully-observed prefix (the scan predates it). The drift is
    /// bounded by writes in flight during the aborted prefix, every such
    /// delta still advanced the mutation counter, and the next
    /// bound-crossing re-collection erases it.
    pub fn apply_observed_descent(
        &self,
        observed: [Option<ObservedDescent>; 2],
        divergence: f64,
    ) -> bool {
        let mut guard = self.maintained.lock().expect("stats handle");
        let Some(m) = guard.as_mut() else {
            return false;
        };
        for (side, obs) in observed.into_iter().enumerate() {
            let Some(obs) = obs else { continue };
            if obs.tuples == 0 || obs.hist.len() != STAT_BUCKETS {
                continue;
            }
            let s = if side == 0 {
                &mut m.detail.stats.left
            } else {
                &mut m.detail.stats.right
            };
            let boundary = SideStats::bucket_of(obs.low_score);
            for b in 0..STAT_BUCKETS {
                match b.cmp(&boundary) {
                    std::cmp::Ordering::Greater => s.hist[b] = obs.hist[b],
                    std::cmp::Ordering::Equal => s.hist[b] = s.hist[b].max(obs.hist[b]),
                    std::cmp::Ordering::Less => {}
                }
            }
            s.tuples = s.hist.iter().sum();
            s.max_score = obs.max_score;
            // The observation carries no byte information, so keep the
            // *average* entry size and re-derive the side's byte total
            // from the corrected tuple count — dividing the stale total
            // (which still includes any retired ghost tuples' bytes) by
            // the corrected count would inflate every later per-entry
            // byte estimate.
            if s.tuples > 0 {
                m.detail.entry_bytes[side] = s.avg_entry_bytes * s.tuples as f64;
            } else {
                s.avg_entry_bytes = KV_OVERHEAD_BYTES;
                m.detail.entry_bytes[side] = 0.0;
            }
        }
        m.midquery_divergence = Some(divergence);
        drop(guard);
        self.version.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// The planner entry point: returns maintained statistics when the
    /// mutated fraction is within `staleness_bound`, and transparently
    /// runs a full pass otherwise (or when no snapshot exists yet).
    ///
    /// A non-finite or negative bound is treated as `0.0` — the most
    /// conservative reading (never trust a mutated snapshot), rather
    /// than NaN comparisons silently forcing a full pass on *every*
    /// call, mutated or not.
    pub fn stats_for_planning(
        &self,
        cluster: &Cluster,
        staleness_bound: f64,
    ) -> Result<PlannedStats> {
        // f64::max(NaN, 0.0) = 0.0, which also clamps negatives.
        let staleness_bound = staleness_bound.max(0.0);
        let mut guard = self.maintained.lock().expect("stats handle");
        let staleness = guard.as_ref().map(Maintained::staleness);
        let corrected = guard.as_ref().and_then(|m| m.midquery_divergence);
        let source = match (staleness, corrected) {
            (Some(s), Some(d)) if s <= staleness_bound => StatsSource::MidQuery { divergence: d },
            (Some(s), _) if s <= staleness_bound => StatsSource::Maintained { staleness: s },
            (Some(s), _) => StatsSource::Recollected { staleness: s },
            (None, _) => StatsSource::Exact,
        };
        if matches!(source, StatsSource::Exact | StatsSource::Recollected { .. }) {
            let detail = collect_stats_detailed(cluster, &self.query)?;
            let baseline_tuples = [detail.stats.left.tuples, detail.stats.right.tuples];
            *guard = Some(Maintained {
                detail,
                mutations: [0, 0],
                baseline_tuples,
                midquery_divergence: None,
            });
            self.collections.fetch_add(1, Ordering::Relaxed);
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        let m = guard.as_mut().ok_or(RankJoinError::Internal(
            "stats snapshot missing after ensure",
        ))?;
        // Region counts can drift under maintained inserts (auto-splits)
        // without any delta describing it; they are free to re-read.
        m.detail.stats.left_regions = cluster.table(&self.query.left.table)?.region_infos().len();
        m.detail.stats.right_regions = cluster.table(&self.query.right.table)?.region_infos().len();
        Ok(PlannedStats {
            stats: Arc::new(m.detail.stats.clone()),
            source,
            version: self.version(),
        })
    }
}

impl StatsMaintainer for SharedTableStats {
    /// Folds a maintained write into **every** side whose statistics
    /// schema `(table, join_col, score_col)` the delta describes — both
    /// sides of a same-schema self-join, exactly as a full collection
    /// pass would count the row. Deltas for schemas this query pair does
    /// not touch are ignored (a write path may broadcast to maintainers
    /// of several queries); deltas arriving before the first collection
    /// only bump the version (there is nothing to merge into — the first
    /// planning call collects them anyway).
    fn apply_delta(&self, delta: &StatsDelta) {
        let sides: Vec<usize> = [&self.query.left, &self.query.right]
            .into_iter()
            .enumerate()
            .filter(|(_, s)| {
                s.table == delta.table
                    && s.join_col == delta.join_col
                    && s.score_col == delta.score_col
            })
            .map(|(i, _)| i)
            .collect();
        if sides.is_empty() {
            return;
        }
        if let Some(m) = self.maintained.lock().expect("stats handle").as_mut() {
            for side in &sides {
                m.apply(*side, delta);
            }
        }
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{collect_stats, entry_bytes_of};
    use crate::testsupport::running_example_cluster;

    fn delta(q: &RankJoinQuery, side: usize, op: DeltaOp, join: &[u8], score: f64) -> StatsDelta {
        let s = q.try_side(side).expect("binary side");
        StatsDelta {
            table: s.table.clone(),
            join_col: s.join_col.clone(),
            score_col: s.score_col.clone(),
            op,
            join_fingerprint: join_fingerprint(join),
            score,
            entry_bytes: entry_bytes_of(join, b"rk_test"),
        }
    }

    #[test]
    fn first_planning_call_collects_then_maintains() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        assert_eq!(h.collections(), 0);
        assert!(h.staleness().is_infinite());
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::Exact);
        assert_eq!(h.collections(), 1);
        assert_eq!(p.stats.join_pairs, 29);
        // Second call: maintained path, no new collection.
        let p2 = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p2.source, StatsSource::Maintained { staleness: 0.0 });
        assert_eq!(h.collections(), 1);
        assert_eq!(p2.version, p.version);
    }

    #[test]
    fn deltas_merge_exactly_against_a_fresh_pass() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 1.0).unwrap();
        // Mirror two real mutations on the base table + the handle.
        let client = c.client();
        let ts = c.next_ts();
        client
            .mutate_row(
                "r2",
                b"rk_test",
                vec![
                    rj_store::cell::Mutation::put_at("d", b"jk", b"b".to_vec(), ts),
                    rj_store::cell::Mutation::put_at(
                        "d",
                        b"score",
                        0.99f64.to_be_bytes().to_vec(),
                        ts,
                    ),
                ],
            )
            .unwrap();
        h.apply_delta(&delta(&q, 1, DeltaOp::Insert, b"b", 0.99));
        let fresh = collect_stats(&c, &q).unwrap();
        let maintained = h.maintained_stats().unwrap();
        assert_eq!(maintained.right.tuples, fresh.right.tuples);
        assert_eq!(maintained.right.hist, fresh.right.hist);
        assert_eq!(maintained.right.distinct_joins, fresh.right.distinct_joins);
        assert_eq!(maintained.join_pairs, fresh.join_pairs);
        assert_eq!(maintained.right.max_score, fresh.right.max_score);
        assert!(h.staleness() > 0.0 && h.staleness() < 0.1);
    }

    #[test]
    fn delete_clamps_max_score_conservatively() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 1.0).unwrap();
        // r2's max is 0.92 (r2_11); delete it from the sketch.
        h.apply_delta(&delta(&q, 1, DeltaOp::Delete, b"b", 0.92));
        let m = h.maintained_stats().unwrap();
        // True new max is 0.91 (r2_02); bucket-granular clamp gives 0.92
        // (the upper bound of bucket 91) — never below the truth.
        assert!(m.right.max_score >= 0.91);
        assert!(m.right.max_score <= 0.92 + 1e-12);
        assert_eq!(m.right.tuples, 10);
    }

    #[test]
    fn crossing_the_bound_recollects() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 0.1).unwrap();
        // 2 mutations on an 11-tuple side ≈ 18% > 10% bound. Cancelling
        // ops still count: staleness measures churn, not net size change.
        h.apply_delta(&delta(&q, 0, DeltaOp::Insert, b"zz", 0.5));
        h.apply_delta(&delta(&q, 0, DeltaOp::Delete, b"zz", 0.5));
        assert!(h.staleness() > 0.1);
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert!(matches!(p.source, StatsSource::Recollected { .. }));
        assert_eq!(h.collections(), 2);
        assert_eq!(h.staleness(), 0.0, "re-collection resets the clock");
    }

    #[test]
    fn deleting_an_unseen_join_value_cannot_understate_the_sketch() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 1.0).unwrap();
        let before = h.maintained_stats().unwrap();
        // A delete whose join value never entered the sketch (e.g. the
        // row was written by a client bypassing MaintainedSide after the
        // collection): distinct joins and join cardinality must hold.
        h.apply_delta(&delta(&q, 0, DeltaOp::Delete, b"never_seen", 0.3));
        let after = h.maintained_stats().unwrap();
        assert_eq!(after.left.distinct_joins, before.left.distinct_joins);
        assert_eq!(after.join_pairs, before.join_pairs);
        // The churn still counts toward staleness.
        assert!(h.staleness() > 0.0);
    }

    #[test]
    fn self_join_deltas_update_both_sides() {
        use crate::query::JoinSide;
        use crate::score::ScoreFn;
        use rj_store::cell::Mutation;
        use rj_store::costmodel::CostModel;
        // One table ranked against itself (same join/score columns, two
        // labels): a maintained write must land on BOTH sides' stats,
        // exactly as a full collection would count it.
        let c = Cluster::new(2, CostModel::test());
        c.create_table("t", &["d"]).unwrap();
        let client = c.client();
        for (key, j, score) in [("t0", b'x', 0.4f64), ("t1", b'x', 0.6), ("t2", b'y', 0.8)] {
            client
                .mutate_row(
                    "t",
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        let q = RankJoinQuery::new(
            JoinSide::new("t", "A", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("t", "B", ("d", b"jk"), ("d", b"score")),
            3,
            ScoreFn::Sum,
        );
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 1.0).unwrap();
        // Mirror a real insert on the table + one delta through side A's
        // write path.
        client
            .mutate_row(
                "t",
                b"t3",
                vec![
                    Mutation::put("d", b"jk", vec![b'x']),
                    Mutation::put("d", b"score", 0.9f64.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
        h.apply_delta(&StatsDelta {
            table: "t".into(),
            join_col: ("d".into(), b"jk".to_vec()),
            score_col: ("d".into(), b"score".to_vec()),
            op: DeltaOp::Insert,
            join_fingerprint: join_fingerprint(b"x"),
            score: 0.9,
            entry_bytes: entry_bytes_of(b"x", b"t3"),
        });
        let fresh = collect_stats(&c, &q).unwrap();
        let m = h.maintained_stats().unwrap();
        assert_eq!(m.left.tuples, fresh.left.tuples, "left sees the write");
        assert_eq!(m.right.tuples, fresh.right.tuples, "right sees the write");
        assert_eq!(m.left.hist, fresh.left.hist);
        assert_eq!(m.right.hist, fresh.right.hist);
        // (2+1)² + 1² = 10 pairs for x/y fan-outs 3/1 joined with itself.
        assert_eq!(fresh.join_pairs, 10);
        assert_eq!(m.join_pairs, fresh.join_pairs, "self-join cardinality");
    }

    #[test]
    fn foreign_deltas_are_ignored() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 0.1).unwrap();
        let v = h.version();
        h.apply_delta(&StatsDelta {
            table: "some_other_table".into(),
            join_col: ("d".into(), b"jk".to_vec()),
            score_col: ("d".into(), b"score".to_vec()),
            op: DeltaOp::Insert,
            join_fingerprint: 7,
            score: 0.5,
            entry_bytes: 32.0,
        });
        assert_eq!(h.staleness(), 0.0);
        assert_eq!(h.version(), v, "unrelated writes must not thrash plans");
    }

    #[test]
    fn observed_descent_corrects_the_lied_prefix_without_recollecting() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 0.1).unwrap();
        // Plant a lie: one fake high-score insert per left tuple bucket.
        h.apply_delta(&delta(&q, 0, DeltaOp::Insert, b"ghost", 0.975));
        let lied = h.maintained_stats().unwrap();
        assert_eq!(lied.left.hist[97], 1, "lie landed");
        // Mid-query observation: the scan walked the real data down to
        // 0.80 and saw the true prefix (no 0.97 tuple exists).
        let fresh = collect_stats(&c, &q).unwrap();
        let mut obs_hist = vec![0u64; STAT_BUCKETS];
        let mut tuples = 0u64;
        for (slot, &n) in obs_hist.iter_mut().zip(&fresh.left.hist).skip(80) {
            *slot = n;
            tuples += n;
        }
        let before_version = h.version();
        assert!(h.apply_observed_descent(
            [
                Some(ObservedDescent {
                    hist: obs_hist,
                    low_score: 0.80,
                    max_score: 1.0,
                    tuples,
                }),
                None,
            ],
            0.42,
        ));
        assert!(h.version() > before_version, "plans must invalidate");
        assert!(h.midquery_corrected());
        let corrected = h.maintained_stats().unwrap();
        assert_eq!(corrected.left.hist[97], 0, "ghost tuple retired");
        for b in 81..STAT_BUCKETS {
            assert_eq!(corrected.left.hist[b], fresh.left.hist[b], "bucket {b}");
        }
        assert_eq!(corrected.left.max_score, 1.0);
        // Below the observed boundary the old histogram survives.
        assert_eq!(corrected.left.hist[67], fresh.left.hist[67]);
        // The correction is not churn: staleness unchanged, and the next
        // planning call stays on the maintained snapshot (no full pass)
        // while reporting the mid-query source.
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::MidQuery { divergence: 0.42 });
        assert_eq!(h.collections(), 1);
        // A full pass resets the corrected flag.
        h.invalidate();
        h.stats_for_planning(&c, 0.1).unwrap();
        assert!(!h.midquery_corrected());
    }

    #[test]
    fn observed_descent_without_a_snapshot_is_a_no_op() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        assert!(!h.apply_observed_descent(
            [
                Some(ObservedDescent {
                    hist: vec![0; STAT_BUCKETS],
                    low_score: 0.5,
                    max_score: 0.9,
                    tuples: 0,
                }),
                None,
            ],
            0.3,
        ));
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::Exact);
    }

    #[test]
    fn invalidate_forces_a_fresh_pass() {
        let (c, q) = running_example_cluster();
        let h = SharedTableStats::new(&q);
        h.stats_for_planning(&c, 0.1).unwrap();
        h.invalidate();
        assert!(h.maintained_stats().is_none());
        let p = h.stats_for_planning(&c, 0.1).unwrap();
        assert_eq!(p.source, StatsSource::Exact);
        assert_eq!(h.collections(), 2);
    }
}
