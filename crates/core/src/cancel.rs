//! Cooperative cancellation and deadlines for in-flight rank joins.
//!
//! A serving layer (an `rj_serve`-style front-end) needs to stop a query
//! mid-flight — the client cancelled, or its deadline expired — without
//! poisoning shared state and without forgetting the work already billed.
//! Since PR 8 a cancellation *is a cursor pause*: execution runs on a
//! pull-based [`crate::cursor::RankedCursor`], a stop condition ends the
//! pull at a batch boundary, and the suspended
//! [`crate::cursor::CursorState`] can be resumed later instead of being
//! forfeited. (The pre-cursor `run_isl_cancellable` driver this module
//! once carried is gone; every cursor honours the same policy through
//! [`crate::cursor::RankedCursor::next_batch`].)
//!
//! * [`CancelToken`] — a cheaply cloneable flag the *requester* trips;
//!   the executing side polls it at batch boundaries only, so a stop
//!   never tears a half-fetched batch (every batch is fully paid for and
//!   fully accounted before the check).
//! * [`StopPolicy`] — token, simulated-time deadline, and a
//!   fault-injection hook, all checked at batch boundaries.
//! * [`StopReason`] — why a pull stopped early, reported in
//!   [`crate::cursor::CursorBatch::stopped`].

// Under `--cfg rj_check` the flag is the rj_check shim atomic, so the
// deterministic interleaving explorer can schedule around every
// cancel/observe pair; outside a model run (and without the cfg) the
// behaviour is plain `std`. See `rj_analyze::chk`.
#[cfg(rj_check)]
use rj_analyze::chk::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(rj_check))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; tripping it
/// is sticky (there is no reset — mint a fresh token per query).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// When a cancellable execution must stop. All conditions are checked at
/// batch boundaries only — a tripped condition stops the query *after*
/// the batch that is currently paid for, never mid-batch.
#[derive(Clone, Debug, Default)]
pub struct StopPolicy {
    /// External cancellation flag; trip it from any thread.
    pub token: CancelToken,
    /// Budget of simulated seconds this query may charge before it is
    /// stopped with [`StopReason::DeadlineExpired`]. Measured against the
    /// executing cluster's own ledger from the moment execution starts —
    /// run deadline-bearing queries on a dedicated
    /// [`rj_store::cluster::Cluster::fork_metrics`] fork so concurrent
    /// work cannot eat the budget. `None` disables the deadline.
    pub deadline_sim_seconds: Option<f64>,
    /// Fault-injection hook: trip the token after this many batches, as
    /// if a client cancelled exactly there. Exercises mid-query
    /// cancellation deterministically in tests (the sibling of
    /// [`crate::executor::RankJoinExecutor::adaptive_force_switch_after`]);
    /// leave `None` in production.
    pub cancel_after_batches: Option<u64>,
}

impl StopPolicy {
    /// A policy that never stops: execution is identical to the plain,
    /// uncancellable path.
    pub fn never() -> Self {
        StopPolicy::default()
    }

    /// Policy stopping only via `token`.
    pub fn with_token(token: CancelToken) -> Self {
        StopPolicy {
            token,
            ..StopPolicy::default()
        }
    }

    /// Policy stopping only on a simulated-time deadline.
    pub fn with_deadline(deadline_sim_seconds: f64) -> Self {
        StopPolicy {
            deadline_sim_seconds: Some(deadline_sim_seconds),
            ..StopPolicy::default()
        }
    }
}

/// Why a cancellable execution stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`] was tripped.
    Cancelled,
    /// The query's simulated-time deadline elapsed.
    DeadlineExpired,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled(), "clones share one flag");
        clone.cancel();
        assert!(token.is_cancelled(), "idempotent");
    }

    #[test]
    fn policy_constructors() {
        assert!(StopPolicy::never().deadline_sim_seconds.is_none());
        let token = CancelToken::new();
        token.cancel();
        assert!(StopPolicy::with_token(token).token.is_cancelled());
        assert_eq!(
            StopPolicy::with_deadline(2.5).deadline_sim_seconds,
            Some(2.5)
        );
    }
}

/// rj_check models (run with `RUSTFLAGS="--cfg rj_check" cargo test -p
/// rj_core --lib model_`): every interleaving of cancel vs. observe.
#[cfg(all(test, rj_check))]
mod model_tests {
    use super::*;
    use rj_analyze::chk::{self, thread};

    #[test]
    fn model_cancel_is_seen_after_join_on_every_schedule() {
        chk::explore(|| {
            let token = CancelToken::new();
            let clone = token.clone();
            let t = thread::spawn(move || clone.cancel());
            // Racing read: both answers are legal before the join…
            let _ = token.is_cancelled();
            t.join();
            // …but after joining the canceller, the trip MUST be visible.
            assert!(token.is_cancelled(), "cancel lost across clones");
        });
    }

    #[test]
    fn model_double_cancel_from_two_threads_is_idempotent() {
        chk::explore(|| {
            let token = CancelToken::new();
            let (a, b) = (token.clone(), token.clone());
            let ta = thread::spawn(move || a.cancel());
            let tb = thread::spawn(move || b.cancel());
            ta.join();
            tb.join();
            assert!(token.is_cancelled());
        });
    }
}
