//! Cooperative cancellation and deadlines for in-flight rank joins.
//!
//! A serving layer (an `rj_serve`-style front-end) needs to stop a query
//! mid-flight — the client cancelled, or its deadline expired — without
//! poisoning shared state and without forgetting the work already billed.
//! Since PR 8 a cancellation *is a cursor pause*: execution runs on the
//! pull-based [`crate::cursor::IslCursor`], a stop condition ends the
//! pull at a batch boundary, and the suspended [`CursorState`] rides
//! along in the result — a stopped query can be resumed later instead of
//! being forfeited.
//!
//! * [`CancelToken`] — a cheaply cloneable flag the *requester* trips;
//!   the executing side polls it at batch boundaries only, so a stop
//!   never tears a half-fetched batch (every batch is fully paid for and
//!   fully accounted before the check).
//! * [`run_isl_cancellable`] — ISL execution that stops at the next
//!   batch boundary once the token trips or the query's simulated-time
//!   budget is exhausted, returning the consumed prefix: the best
//!   results so far, **the exact metric delta the prefix charged** so a
//!   per-tenant ledger bills cancelled work honestly, and the paused
//!   cursor.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rj_store::cluster::Cluster;
use rj_store::metrics::MetricsSnapshot;
use rj_store::parallel::ExecutionMode;

use crate::cursor::{CursorState, RankedCursor};
use crate::error::Result;
use crate::isl::IslConfig;
use crate::result::JoinTuple;
use crate::stats::QueryOutcome;

/// A shared cancellation flag. Clones observe the same flag; tripping it
/// is sticky (there is no reset — mint a fresh token per query).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// When a cancellable execution must stop. All conditions are checked at
/// batch boundaries only — a tripped condition stops the query *after*
/// the batch that is currently paid for, never mid-batch.
#[derive(Clone, Debug, Default)]
pub struct StopPolicy {
    /// External cancellation flag; trip it from any thread.
    pub token: CancelToken,
    /// Budget of simulated seconds this query may charge before it is
    /// stopped with [`StopReason::DeadlineExpired`]. Measured against the
    /// executing cluster's own ledger from the moment execution starts —
    /// run deadline-bearing queries on a dedicated
    /// [`Cluster::fork_metrics`] fork so concurrent work cannot eat the
    /// budget. `None` disables the deadline.
    pub deadline_sim_seconds: Option<f64>,
    /// Fault-injection hook: trip the token after this many batches, as
    /// if a client cancelled exactly there. Exercises mid-query
    /// cancellation deterministically in tests (the sibling of
    /// [`crate::executor::RankJoinExecutor::adaptive_force_switch_after`]);
    /// leave `None` in production.
    pub cancel_after_batches: Option<u64>,
}

impl StopPolicy {
    /// A policy that never stops: execution is identical to the plain,
    /// uncancellable path.
    pub fn never() -> Self {
        StopPolicy::default()
    }

    /// Policy stopping only via `token`.
    pub fn with_token(token: CancelToken) -> Self {
        StopPolicy {
            token,
            ..StopPolicy::default()
        }
    }

    /// Policy stopping only on a simulated-time deadline.
    pub fn with_deadline(deadline_sim_seconds: f64) -> Self {
        StopPolicy {
            deadline_sim_seconds: Some(deadline_sim_seconds),
            ..StopPolicy::default()
        }
    }
}

/// Why a cancellable execution stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`] was tripped.
    Cancelled,
    /// The query's simulated-time deadline elapsed.
    DeadlineExpired,
}

/// The consumed prefix of a query stopped at a batch boundary.
#[derive(Clone, Debug)]
pub struct StoppedRun {
    /// Why execution stopped.
    pub reason: StopReason,
    /// Best results buffered when the stop took effect — the current
    /// top-k *candidates*, not a verified final answer.
    pub results_so_far: Vec<JoinTuple>,
    /// Exactly what the consumed prefix charged to the cluster's ledger
    /// (the stop itself is free: the check runs after fully-paid
    /// batches). A metering layer bills the stopping tenant this and
    /// nothing more.
    pub metrics: MetricsSnapshot,
    /// Batches fetched before stopping.
    pub batches: u64,
    /// The execution, paused where it stopped — a cancellation is a
    /// cursor pause. Resume it (see [`CursorState::resume_on`]) to
    /// continue the descent without re-reading the prefix, or drop it to
    /// forfeit the query.
    pub paused: CursorState,
}

/// Outcome of [`run_isl_cancellable`].
#[derive(Debug)]
pub enum CancellableRun {
    /// Ran to normal HRJN termination before any stop condition fired.
    Complete(QueryOutcome),
    /// Stopped at a batch boundary; carries the consumed prefix.
    Stopped(StoppedRun),
}

/// Executes the ISL rank join, stopping at the next batch boundary once
/// any condition of `policy` fires (see [`StopPolicy`]).
///
/// One pull of an [`crate::cursor::IslCursor`] for the full `k`: with a
/// never-firing
/// policy the drained cursor is results- and counted-metric-identical to
/// [`crate::isl::run_with_mode`] (the cursor drives the serial descent;
/// counted metrics never depend on the execution mode).
pub fn run_isl_cancellable(
    cluster: &Cluster,
    query: &crate::query::RankJoinQuery,
    index_table: &str,
    config: IslConfig,
    mode: ExecutionMode,
    policy: &StopPolicy,
) -> Result<CancellableRun> {
    let _ = mode;
    let mut cursor = crate::cursor::open_isl_cursor(cluster, query, index_table, config)?;
    let batch = cursor.next_batch(query.k, policy)?;
    match batch.stopped {
        None => {
            let consumed = cursor.hrjn().tuples_consumed();
            let batches = cursor.batches();
            Ok(CancellableRun::Complete(
                QueryOutcome::new("ISL", batch.results, batch.metrics)
                    .with_extra("tuples_consumed", consumed as f64)
                    .with_extra("batches", batches as f64),
            ))
        }
        Some(reason) => {
            let results_so_far = cursor.hrjn().current_results();
            let batches = cursor.batches();
            Ok(CancellableRun::Stopped(StoppedRun {
                reason,
                results_so_far,
                metrics: batch.metrics,
                batches,
                paused: Box::new(cursor).pause(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isl;
    use crate::testsupport::running_example_cluster;
    use rj_mapreduce::MapReduceEngine;

    fn build_index(c: &Cluster, q: &crate::query::RankJoinQuery) -> &'static str {
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, q, "isl_idx").unwrap();
        "isl_idx"
    }

    #[test]
    fn untripped_token_matches_plain_run() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let plain = isl::run(&c, &q, idx, IslConfig::uniform(2)).unwrap();
        let fork = c.fork_metrics();
        let run = run_isl_cancellable(
            &fork,
            &q,
            idx,
            IslConfig::uniform(2),
            ExecutionMode::Serial,
            &StopPolicy::never(),
        )
        .unwrap();
        match run {
            CancellableRun::Complete(outcome) => {
                assert_eq!(outcome.results, plain.results);
                assert_eq!(outcome.metrics.kv_reads, plain.metrics.kv_reads);
                // Same charges, but accumulated from a different ledger
                // starting point — equal up to float summation order.
                assert!((outcome.metrics.sim_seconds - plain.metrics.sim_seconds).abs() < 1e-12);
            }
            CancellableRun::Stopped(_) => panic!("nothing should stop this run"),
        }
    }

    #[test]
    fn pre_tripped_token_stops_at_first_batch_boundary() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let token = CancelToken::new();
        token.cancel();
        let fork = c.fork_metrics();
        let run = run_isl_cancellable(
            &fork,
            &q.with_k(1000),
            idx,
            IslConfig::uniform(1),
            ExecutionMode::Serial,
            &StopPolicy::with_token(token),
        )
        .unwrap();
        match run {
            CancellableRun::Stopped(stopped) => {
                assert_eq!(stopped.reason, StopReason::Cancelled);
                assert_eq!(stopped.batches, 1, "stop at the first boundary");
                assert!(stopped.metrics.kv_reads > 0, "the paid batch is billed");
            }
            CancellableRun::Complete(_) => panic!("tripped token must stop the run"),
        }
    }

    #[test]
    fn prefix_charge_matches_fork_ledger_exactly() {
        // The stopping contract: what StoppedRun reports == what the
        // fork's ledger accrued. A tenant billed from either agrees.
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let fork = c.fork_metrics();
        let before = fork.metrics().snapshot();
        let token = CancelToken::new();
        token.cancel();
        let run = run_isl_cancellable(
            &fork,
            &q.with_k(1000),
            idx,
            IslConfig::uniform(2),
            ExecutionMode::Serial,
            &StopPolicy::with_token(token),
        )
        .unwrap();
        let CancellableRun::Stopped(stopped) = run else {
            panic!("tripped token must stop the run");
        };
        let ledger = fork.metrics().snapshot().delta_since(&before);
        assert_eq!(stopped.metrics.kv_reads, ledger.kv_reads);
        assert_eq!(stopped.metrics.sim_seconds, ledger.sim_seconds);
        assert_eq!(stopped.metrics.network_bytes, ledger.network_bytes);
    }

    #[test]
    fn zero_deadline_expires_at_first_batch_boundary() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let fork = c.fork_metrics();
        let run = run_isl_cancellable(
            &fork,
            &q.with_k(1000),
            idx,
            IslConfig::uniform(1),
            ExecutionMode::Serial,
            &StopPolicy::with_deadline(0.0),
        )
        .unwrap();
        match run {
            CancellableRun::Stopped(stopped) => {
                assert_eq!(stopped.reason, StopReason::DeadlineExpired);
                assert_eq!(stopped.batches, 1);
            }
            CancellableRun::Complete(_) => panic!("zero budget must expire"),
        }
    }

    #[test]
    fn generous_deadline_never_fires() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let fork = c.fork_metrics();
        let run = run_isl_cancellable(
            &fork,
            &q,
            idx,
            IslConfig::uniform(2),
            ExecutionMode::Serial,
            &StopPolicy::with_deadline(1e9),
        )
        .unwrap();
        assert!(matches!(run, CancellableRun::Complete(_)));
    }

    #[test]
    fn trip_after_batches_stops_midway_with_partial_results() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let fork = c.fork_metrics();
        let policy = StopPolicy {
            cancel_after_batches: Some(3),
            ..StopPolicy::default()
        };
        let run = run_isl_cancellable(
            &fork,
            &q.with_k(1000),
            idx,
            IslConfig::uniform(1),
            ExecutionMode::Serial,
            &policy,
        )
        .unwrap();
        let CancellableRun::Stopped(stopped) = run else {
            panic!("must stop at the injected batch");
        };
        assert_eq!(stopped.reason, StopReason::Cancelled);
        assert_eq!(stopped.batches, 3);
        assert!(policy.token.is_cancelled(), "the hook trips the token");
    }
}
