//! The Pig-style baseline (paper §3.1).
//!
//! "Pig takes a smarter approach. Its query plan optimizer pushes
//! projections and top-k (STOP AFTER) operators as early in the physical
//! plan as possible, and takes extra measures to better balance the load
//! caused by the join result ordering (ORDER BY) operator."
//!
//! Three MapReduce jobs:
//! 1. **join** — mappers project early (only join value, score, row key
//!    survive), reducers emit the joined records to a DFS file;
//! 2. **sample** — maps sample the joined file, a reducer computes score
//!    quantiles for a balanced range partitioner;
//! 3. **order** — maps key records by order-inverted score, *combiners*
//!    trim each map task's output to its local top-k, range-partitioned
//!    reducers emit their leading k records; the driver concatenates the
//!    (globally ordered) reducer outputs and keeps k.
//!
//! The paper's text ends job 3 in "a sole reducer"; with the combiner trim
//! in place both shapes ship only `O(k · tasks)` records — we keep the
//! balanced multi-reducer variant the sampler exists for, and merge at the
//! driver.

use std::sync::Arc;

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::partition::RangePartitioner;
use rj_mapreduce::task::{Emitter, InputRecord, Mapper, Reducer};
use rj_mapreduce::MapReduceEngine;
use rj_store::keys;
use rj_store::metrics::QueryMeter;

use crate::codec::{self, TaggedTuple};
use crate::error::Result;
use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

/// DFS path of the (projected) join result.
const JOINED_FILE: &str = "pig/__joined";
/// Sampling rate of the quantile job: one in `SAMPLE_EVERY` records.
const SAMPLE_EVERY: u64 = 100;

struct ProjectingJoinMapper {
    query: RankJoinQuery,
}

impl Mapper for ProjectingJoinMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let (Some(table), Some(row)) = (input.table(), input.row()) else {
            return;
        };
        let (side_idx, side) = if table == self.query.left.table {
            (0u8, &self.query.left)
        } else {
            (1u8, &self.query.right)
        };
        let Some((join_value, score)) = side.extract(row) else {
            return;
        };
        // Early projection: no payload beyond key + score.
        let tagged = TaggedTuple {
            side: side_idx,
            row_key: row.key.clone(),
            score,
            payload: Vec::new(),
        };
        out.emit(join_value, tagged.encode());
    }
}

struct JoinReducer {
    query: RankJoinQuery,
}

impl Reducer for JoinReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for v in values {
            match TaggedTuple::decode(v) {
                Ok(t) if t.side == 0 => left.push(t),
                Ok(t) => right.push(t),
                Err(_) => {}
            }
        }
        for l in &left {
            for r in &right {
                let tuple = JoinTuple {
                    left_key: l.row_key.clone(),
                    right_key: r.row_key.clone(),
                    join_value: key.to_vec(),
                    left_score: l.score,
                    right_score: r.score,
                    inner: Vec::new(),
                    score: self.query.score_fn.combine(l.score, r.score),
                };
                out.emit(key.to_vec(), codec::encode_join_tuple(&tuple));
            }
        }
    }
}

/// Order-job key: inverted score then base keys (deterministic total
/// order matching [`JoinTuple::rank_cmp`] for fixed-width keys).
fn order_key(t: &JoinTuple) -> Vec<u8> {
    let mut k = Vec::with_capacity(16 + t.left_key.len() + t.right_key.len());
    k.extend_from_slice(&keys::encode_score_desc(t.score));
    k.extend_from_slice(&t.left_key);
    k.push(0);
    k.extend_from_slice(&t.right_key);
    k
}

struct SampleMapper {
    seen: u64,
}

impl Mapper for SampleMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let InputRecord::Pair { value, .. } = input else {
            return;
        };
        if self.seen.is_multiple_of(SAMPLE_EVERY) {
            if let Ok(t) = codec::decode_join_tuple(value) {
                out.emit(b"sample".to_vec(), order_key(&t));
            }
        }
        self.seen += 1;
    }
}

struct QuantileReducer {
    partitions: usize,
}

impl Reducer for QuantileReducer {
    fn reduce(&mut self, _key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let mut sample: Vec<Vec<u8>> = values.to_vec();
        sample.sort();
        sample.dedup();
        if sample.is_empty() {
            return;
        }
        for i in 1..self.partitions {
            let idx = (i * sample.len() / self.partitions).min(sample.len() - 1);
            out.emit(b"boundary".to_vec(), sample[idx].clone());
        }
    }
}

struct OrderMapper;

impl Mapper for OrderMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let InputRecord::Pair { value, .. } = input else {
            return;
        };
        if let Ok(t) = codec::decode_join_tuple(value) {
            out.emit(order_key(&t), value.to_vec());
        }
    }
}

/// Emits only the first `k` records it sees; keys arrive in ascending
/// order (descending score), so those are the best. Used both as the
/// order-job combiner ("combiners take over producing a local top-k
/// list") and as its reducer.
struct LeadingK {
    remaining: usize,
}

impl Reducer for LeadingK {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        for v in values {
            if self.remaining == 0 {
                return;
            }
            out.emit(key.to_vec(), v.clone());
            self.remaining -= 1;
        }
    }
}

/// Executes the Pig-style rank join.
pub fn run(engine: &MapReduceEngine, query: &RankJoinQuery) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "PIG",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let meter = QueryMeter::start(engine.cluster().metrics());
    let num_nodes = engine.cluster().num_nodes();

    // Job 1: early-projected join.
    let left_fams = [
        query.left.join_col.0.as_str(),
        query.left.score_col.0.as_str(),
    ];
    let right_fams = [
        query.right.join_col.0.as_str(),
        query.right.score_col.0.as_str(),
    ];
    let join_spec = JobSpec::new(
        "pig-join",
        JobInput::two_tables(
            TableInput::projected(&query.left.table, &left_fams),
            TableInput::projected(&query.right.table, &right_fams),
        ),
        num_nodes,
    )
    .sink(OutputSink::File(JOINED_FILE.into()));
    let q1 = query.clone();
    let q2 = query.clone();
    let join_result = engine.run(
        &join_spec,
        &move || Box::new(ProjectingJoinMapper { query: q1.clone() }),
        Some(&move || Box::new(JoinReducer { query: q2.clone() })),
        None,
    )?;

    // Job 2: sample → quantiles for the balanced partitioner.
    let sample_spec =
        JobSpec::new("pig-sample", JobInput::file(JOINED_FILE), 1).sink(OutputSink::Collect);
    let sample_result = engine.run(
        &sample_spec,
        &|| Box::new(SampleMapper { seen: 0 }),
        Some(&move || {
            Box::new(QuantileReducer {
                partitions: num_nodes,
            })
        }),
        None,
    )?;
    let boundaries: Vec<Vec<u8>> = sample_result
        .collected
        .into_iter()
        .map(|(_k, v)| v)
        .collect();

    // Job 3: balanced order-by with combiner top-k trimming.
    let k = query.k;
    let order_spec = JobSpec::new("pig-order", JobInput::file(JOINED_FILE), num_nodes)
        .sink(OutputSink::Collect)
        .partitioner(Arc::new(RangePartitioner::new(boundaries)));
    let order_result = engine.run(
        &order_spec,
        &|| Box::new(OrderMapper),
        Some(&move || Box::new(LeadingK { remaining: k })),
        Some(&move || Box::new(LeadingK { remaining: k })),
    )?;

    let mut top = TopK::new(query.k);
    for (_k, v) in &order_result.collected {
        top.offer(codec::decode_join_tuple(v)?);
    }

    engine.dfs().remove(JOINED_FILE);

    Ok(
        QueryOutcome::new("PIG", top.into_sorted_vec(), meter.finish())
            .with_extra("mr_jobs", 3.0)
            .with_extra(
                "join_result_records",
                join_result.counters.output_records as f64,
            )
            .with_extra(
                "order_shuffle_bytes",
                order_result.counters.shuffle_bytes as f64,
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crate::score::ScoreFn;
    use crate::{hive, oracle};
    use rj_store::cell::Mutation;
    use rj_store::cluster::Cluster;
    use rj_store::costmodel::CostModel;

    fn setup(n: u64) -> (Cluster, RankJoinQuery) {
        let c = Cluster::new(3, CostModel::test());
        c.create_table("l", &["d"]).unwrap();
        c.create_table("r", &["d"]).unwrap();
        let client = c.client();
        // Deterministic pseudo-random scores and join values.
        for i in 0..n {
            let j = (i * 7919 % 17).to_be_bytes();
            let s = ((i * 2654435761) % 1000) as f64 / 1000.0;
            client
                .mutate_row(
                    "l",
                    format!("l{i:04}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                        Mutation::put("d", b"comment", b"left filler".to_vec()),
                    ],
                )
                .unwrap();
            let j = (i * 104729 % 17).to_be_bytes();
            let s = ((i * 40503) % 1000) as f64 / 1000.0;
            client
                .mutate_row(
                    "r",
                    format!("r{i:04}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                        Mutation::put("d", b"comment", b"right filler".to_vec()),
                    ],
                )
                .unwrap();
        }
        let q = RankJoinQuery::new(
            JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
            5,
            ScoreFn::Sum,
        );
        (c, q)
    }

    #[test]
    fn matches_oracle() {
        let (c, q) = setup(60);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q).unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        assert_eq!(got.results, want);
    }

    #[test]
    fn ships_fewer_bytes_than_hive() {
        let (c, q) = setup(80);
        let engine = MapReduceEngine::new(c.clone());
        let pig = run(&engine, &q).unwrap();
        let hive = hive::run(&engine, &q).unwrap();
        assert_eq!(pig.results, hive.results, "same answers");
        assert!(
            pig.metrics.network_bytes < hive.metrics.network_bytes,
            "pig ({}) should ship less than hive ({})",
            pig.metrics.network_bytes,
            hive.metrics.network_bytes
        );
    }

    #[test]
    fn three_jobs_charged() {
        let (c, q) = setup(20);
        let engine = MapReduceEngine::new(c);
        let got = run(&engine, &q).unwrap();
        assert_eq!(got.extra("mr_jobs"), Some(3.0));
    }

    #[test]
    fn tiny_inputs_with_k_larger_than_result() {
        let (c, mut q) = setup(3);
        q.k = 50;
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q).unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        assert_eq!(got.results, want);
    }
}
