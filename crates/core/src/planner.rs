//! The cost-based adaptive planner behind [`Algorithm::Auto`].
//!
//! The paper's central empirical finding (Figs. 7–8) is that no single
//! rank-join algorithm wins everywhere: BFHM's frugal point gets win where
//! the network dominates (EC2), ISL's batched scans win on a fast LAN
//! until large `k`, and the MapReduce baselines only pay off when a job's
//! fixed startup is amortized over huge inputs. A system serving mixed
//! query traffic cannot ask the caller to pick — it needs to choose per
//! query, the same "cheapest physical plan for a ranked query" instinct
//! driving algorithm selection in *Optimal Join Algorithms Meet Top-k*
//! (Tziavelis et al.).
//!
//! The planner works in three steps:
//!
//! 1. [`collect_stats`] snapshots per-input statistics ([`TableStats`]) —
//!    tuple counts, distinct join values, the exact expected join
//!    cardinality, per-side score histograms, and average entry sizes —
//!    through the store's metric-free admin paths (the statistics a real
//!    master already holds; collection charges nothing to the query
//!    ledger).
//! 2. [`plan`] predicts turnaround time and dollar cost for every
//!    *prepared* algorithm by composing the profile's
//!    [`CostModel`] estimation helpers (`est_point_gets`,
//!    `est_batched_scan`, `est_mr_job`) over access-shape models of each
//!    algorithm, then ranks them under an [`Objective`].
//! 3. [`Plan::explain`] renders the prediction table; the executor caches
//!    plans per `(k, execution mode, objective)` so repeated queries skip
//!    estimation.
//!
//! Estimates are *models*, not measurements: they exist to rank
//! algorithms, and their absolute values are only as good as the
//! statistics are fresh (see ROADMAP: stats refresh under updates).

use std::collections::HashMap;

use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::parallel::ExecutionMode;

use crate::bfhm::BfhmConfig;
use crate::drjn::DrjnConfig;
use crate::error::Result;
use crate::executor::Algorithm;
use crate::isl::IslConfig;
use crate::query::RankJoinQuery;

/// Resolution of the planner's per-side score histograms (equi-width over
/// the paper's normalized `[0,1]` score domain, §1.1).
pub(crate) const STAT_BUCKETS: usize = 100;

/// Bytes of fixed per-KV overhead assumed when sizing transfers (row key,
/// qualifier, timestamp — the simulator's cell framing).
pub(crate) const KV_OVERHEAD_BYTES: f64 = 24.0;

/// Per-input statistics for one join side.
#[derive(Clone, Debug)]
pub struct SideStats {
    /// Tuples with a valid `(join value, score)` pair.
    pub tuples: u64,
    /// Distinct join values.
    pub distinct_joins: u64,
    /// Highest score seen (0.0 when empty).
    pub max_score: f64,
    /// Score histogram: `hist[b]` counts tuples with score in
    /// `[b/S, (b+1)/S)` (top bucket closed at 1.0; out-of-range scores
    /// clamp to the edge buckets).
    pub hist: Vec<u64>,
    /// Average bytes per indexed entry (join value + score + key framing).
    pub avg_entry_bytes: f64,
}

impl SideStats {
    fn empty() -> Self {
        SideStats {
            tuples: 0,
            distinct_joins: 0,
            max_score: 0.0,
            hist: vec![0; STAT_BUCKETS],
            avg_entry_bytes: KV_OVERHEAD_BYTES,
        }
    }

    /// Histogram bucket of a score.
    pub(crate) fn bucket_of(score: f64) -> usize {
        ((score * STAT_BUCKETS as f64) as usize).min(STAT_BUCKETS - 1)
    }

    /// Upper score bound of bucket `b`.
    pub(crate) fn upper(b: usize) -> f64 {
        (b + 1) as f64 / STAT_BUCKETS as f64
    }

    /// Tuples with score above `bound` (bucket-granular).
    fn tuples_above(&self, bound: f64) -> u64 {
        self.hist
            .iter()
            .enumerate()
            .filter(|(b, _)| Self::upper(*b) > bound)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Score of this side's `n`-th best tuple (bucket lower bound; `1.0`
    /// for `n = 0`, `0.0` once the side is exhausted).
    fn score_at_depth(&self, n: u64) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let mut cum = 0u64;
        for b in (0..STAT_BUCKETS).rev() {
            cum += self.hist[b];
            if cum >= n {
                return b as f64 / STAT_BUCKETS as f64;
            }
        }
        0.0
    }
}

/// A statistics snapshot over one query's two inputs.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Left-input statistics.
    pub left: SideStats,
    /// Right-input statistics.
    pub right: SideStats,
    /// Exact expected join cardinality: `Σ_v |L_v|·|R_v|`.
    pub join_pairs: u64,
    /// Regions of the left base table (MR map-task fan-out).
    pub left_regions: usize,
    /// Regions of the right base table.
    pub right_regions: usize,
}

/// A full statistics pass plus the per-join-value bookkeeping the
/// incremental maintenance path ([`crate::statsmaint`]) needs to keep the
/// snapshot current under writes.
pub(crate) struct DetailedStats {
    /// The planner-facing snapshot.
    pub stats: TableStats,
    /// Per-join-value fingerprint → per-side tuple counts (the
    /// distinct-join-value sketch; fingerprints come from
    /// [`crate::statsmaint::join_fingerprint`]).
    pub join_counts: HashMap<u64, [u64; 2]>,
    /// Per-side total indexed-entry bytes (the numerator behind
    /// `avg_entry_bytes`).
    pub entry_bytes: [f64; 2],
}

/// Collects a [`TableStats`] snapshot for `query` through the store's
/// metric-free admin read path (one pass per base table — the ANALYZE
/// step; nothing is charged to the query ledger).
///
/// The pass *is* visible on the handle's
/// [`rj_store::metrics::MetricsSnapshot::admin_kv_reads`] counter — admin
/// reads cost nothing, but tests and operators can see when a full
/// statistics pass actually ran (the staleness-bound contract).
pub fn collect_stats(cluster: &Cluster, query: &RankJoinQuery) -> Result<TableStats> {
    collect_stats_detailed(cluster, query).map(|d| d.stats)
}

/// [`collect_stats`] keeping the join-value sketch and byte totals.
pub(crate) fn collect_stats_detailed(
    cluster: &Cluster,
    query: &RankJoinQuery,
) -> Result<DetailedStats> {
    let mut join_counts: HashMap<u64, [u64; 2]> = HashMap::new();
    let mut sides = [SideStats::empty(), SideStats::empty()];
    let mut regions = [0usize; 2];
    let mut entry_bytes = [0.0f64; 2];
    let mut admin_reads = 0u64;
    for (i, side) in [&query.left, &query.right].into_iter().enumerate() {
        let table = cluster.table(&side.table)?;
        regions[i] = table.region_infos().len();
        for row in table.debug_all_rows() {
            admin_reads += 1;
            let Some((join, score)) = side.extract(&row) else {
                continue;
            };
            let s = &mut sides[i];
            s.tuples += 1;
            s.max_score = s.max_score.max(score);
            s.hist[SideStats::bucket_of(score)] += 1;
            entry_bytes[i] += entry_bytes_of(&join, &row.key);
            join_counts
                .entry(crate::statsmaint::join_fingerprint(&join))
                .or_insert([0, 0])[i] += 1;
        }
        let s = &mut sides[i];
        if s.tuples > 0 {
            s.avg_entry_bytes = entry_bytes[i] / s.tuples as f64;
        }
    }
    cluster.metrics().add_admin_kv_reads(admin_reads);
    let mut join_pairs = 0u64;
    let mut distinct = [0u64; 2];
    for counts in join_counts.values() {
        join_pairs += counts[0] * counts[1];
        for (i, &n) in counts.iter().enumerate() {
            if n > 0 {
                distinct[i] += 1;
            }
        }
    }
    let [mut left, mut right] = sides;
    left.distinct_joins = distinct[0];
    right.distinct_joins = distinct[1];
    Ok(DetailedStats {
        stats: TableStats {
            left,
            right,
            join_pairs,
            left_regions: regions[0],
            right_regions: regions[1],
        },
        join_counts,
        entry_bytes,
    })
}

/// Bytes one indexed entry contributes to a side's transfer-size model
/// (join value + row key + score + cell framing) — shared between the
/// full statistics pass and the incremental delta path so both account
/// identically. Public so external delta producers (experiment harnesses,
/// custom write paths) fill [`crate::statsmaint::StatsDelta::entry_bytes`]
/// with the same arithmetic.
pub fn entry_bytes_of(join_value: &[u8], row_key: &[u8]) -> f64 {
    (join_value.len() + row_key.len() + 8) as f64 + KV_OVERHEAD_BYTES
}

/// What the planner optimizes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize predicted turnaround time (the paper's Fig. 7a/8a axis).
    #[default]
    Time,
    /// Minimize predicted dollar cost — KV read units under the DynamoDB
    /// model (the Fig. 7c/8c axis).
    Dollars,
}

impl Objective {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Time => "time",
            Objective::Dollars => "dollars",
        }
    }
}

/// One algorithm's predicted cost.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// The algorithm this estimate describes.
    pub algorithm: Algorithm,
    /// Predicted turnaround time, seconds.
    pub seconds: f64,
    /// Predicted KV read units.
    pub kv_reads: f64,
    /// Predicted dollar cost of those reads.
    pub dollars: f64,
}

/// The prepared algorithms a plan may choose between, with their query
/// configurations (the executor fills this from its prepared indices).
#[derive(Clone, Debug, Default)]
pub struct Candidates {
    /// Consider the index-free HIVE/PIG baselines (always executable).
    pub baselines: bool,
    /// IJLMR index is prepared.
    pub ijlmr: bool,
    /// ISL index is prepared, with these batch sizes.
    pub isl: Option<IslConfig>,
    /// BFHM index is prepared, with this configuration.
    pub bfhm: Option<BfhmConfig>,
    /// DRJN matrices are prepared, with this configuration.
    pub drjn: Option<DrjnConfig>,
}

impl Candidates {
    /// Candidates considering every algorithm at default configurations.
    pub fn all() -> Self {
        Candidates {
            baselines: true,
            ijlmr: true,
            isl: Some(IslConfig::default()),
            bfhm: Some(BfhmConfig::default()),
            drjn: Some(DrjnConfig::default()),
        }
    }

    /// The same candidate set with one algorithm removed — the mid-query
    /// re-plan entry point's shape: an adaptive driver that just aborted
    /// ISL must not be offered ISL-from-scratch as the switch target
    /// (removing `Hive`/`Pig` removes both baselines; removing `Auto` is
    /// a no-op, the planner never ranks itself).
    pub fn without(mut self, algorithm: Algorithm) -> Self {
        match algorithm {
            Algorithm::Hive | Algorithm::Pig => self.baselines = false,
            Algorithm::Ijlmr => self.ijlmr = false,
            Algorithm::Isl => self.isl = None,
            Algorithm::Bfhm => self.bfhm = None,
            Algorithm::Drjn => self.drjn = None,
            Algorithm::Auto => {}
        }
        self
    }
}

/// Where the statistics behind a [`Plan`] came from — the freshness
/// dimension of the prediction (see [`crate::statsmaint`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StatsSource {
    /// A full [`collect_stats`] pass with no maintained writes since —
    /// the statistics are exact.
    Exact,
    /// Incrementally-maintained statistics: writes since the last full
    /// pass were folded in as deltas, and the recorded mutated fraction
    /// stayed within the executor's staleness bound.
    Maintained {
        /// Fraction of either side's tuples mutated since the last full
        /// statistics pass (the larger of the two sides' fractions).
        staleness: f64,
    },
    /// The mutated fraction exceeded the staleness bound, so the planner
    /// transparently re-ran the full statistics pass before predicting.
    Recollected {
        /// The staleness that forced the re-collection.
        staleness: f64,
    },
    /// The statistics were corrected mid-query: an adaptive execution
    /// ([`crate::adaptive`]) observed the actual score descent diverging
    /// from the histogram prediction, aborted, and folded the observation
    /// back into the maintained snapshot (the plan stopped trusting its
    /// statistics *during* execution, not just between queries — the
    /// runtime sibling of [`StatsSource::Recollected`]). Sticky until the
    /// next full pass or invalidation.
    MidQuery {
        /// The observed-vs-predicted score divergence that triggered the
        /// correction (absolute, in the normalized `[0,1]` score domain).
        divergence: f64,
    },
}

impl StatsSource {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StatsSource::Exact => "exact",
            StatsSource::Maintained { .. } => "maintained",
            StatsSource::Recollected { .. } => "recollected",
            StatsSource::MidQuery { .. } => "midquery",
        }
    }
}

impl std::fmt::Display for StatsSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsSource::Exact => write!(f, "exact"),
            StatsSource::Maintained { staleness } => {
                write!(f, "maintained (staleness {:.1}%)", staleness * 100.0)
            }
            StatsSource::Recollected { staleness } => {
                write!(
                    f,
                    "recollected (staleness {:.1}% over bound)",
                    staleness * 100.0
                )
            }
            StatsSource::MidQuery { divergence } => {
                write!(f, "midquery-corrected (divergence {divergence:.2})")
            }
        }
    }
}

/// The per-side score-descent curves a plan's estimates were costed
/// from — the histogram-predicted descent an adaptive ISL execution
/// compares its *observed* descent against after every batch
/// ([`crate::adaptive`]). Snapshotted into every [`Plan`] so the check
/// runs against exactly the statistics the plan was priced on, even if
/// the shared handle has moved since.
#[derive(Clone, Debug, Default)]
pub struct DescentModel {
    /// Per-side score histograms (`[left, right]`, 100-bucket resolution
    /// over the normalized `[0,1]` score domain).
    pub hist: [Vec<u64>; 2],
    /// Per-side tuple totals.
    pub tuples: [u64; 2],
}

impl DescentModel {
    /// Snapshots the descent curves of a statistics snapshot.
    pub fn from_stats(stats: &TableStats) -> Self {
        DescentModel {
            hist: [stats.left.hist.clone(), stats.right.hist.clone()],
            tuples: [stats.left.tuples, stats.right.tuples],
        }
    }

    /// Predicted score of side `i`'s `depth`-th best tuple (bucket lower
    /// bound, like [`SideStats`]'s depth walk): `1.0` at depth 0, `0.0`
    /// once the histogram claims the side is exhausted. A score-ordered
    /// consumer that has pulled `depth` tuples should be sitting near
    /// this score if the histogram told the truth.
    pub fn expected_score_at_depth(&self, side: usize, depth: u64) -> f64 {
        if depth == 0 {
            return 1.0;
        }
        let mut cum = 0u64;
        for b in (0..STAT_BUCKETS).rev() {
            cum += self.hist[side][b];
            if cum >= depth {
                return b as f64 / STAT_BUCKETS as f64;
            }
        }
        0.0
    }
}

/// A ranked physical plan for one `(query, k, execution mode)`.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The objective the ranking used.
    pub objective: Objective,
    /// The `k` the estimates assume.
    pub k: usize,
    /// The execution mode the time predictions assume (dollar cost and
    /// read counts never depend on it — parallelism changes *when* work
    /// finishes, not how much is read).
    pub mode: ExecutionMode,
    /// Cost-model profile name the prediction used ("EC2", "LC", ...).
    pub profile: &'static str,
    /// Where the statistics behind the estimates came from. [`plan`]
    /// itself always sets [`StatsSource::Exact`] (it is handed a
    /// snapshot); the executor overwrites this with the path its shared
    /// statistics handle actually took.
    pub stats_source: StatsSource,
    /// The per-side descent curves the estimates were costed from (what
    /// adaptive ISL execution checks its observed descent against).
    pub descent: DescentModel,
    /// Per-algorithm estimates, cheapest first under `objective`.
    pub ranked: Vec<CostEstimate>,
}

impl Plan {
    /// The chosen algorithm (`None` only if no candidate was available —
    /// impossible when baselines are considered).
    pub fn best(&self) -> Option<Algorithm> {
        self.ranked.first().map(|e| e.algorithm)
    }

    /// The estimate for one algorithm, if it was a candidate.
    pub fn estimate(&self, algorithm: Algorithm) -> Option<&CostEstimate> {
        self.ranked.iter().find(|e| e.algorithm == algorithm)
    }

    /// The predicted *marginal* cost of deepening `algorithm` from
    /// `shallower`'s `k` to this plan's `k` — what the next page of a
    /// pull-based cursor should cost, given the shallower prefix is
    /// already paid for. Clamped at zero: a deeper target can never be
    /// predicted cheaper than its own prefix, but independent estimates
    /// may cross by rounding. `None` when `algorithm` was not a
    /// candidate in either plan.
    pub fn marginal_from(&self, shallower: &Plan, algorithm: Algorithm) -> Option<CostEstimate> {
        let deep = self.estimate(algorithm)?;
        let shallow = shallower.estimate(algorithm)?;
        Some(CostEstimate {
            algorithm,
            seconds: (deep.seconds - shallow.seconds).max(0.0),
            kv_reads: (deep.kv_reads - shallow.kv_reads).max(0.0),
            dollars: (deep.dollars - shallow.dollars).max(0.0),
        })
    }

    /// Renders the predicted costs, cheapest first — the `EXPLAIN` of the
    /// rank-join world.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "plan (k={}, objective={}, profile={}, mode={}, stats={}):\n",
            self.k,
            self.objective.name(),
            self.profile,
            self.mode.label(),
            self.stats_source
        );
        for (rank, e) in self.ranked.iter().enumerate() {
            let marker = if rank == 0 { "=>" } else { "  " };
            out.push_str(&format!(
                "{} {:<6} est {:>12} {:>12} ({:.0} reads)\n",
                marker,
                e.algorithm.name(),
                format_seconds(e.seconds),
                format!("${:.2e}", e.dollars),
                e.kv_reads,
            ));
        }
        out
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

/// Internal: everything the per-algorithm estimators share.
struct Estimator<'a> {
    stats: &'a TableStats,
    query: &'a RankJoinQuery,
    k: usize,
    cost: &'a CostModel,
    mode: ExecutionMode,
    /// Score bound of the k-th expected result (`None`: the whole join is
    /// smaller than `k` — every algorithm must exhaust its input).
    kth_bound: Option<f64>,
}

impl<'a> Estimator<'a> {
    fn new(
        stats: &'a TableStats,
        query: &'a RankJoinQuery,
        k: usize,
        cost: &'a CostModel,
        mode: ExecutionMode,
    ) -> Self {
        Estimator {
            stats,
            query,
            k,
            cost,
            mode,
            kth_bound: kth_score_bound(stats, query, k),
        }
    }

    /// Effective fan-out lanes the coordinator algorithms' parallelizable
    /// read shares divide by: bounded by the worker pool *and* by how many
    /// regions there are to fan out over (`min(workers, regions)` — a
    /// 2-region table cannot keep 8 workers busy). `Serial` is 1, so
    /// serial predictions are untouched.
    ///
    /// The MapReduce algorithms (HIVE/PIG/IJLMR, and DRJN's pull jobs)
    /// model cluster parallelism inside [`CostModel::est_mr_job`] already
    /// and ignore the client-side execution mode, exactly like their
    /// executors do.
    fn lanes(&self) -> f64 {
        let regions = (self.stats.left_regions + self.stats.right_regions).max(1);
        self.mode.workers().min(regions).max(1) as f64
    }

    /// Per-side threshold depth and score bound: a score-descending
    /// consumer on side `i` must reach the largest score `s̄_i` with
    /// `f(s̄_i, other max) < s_k` before the HRJN threshold can drop below
    /// the k-th result. Returns `(tuples above the bound, bound score)`;
    /// `(all tuples, 0.0)` under full enumeration.
    fn depth_and_bound(&self, i: usize) -> (u64, f64) {
        let (own, other) = if i == 0 {
            (&self.stats.left, &self.stats.right)
        } else {
            (&self.stats.right, &self.stats.left)
        };
        let Some(kth) = self.kth_bound else {
            return (own.tuples, 0.0); // full enumeration
        };
        let combine = |mine: f64, partner: f64| {
            if i == 0 {
                self.query.score_fn.combine(mine, partner)
            } else {
                self.query.score_fn.combine(partner, mine)
            }
        };
        let mut depth = 0u64;
        let mut bound = 1.0f64;
        for b in (0..STAT_BUCKETS).rev() {
            if combine(SideStats::upper(b), other.max_score) < kth {
                break;
            }
            depth += own.hist[b];
            bound = b as f64 / STAT_BUCKETS as f64;
        }
        // HRJN needs at least one pull per side to bound anything.
        (depth.clamp(1, own.tuples.max(1)), bound)
    }

    /// Tuple depth of [`Estimator::depth_and_bound`].
    fn scan_depth(&self, i: usize) -> u64 {
        self.depth_and_bound(i).0
    }

    /// ISL: two alternating batched scans. Two effects calibrated against
    /// the simulator dominate the cost:
    ///
    /// * the alternation is **batch-synchronized** — both sides descend
    ///   the same number of turns, set by whichever side needs the deeper
    ///   score bound, so the shallow side over-fetches to `turns × batch`;
    /// * each side's scanner walks the **union** of both relations' index
    ///   rows (the score-keyed table interleaves them), so a sparse
    ///   relation pays one RPC per `batch` union rows to harvest few of
    ///   its own.
    fn isl(&self, config: IslConfig) -> CostEstimate {
        let l = &self.stats.left;
        let r = &self.stats.right;
        let (dl, dr) = (self.scan_depth(0), self.scan_depth(1));
        let bl = config.batch_left.max(1) as u64;
        let br = config.batch_right.max(1) as u64;
        let turns = dl.max(1).div_ceil(bl).max(dr.max(1).div_ceil(br));
        let consumed_l = (turns * bl).min(l.tuples.max(1));
        let consumed_r = (turns * br).min(r.tuples.max(1));
        let walk = |own: &SideStats, other: &SideStats, consumed: u64, batch: u64| -> u64 {
            let bar = own.score_at_depth(consumed);
            let union = own.tuples_above(bar).max(consumed) + other.tuples_above(bar);
            union.div_ceil(batch) + 1
        };
        let rpcs = walk(l, r, consumed_l, bl) + walk(r, l, consumed_r, br);
        let kvs = consumed_l + consumed_r;
        let bytes = consumed_l as f64 * l.avg_entry_bytes + consumed_r as f64 * r.avg_entry_bytes;
        // Mode modelling: batched HRJN is demand-driven — each batch
        // depends on the threshold over earlier tuples — so its
        // node-serialized share is the whole scan and parallel lanes buy
        // nothing. Only full ranked enumeration (every read provably
        // unconditional) fans out across regions, mirroring the ISL
        // executor's parallel fast path.
        let fan = if self.kth_bound.is_none() {
            self.lanes()
        } else {
            1.0
        };
        CostEstimate {
            algorithm: Algorithm::Isl,
            seconds: self.cost.est_batched_scan(rpcs, kvs, bytes as u64) / fan,
            kv_reads: kvs as f64,
            dollars: self.cost.dollars(kvs),
        }
    }

    /// BFHM: bucket-blob point gets down to each side's score bound, then
    /// roughly one reverse-row get per side per surviving result pair
    /// (each reverse row carries about one matching cell at this bucket
    /// resolution), plus the metadata row.
    fn bfhm(&self, config: &BfhmConfig) -> CostEstimate {
        let buckets = f64::from(config.num_buckets.max(1));
        let bucket_depth = |i: usize| -> f64 {
            let (_, bound) = self.depth_and_bound(i);
            ((1.0 - bound) * buckets).ceil().clamp(1.0, buckets)
        };
        let bucket_gets = bucket_depth(0) + bucket_depth(1);
        let l = &self.stats.left;
        let r = &self.stats.right;
        let pairs = (self.stats.join_pairs.min(self.k as u64)).max(1) as f64;
        let reverse_gets = 2.0 * pairs + 2.0;
        let gets = bucket_gets + reverse_gets + 1.0; // + metadata row
        let kv_reads = gets; // ≈ one KV per blob get / reverse row / meta
        let probe_bytes = bucket_gets * 64.0;
        let reverse_bytes = reverse_gets * (l.avg_entry_bytes + r.avg_entry_bytes) / 2.0;
        // Mode modelling: bucket probing is demand-driven (each probe
        // depends on the estimates so far — node-serialized), while the
        // reverse-row materialization fans out across region servers in
        // parallel mode, exactly like the BFHM executor's prefetch.
        // `est_point_gets` is linear in every argument, so the split sums
        // to the serial estimate when lanes = 1.
        let probe_secs = self.cost.est_point_gets(
            (bucket_gets + 1.0) as u64,
            (bucket_gets + 1.0) as u64,
            probe_bytes as u64,
        );
        let reverse_secs = self.cost.est_point_gets(
            reverse_gets as u64,
            reverse_gets as u64,
            reverse_bytes as u64,
        );
        CostEstimate {
            algorithm: Algorithm::Bfhm,
            seconds: probe_secs + reverse_secs / self.lanes(),
            kv_reads,
            dollars: self.cost.dollars(kv_reads.round() as u64),
        }
    }

    /// IJLMR: one MR job scanning the whole join-value index.
    fn ijlmr(&self) -> CostEstimate {
        let kvs = self.stats.left.tuples + self.stats.right.tuples;
        let bytes = self.stats.left.tuples as f64 * self.stats.left.avg_entry_bytes
            + self.stats.right.tuples as f64 * self.stats.right.avg_entry_bytes;
        let maps = (self.stats.left_regions + self.stats.right_regions).max(1);
        let shuffle = (self.k as f64 * 64.0 * maps as f64) as u64;
        CostEstimate {
            algorithm: Algorithm::Ijlmr,
            seconds: self.cost.est_mr_job(maps, kvs, bytes as u64, shuffle, 1),
            kv_reads: kvs as f64,
            dollars: self.cost.dollars(kvs),
        }
    }

    /// HIVE: full unprojected join job + rank job + result fetch.
    fn hive(&self) -> CostEstimate {
        // The baseline scans every cell (no projection): approximate the
        // full row as twice the projected entry.
        let kvs = 2 * (self.stats.left.tuples + self.stats.right.tuples);
        let bytes = 2.0
            * (self.stats.left.tuples as f64 * self.stats.left.avg_entry_bytes
                + self.stats.right.tuples as f64 * self.stats.right.avg_entry_bytes);
        let maps = (self.stats.left_regions + self.stats.right_regions).max(1);
        let join_bytes = self.stats.join_pairs.saturating_mul(96);
        let join_job = self.cost.est_mr_job(
            maps,
            kvs,
            bytes as u64,
            bytes as u64,
            self.cost.worker_nodes,
        );
        let rank_job = self.cost.est_mr_job(
            self.cost.worker_nodes,
            self.stats.join_pairs,
            join_bytes,
            join_bytes,
            1,
        );
        CostEstimate {
            algorithm: Algorithm::Hive,
            seconds: join_job + rank_job,
            kv_reads: kvs as f64,
            dollars: self.cost.dollars(kvs),
        }
    }

    /// PIG: three jobs, but the first projects early (§3.1).
    fn pig(&self) -> CostEstimate {
        let kvs = 2 * (self.stats.left.tuples + self.stats.right.tuples);
        let bytes = self.stats.left.tuples as f64 * self.stats.left.avg_entry_bytes
            + self.stats.right.tuples as f64 * self.stats.right.avg_entry_bytes;
        let maps = (self.stats.left_regions + self.stats.right_regions).max(1);
        let join_bytes = self.stats.join_pairs.saturating_mul(32);
        let join_job =
            self.cost
                .est_mr_job(maps, kvs, bytes as u64, join_bytes, self.cost.worker_nodes);
        // Sampling + top-k jobs over the (projected, combined) join result.
        let order_job = self.cost.est_mr_job(
            self.cost.worker_nodes,
            self.stats.join_pairs,
            join_bytes,
            (self.k as u64).saturating_mul(64),
            1,
        );
        let sample_job = self.cost.est_mr_job(
            self.cost.worker_nodes,
            self.stats.join_pairs / 10,
            join_bytes / 10,
            1024,
            1,
        );
        CostEstimate {
            algorithm: Algorithm::Pig,
            seconds: join_job + sample_job + order_job,
            kv_reads: kvs as f64,
            dollars: self.cost.dollars(kvs),
        }
    }

    /// DRJN: matrix-row gets, then per-side map-only pull jobs that scan
    /// the full projected relations, then the coordinator's temp scan.
    fn drjn(&self, config: &DrjnConfig) -> CostEstimate {
        let buckets = f64::from(config.num_buckets.max(1));
        // Both sides descend the same number of matrix rows, down to the
        // deeper of the two score bounds.
        let bound = self.depth_and_bound(0).1.min(self.depth_and_bound(1).1);
        let depth = ((1.0 - bound) * buckets).ceil().clamp(1.0, buckets);
        let matrix_gets = 2.0 * depth;
        let matrix_kvs = matrix_gets * config.num_partitions.max(1) as f64;
        // One pull job per side, each scanning its full projected input
        // (the server-side score filter reduces shipping, not reading).
        let projected_kvs = 2 * (self.stats.left.tuples + self.stats.right.tuples);
        let pull_l = self.cost.est_mr_job(
            self.stats.left_regions.max(1),
            2 * self.stats.left.tuples,
            (self.stats.left.tuples as f64 * self.stats.left.avg_entry_bytes) as u64,
            0,
            0,
        );
        let pull_r = self.cost.est_mr_job(
            self.stats.right_regions.max(1),
            2 * self.stats.right.tuples,
            (self.stats.right.tuples as f64 * self.stats.right.avg_entry_bytes) as u64,
            0,
            0,
        );
        // Pulled tuples land in a temp table the coordinator then scans —
        // in parallel mode that scan fans out across the temp table's
        // regions (the DRJN executor's parallel path), so its share
        // divides by the effective lanes; the demand-driven matrix gets
        // and the MR pull jobs do not.
        let pulled = self.scan_depth(0) + self.scan_depth(1);
        let temp_scan = self.cost.est_batched_scan(
            pulled.div_ceil(1000) + 1,
            pulled,
            (pulled as f64 * (self.stats.left.avg_entry_bytes + self.stats.right.avg_entry_bytes)
                / 2.0) as u64,
        ) / self.lanes();
        let kv_reads = matrix_kvs + projected_kvs as f64 + pulled as f64;
        CostEstimate {
            algorithm: Algorithm::Drjn,
            seconds: self.cost.est_point_gets(
                matrix_gets as u64,
                matrix_kvs as u64,
                (matrix_kvs * 12.0) as u64,
            ) + pull_l
                + pull_r
                + temp_scan,
            kv_reads,
            dollars: self.cost.dollars(kv_reads.round() as u64),
        }
    }
}

/// Expected score of the k-th best join result, from the independence
/// assumption over the two score histograms scaled to the exact expected
/// join cardinality. `None` when the whole join is smaller than `k`.
fn kth_score_bound(stats: &TableStats, query: &RankJoinQuery, k: usize) -> Option<f64> {
    if stats.join_pairs < k as u64 || stats.left.tuples == 0 || stats.right.tuples == 0 {
        return None;
    }
    let scale = stats.join_pairs as f64 / (stats.left.tuples as f64 * stats.right.tuples as f64);
    // Expected pairs per bucket pair, walked in descending upper-bound
    // order until k accumulate.
    let mut cells: Vec<(f64, f64, f64)> = Vec::new(); // (upper, lower, pairs)
    for (bl, nl) in stats.left.hist.iter().enumerate() {
        if *nl == 0 {
            continue;
        }
        for (br, nr) in stats.right.hist.iter().enumerate() {
            if *nr == 0 {
                continue;
            }
            let pairs = *nl as f64 * *nr as f64 * scale;
            let upper = query
                .score_fn
                .combine(SideStats::upper(bl), SideStats::upper(br));
            let lower = query.score_fn.combine(
                bl as f64 / STAT_BUCKETS as f64,
                br as f64 / STAT_BUCKETS as f64,
            );
            cells.push((upper, lower, pairs));
        }
    }
    cells.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut cum = 0.0;
    for (_upper, lower, pairs) in cells {
        cum += pairs;
        if cum >= k as f64 {
            return Some(lower);
        }
    }
    None
}

/// Predicts the cost of every candidate under one [`ExecutionMode`] and
/// returns the ranked [`Plan`].
///
/// Time predictions are mode-aware: each coordinator algorithm's
/// parallelizable read share divides by the effective lanes
/// (`min(workers, regions)`), so plans for `Serial` and `Parallel` modes
/// differ honestly and a caller can compare them to *recommend* a mode
/// (see [`crate::executor::RankJoinExecutor::recommend_mode`]). Read
/// counts and dollar cost are mode-independent, matching the executors'
/// counted-metric equivalence contract.
pub fn plan(
    stats: &TableStats,
    query: &RankJoinQuery,
    k: usize,
    cost: &CostModel,
    objective: Objective,
    candidates: &Candidates,
    mode: ExecutionMode,
) -> Plan {
    let est = Estimator::new(stats, query, k, cost, mode);
    let mut ranked = Vec::new();
    if candidates.baselines {
        ranked.push(est.hive());
        ranked.push(est.pig());
    }
    if candidates.ijlmr {
        ranked.push(est.ijlmr());
    }
    if let Some(config) = candidates.isl {
        ranked.push(est.isl(config));
    }
    if let Some(config) = &candidates.bfhm {
        ranked.push(est.bfhm(config));
    }
    if let Some(config) = &candidates.drjn {
        ranked.push(est.drjn(config));
    }
    ranked.sort_by(|a, b| match objective {
        Objective::Time => a.seconds.total_cmp(&b.seconds),
        Objective::Dollars => a
            .dollars
            .total_cmp(&b.dollars)
            // Dollar ties (identical read counts) break by time.
            .then(a.seconds.total_cmp(&b.seconds)),
    });
    Plan {
        objective,
        k,
        mode,
        profile: cost.name,
        stats_source: StatsSource::Exact,
        descent: DescentModel::from_stats(stats),
        ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;

    fn stats_and_query() -> (TableStats, RankJoinQuery) {
        let (c, q) = running_example_cluster();
        (collect_stats(&c, &q).unwrap(), q)
    }

    #[test]
    fn stats_snapshot_is_exact_on_the_running_example() {
        let (s, _q) = stats_and_query();
        assert_eq!(s.left.tuples, 11);
        assert_eq!(s.right.tuples, 11);
        assert_eq!(s.left.distinct_joins, 4);
        assert_eq!(s.right.distinct_joins, 4);
        // Fig. 1 fan-outs — R1: a×2, b×3, c×3, d×3; R2: a×4, b×2, c×2,
        // d×3 → 2·4 + 3·2 + 3·2 + 3·3 = 29 join pairs.
        assert_eq!(s.join_pairs, 29);
        assert_eq!(s.left.max_score, 1.0);
        assert!((s.right.max_score - 0.92).abs() < 1e-12);
    }

    #[test]
    fn stats_collection_charges_nothing_but_is_observable() {
        let (c, q) = running_example_cluster();
        let before = c.metrics().snapshot();
        let _ = collect_stats(&c, &q).unwrap();
        let after = c.metrics().snapshot();
        // Nothing billable: no reads, writes, bytes, RPCs, or time.
        assert_eq!(after.kv_reads, before.kv_reads);
        assert_eq!(after.kv_writes, before.kv_writes);
        assert_eq!(after.network_bytes, before.network_bytes);
        assert_eq!(after.rpc_calls, before.rpc_calls);
        assert_eq!(after.sim_seconds, before.sim_seconds);
        // But the pass is visible on the admin-read counter (11+11 rows).
        assert_eq!(after.admin_kv_reads, before.admin_kv_reads + 22);
    }

    #[test]
    fn kth_bound_is_monotone_in_k() {
        let (s, q) = stats_and_query();
        let b1 = kth_score_bound(&s, &q, 1).unwrap();
        let b5 = kth_score_bound(&s, &q, 5).unwrap();
        assert!(b1 >= b5, "{b1} < {b5}");
        // k beyond the join size: full enumeration.
        assert!(kth_score_bound(&s, &q, 1000).is_none());
    }

    #[test]
    fn plan_ranks_coordinators_over_mapreduce_at_small_scale() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        let p = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Serial,
        );
        assert_eq!(p.ranked.len(), 6);
        let best = p.best().unwrap();
        assert!(
            matches!(best, Algorithm::Isl | Algorithm::Bfhm),
            "MR startup constants must lose at 11-tuple scale, got {best:?}"
        );
        // The MR baselines carry the job-startup constant.
        assert!(p.estimate(Algorithm::Hive).unwrap().seconds >= cost.mr_job_startup);
        let rendered = p.explain();
        assert!(rendered.contains("=>") && rendered.contains(best.name()));
    }

    #[test]
    fn dollar_objective_prefers_frugal_reads() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        let p = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Dollars,
            &Candidates::all(),
            ExecutionMode::Serial,
        );
        let best = p.ranked.first().unwrap();
        for e in &p.ranked {
            assert!(best.dollars <= e.dollars + 1e-15);
        }
    }

    #[test]
    fn depth_grows_with_k() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        let e1 = Estimator::new(&s, &q, 1, &cost, ExecutionMode::Serial);
        let e9 = Estimator::new(&s, &q, 9, &cost, ExecutionMode::Serial);
        assert!(e9.scan_depth(0) >= e1.scan_depth(0));
        assert!(e9.scan_depth(1) >= e1.scan_depth(1));
    }

    #[test]
    fn empty_candidates_yield_empty_plan() {
        let (s, q) = stats_and_query();
        let cost = CostModel::test();
        let p = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Time,
            &Candidates::default(),
            ExecutionMode::Serial,
        );
        assert!(p.best().is_none());
        assert!(p.ranked.is_empty());
    }

    #[test]
    fn parallel_mode_speeds_up_fan_out_shares_but_never_reads() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        let serial = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Serial,
        );
        let parallel = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Parallel { workers: 4 },
        );
        for algo in [
            Algorithm::Hive,
            Algorithm::Pig,
            Algorithm::Ijlmr,
            Algorithm::Isl,
            Algorithm::Bfhm,
            Algorithm::Drjn,
        ] {
            let ps = parallel.estimate(algo).unwrap();
            let ss = serial.estimate(algo).unwrap();
            // Counted predictions never depend on the mode.
            assert_eq!(ps.kv_reads, ss.kv_reads, "{}", algo.name());
            assert_eq!(ps.dollars, ss.dollars, "{}", algo.name());
            // Time can only improve.
            assert!(ps.seconds <= ss.seconds + 1e-12, "{}", algo.name());
        }
        // BFHM's reverse-row share and DRJN's temp scan genuinely fan
        // out; demand-driven batched ISL does not (only full enumeration
        // would).
        let gain = |algo: Algorithm| {
            serial.estimate(algo).unwrap().seconds - parallel.estimate(algo).unwrap().seconds
        };
        assert!(gain(Algorithm::Bfhm) > 0.0);
        assert!(gain(Algorithm::Drjn) > 0.0);
        assert_eq!(gain(Algorithm::Isl), 0.0, "batched HRJN is sequential");
        assert!(parallel.explain().contains("parallel(4)"));
    }

    #[test]
    fn full_enumeration_isl_fans_out_in_parallel_mode() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        // k beyond the join cardinality: every ISL read is unconditional.
        let k = 10_000;
        let serial = plan(
            &s,
            &q,
            k,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Serial,
        );
        let parallel = plan(
            &s,
            &q,
            k,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Parallel { workers: 4 },
        );
        assert!(
            parallel.estimate(Algorithm::Isl).unwrap().seconds
                < serial.estimate(Algorithm::Isl).unwrap().seconds
        );
    }

    #[test]
    fn descent_model_matches_histogram_walk() {
        let (s, q) = stats_and_query();
        let cost = CostModel::ec2(8);
        let p = plan(
            &s,
            &q,
            3,
            &cost,
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Serial,
        );
        // Depth 0 is the open bound; depth 1 must sit at the side's top
        // bucket; beyond the side's tuples the curve hits zero.
        assert_eq!(p.descent.expected_score_at_depth(0, 0), 1.0);
        let top = p.descent.expected_score_at_depth(0, 1);
        assert!((top - 0.99).abs() < 1e-12, "max score 1.0 → bucket 99");
        assert_eq!(p.descent.expected_score_at_depth(0, 1000), 0.0);
        // Monotone non-increasing in depth.
        let mut last = 1.0;
        for d in 0..30 {
            let v = p.descent.expected_score_at_depth(1, d);
            assert!(v <= last + 1e-12);
            last = v;
        }
    }

    #[test]
    fn candidates_without_removes_exactly_one() {
        let all = Candidates::all();
        assert!(all.clone().without(Algorithm::Isl).isl.is_none());
        assert!(all.clone().without(Algorithm::Bfhm).bfhm.is_none());
        assert!(all.clone().without(Algorithm::Drjn).drjn.is_none());
        assert!(!all.clone().without(Algorithm::Ijlmr).ijlmr);
        assert!(!all.clone().without(Algorithm::Hive).baselines);
        let unchanged = all.clone().without(Algorithm::Auto);
        assert!(unchanged.baselines && unchanged.ijlmr && unchanged.isl.is_some());
    }
}
