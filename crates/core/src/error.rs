//! Error type shared by all rank-join algorithms.

use rj_mapreduce::engine::EngineError;
use rj_sketch::blob::BlobError;
use rj_store::error::StoreError;

use crate::codec::CodecError;

/// Anything that can go wrong while planning or executing a rank join.
#[derive(Debug)]
pub enum RankJoinError {
    /// Store-level failure.
    Store(StoreError),
    /// MapReduce engine failure.
    Engine(EngineError),
    /// Record decoding failure.
    Codec(CodecError),
    /// BFHM blob decoding failure.
    Blob(BlobError),
    /// A required index table is missing — build it first.
    MissingIndex(String),
    /// A maintained-side delete targeted a row that does not exist.
    MissingRow,
    /// A score entering the system was NaN or infinite. Scores must be
    /// finite (the paper normalizes them to `[0,1]`, §1.1); rejecting
    /// them at ingest keeps NaN out of every sort and bound computation
    /// on the query path.
    NonFiniteScore(f64),
    /// A side accessor was asked for an index the query does not have —
    /// the checked replacement for the old panicking
    /// `RankJoinQuery::side`.
    SideOutOfRange {
        /// The index asked for.
        index: usize,
        /// How many sides the query has.
        sides: usize,
    },
    /// An N-ary [`crate::query::JoinSpec`] failed validation (too few
    /// sides, duplicate labels, or edges that do not form a connected
    /// join tree).
    InvalidSpec(&'static str),
    /// A paused cursor was resumed after the backing statistics version
    /// moved — a maintained write or index rebuild happened between pause
    /// and resume, so the cursor's buffered tuples and scan positions may
    /// no longer reflect the data. The token is permanently invalid; the
    /// caller must re-run the query (see [`crate::cursor::CursorState`]).
    StaleCursor {
        /// The statistics version the cursor was opened under.
        expected: u64,
        /// The backend's current statistics version.
        found: u64,
    },
    /// Internal invariant violation.
    Internal(&'static str),
}

impl std::fmt::Display for RankJoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankJoinError::Store(e) => write!(f, "store: {e}"),
            RankJoinError::Engine(e) => write!(f, "mapreduce: {e}"),
            RankJoinError::Codec(e) => write!(f, "codec: {e}"),
            RankJoinError::Blob(e) => write!(f, "blob: {e}"),
            RankJoinError::MissingIndex(t) => {
                write!(f, "index table {t} not found — build the index first")
            }
            RankJoinError::MissingRow => write!(f, "delete of a missing row"),
            RankJoinError::NonFiniteScore(s) => {
                write!(f, "non-finite score {s} rejected — scores must be finite")
            }
            RankJoinError::SideOutOfRange { index, sides } => {
                write!(f, "side index {index} out of range for a {sides}-way join")
            }
            RankJoinError::InvalidSpec(m) => write!(f, "invalid join spec: {m}"),
            RankJoinError::StaleCursor { expected, found } => write!(
                f,
                "stale cursor: paused at statistics version {expected}, \
                 backend is now at {found} — re-run the query"
            ),
            RankJoinError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for RankJoinError {}

impl From<StoreError> for RankJoinError {
    fn from(e: StoreError) -> Self {
        RankJoinError::Store(e)
    }
}

impl From<EngineError> for RankJoinError {
    fn from(e: EngineError) -> Self {
        RankJoinError::Engine(e)
    }
}

impl From<CodecError> for RankJoinError {
    fn from(e: CodecError) -> Self {
        RankJoinError::Codec(e)
    }
}

impl From<BlobError> for RankJoinError {
    fn from(e: BlobError) -> Self {
        RankJoinError::Blob(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RankJoinError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e: RankJoinError = StoreError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("x"));
        let e = RankJoinError::MissingIndex("isl_idx".into());
        assert!(e.to_string().contains("isl_idx"));
        let e = RankJoinError::NonFiniteScore(f64::NAN);
        assert!(e.to_string().contains("non-finite"));
    }
}
