//! Per-query statistics: the paper's three evaluation metrics plus
//! algorithm-specific extras.

use rj_store::metrics::MetricsSnapshot;

use crate::result::JoinTuple;

/// The outcome of one rank-join execution.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Algorithm name ("HIVE", "PIG", "IJLMR", "ISL", "BFHM", "DRJN").
    pub algorithm: &'static str,
    /// The top-k join result, rank-ordered.
    pub results: Vec<JoinTuple>,
    /// Metric deltas for the execution: `sim_seconds` (turnaround time),
    /// `network_bytes` (bandwidth), `kv_reads` (dollar cost in read units).
    pub metrics: MetricsSnapshot,
    /// Algorithm-specific counters (estimation rounds, buckets fetched,
    /// tuples pulled, MR jobs run, ...). Sorted key order for stable
    /// reports.
    pub extras: Vec<(&'static str, f64)>,
}

impl QueryOutcome {
    /// Creates an outcome.
    pub fn new(algorithm: &'static str, results: Vec<JoinTuple>, metrics: MetricsSnapshot) -> Self {
        QueryOutcome {
            algorithm,
            results,
            metrics,
            extras: Vec::new(),
        }
    }

    /// Attaches an extra counter.
    pub fn with_extra(mut self, key: &'static str, value: f64) -> Self {
        self.extras.push((key, value));
        self
    }

    /// Dollar cost under the DynamoDB model (§7.1 footnote): read units
    /// priced at $0.01 per hour per 50 units.
    pub fn dollar_cost(&self, dollar_per_read_unit: f64) -> f64 {
        self.metrics.kv_reads as f64 * dollar_per_read_unit
    }

    /// Extra counter lookup.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extras.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_roundtrip() {
        let o = QueryOutcome::new("BFHM", vec![], MetricsSnapshot::default())
            .with_extra("buckets_fetched", 7.0)
            .with_extra("rounds", 2.0);
        assert_eq!(o.extra("buckets_fetched"), Some(7.0));
        assert_eq!(o.extra("missing"), None);
    }

    #[test]
    fn dollar_cost_scales_with_reads() {
        let m = MetricsSnapshot {
            kv_reads: 1000,
            ..Default::default()
        };
        let o = QueryOutcome::new("ISL", vec![], m);
        let per_unit = 0.01 / 3600.0 / 50.0;
        assert!((o.dollar_cost(per_unit) - 1000.0 * per_unit).abs() < 1e-15);
    }
}
