//! ISL — Inverse Score List rank join (paper §4.2).
//!
//! A no-MapReduce, coordinator-based adaptation of HRJN (Ilyas et al.,
//! VLDB 2003) to NoSQL stores. The ISL index is a score-ordered inverted
//! list per relation (Algorithm 3), stored with **negated scores** as row
//! keys because HBase only scans ascending (§4.2.2). The coordinator
//! alternates batched scans over the two lists (Algorithm 4), joining new
//! tuples against hash tables of everything seen, until the HRJN threshold
//! falls below the current k-th result.
//!
//! The batch (row-cache) size trades time against bandwidth/dollar cost:
//! "batching reads results in a lower disk I/O overhead, as well as a
//! lower processing time due to the cost of IPC calls ... being amortized
//! over the batch size" (§4.2.3).

mod index;
mod query;

pub use index::{build, index_table_name, IslBuildStats};
pub use query::{run, run_with_mode, IslConfig};
pub(crate) use query::{run_observed, BatchVerdict, IslRun};
