//! ISL query processing (paper Algorithm 4).
//!
//! The coordinator alternates batched scans over the two score lists,
//! maintaining per-side hash tables on the join value for fast joins
//! against newly fetched tuples, and terminating by the HRJN threshold
//! test after every tuple.

use rj_store::keys;
use rj_store::metrics::QueryMeter;
use rj_store::parallel::{run_lanes, ExecutionMode, LaneTask, ParallelScanner};
use rj_store::scan::Scan;

use crate::codec;
use crate::cursor::{BatchStep, IslCursor};
use crate::error::{RankJoinError, Result};
use crate::hrjn::{HrjnState, RankedTuple, Side};
use crate::query::RankJoinQuery;
use crate::stats::QueryOutcome;

/// ISL tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IslConfig {
    /// Index rows pulled per turn from the left list (`C_A`).
    pub batch_left: usize,
    /// Index rows pulled per turn from the right list (`C_B`).
    pub batch_right: usize,
}

impl Default for IslConfig {
    fn default() -> Self {
        IslConfig {
            batch_left: 64,
            batch_right: 64,
        }
    }
}

impl IslConfig {
    /// Same batch size for both sides.
    pub fn uniform(batch: usize) -> Self {
        IslConfig {
            batch_left: batch.max(1),
            batch_right: batch.max(1),
        }
    }
}

/// Executes the ISL rank join over a previously built index table
/// (serial execution; see [`run_with_mode`]).
pub fn run(
    cluster: &rj_store::cluster::Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
) -> Result<QueryOutcome> {
    run_with_mode(cluster, query, index_table, config, ExecutionMode::Serial)
}

/// Executes the ISL rank join under an explicit [`ExecutionMode`].
///
/// Two read paths fan out in parallel mode, both read-for-read identical
/// to serial execution:
///
/// * the *warm-up round* — the first scan RPC of each score list — runs
///   concurrently. HRJN can never terminate before both sides have
///   produced tuples, so both first batches are fetched unconditionally
///   either way; only the modelled wall-clock differs (max instead of
///   sum, the paper's §5 parallel-round accounting). All later batches
///   depend on the threshold test over earlier tuples and stay
///   demand-driven — the inherent sequentiality of batched HRJN.
/// * *full ranked enumeration* (`k` at least the largest possible join
///   cardinality, e.g. `usize::MAX / 2`): the HRJN termination test can
///   provably never fire before both lists are exhausted, so every batch
///   of both scans is unconditional and the whole read fans out across
///   regions via [`ParallelScanner`] — the any-k serving workload of the
///   ranked-enumeration literature.
pub fn run_with_mode(
    cluster: &rj_store::cluster::Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
    mode: ExecutionMode,
) -> Result<QueryOutcome> {
    match run_observed(cluster, query, index_table, config, mode, &mut |_, _| {
        BatchVerdict::Continue
    })? {
        IslRun::Complete(outcome) => Ok(outcome),
        IslRun::Aborted(_) => unreachable!("a Continue-only observer never aborts"),
    }
}

/// Verdict an ISL batch observer returns after each completed batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchVerdict {
    /// Keep descending the score lists.
    Continue,
    /// Stop fetching and hand the partial HRJN state back — the
    /// mid-query abort of the adaptive driver ([`crate::adaptive`]).
    Abort,
}

/// The two ways an observed ISL execution can end.
pub(crate) enum IslRun {
    /// Ran to HRJN termination (or input exhaustion) — the normal
    /// [`run_with_mode`] outcome.
    Complete(QueryOutcome),
    /// The observer aborted after a batch; the partial state carries
    /// everything a switch needs. Boxed: the flat seen-tuple arenas make
    /// `IslPartial` much larger than the `Complete` variant.
    Aborted(Box<IslPartial>),
}

/// Partial state of an aborted ISL execution: the HRJN threshold state
/// (consumed tuples, buffered genuine results, per-side score bounds),
/// how many batches ran, and the metric delta the aborted prefix already
/// charged (the *wasted reads* an adaptive switch must account honestly).
pub(crate) struct IslPartial {
    /// The part-way HRJN state (see the threshold-state handoff API on
    /// [`HrjnState`]).
    pub state: HrjnState,
    /// Batches fetched before the abort.
    pub batches: u64,
    /// Metrics the aborted prefix charged to the cluster ledger.
    pub metrics: rj_store::metrics::MetricsSnapshot,
}

/// [`run_with_mode`] with a per-batch observation hook: after every
/// completed batch (while HRJN is neither done nor exhausted) the
/// observer sees the current [`HrjnState`] and the batch count, and can
/// abort the descent. Observation is pure bookkeeping over tuples already
/// fetched — a `Continue`-only observer makes this byte- and
/// metric-identical to [`run_with_mode`].
///
/// The parallel *full-enumeration* fast path is never observed: every
/// read there is provably unconditional, so no mid-query information
/// could change the plan's remaining cost.
pub(crate) fn run_observed(
    cluster: &rj_store::cluster::Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
    mode: ExecutionMode,
    observe: &mut dyn FnMut(&HrjnState, u64) -> BatchVerdict,
) -> Result<IslRun> {
    if query.k == 0 {
        return Ok(IslRun::Complete(QueryOutcome::new(
            "ISL",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        )));
    }
    let index = cluster
        .table(index_table)
        .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
    let meter = QueryMeter::start(cluster.metrics());

    // The batched alternating descent lives in [`IslCursor`]; this
    // function is that cursor drained in one call, which is what makes
    // every pause/resume schedule result- and metric-equivalent to the
    // one-shot run *by construction*. The cursor opens one scanner per
    // column family on demand; the store batches RPCs at the configured
    // row-cache size (§4.2.3).
    let mut cursor = IslCursor::open(cluster, query, index_table, config, None)?;
    if mode.is_parallel() {
        let left_spec = Scan::new()
            .families(&[query.left.label.as_str()])
            .caching(config.batch_left);
        let right_spec = Scan::new()
            .families(&[query.right.label.as_str()])
            .caching(config.batch_right);
        let lane = index.serving_node(&[]);
        let mut states = run_lanes(
            cluster,
            mode.workers(),
            [left_spec, right_spec]
                .into_iter()
                .map(|spec| {
                    LaneTask::new(lane, move |worker: &rj_store::client::Client| {
                        let mut scan = worker.scan(index_table, spec)?;
                        scan.prefetch();
                        Ok(scan.into_state())
                    })
                })
                .collect(),
        )?;
        let (Some(right_state), Some(left_state)) = (states.pop(), states.pop()) else {
            return Err(RankJoinError::Internal(
                "warm-up produced fewer than two lanes",
            ));
        };
        // Full-enumeration fast path: with k >= (live KVs)^2 >= |L| * |R|
        // and both sides known non-empty, the HRJN termination test can
        // never fire before both lists exhaust, so serial execution reads
        // both lists completely — the remainder can fan out across
        // regions and read exactly the same. (With an empty side, serial
        // stops after the other side's first demand, which the warm-up
        // has already performed — the shared loop below handles it.)
        let kvs = index.kv_count();
        if query.k as u64 >= kvs.saturating_mul(kvs)
            && left_state.has_buffered_rows()
            && right_state.has_buffered_rows()
        {
            return run_enumeration_parallel(
                cluster,
                query,
                index_table,
                config,
                mode,
                meter,
                [left_state, right_state],
            )
            .map(IslRun::Complete);
        }
        cursor = cursor.with_warm_scans([left_state, right_state]);
    }

    loop {
        match cursor.advance_one_batch()? {
            BatchStep::Drained => break,
            BatchStep::Completed => {
                if cursor.both_exhausted() {
                    continue;
                }
                // Observation point: one batch is fully paid for and HRJN
                // has not terminated. The observer sees only
                // already-fetched state, so a Continue verdict leaves
                // execution untouched.
                if observe(cursor.hrjn(), cursor.batches()) == BatchVerdict::Abort {
                    let batches = cursor.batches();
                    return Ok(IslRun::Aborted(Box::new(IslPartial {
                        state: cursor.into_hrjn(),
                        batches,
                        metrics: meter.finish(),
                    })));
                }
            }
        }
    }

    let batches = cursor.batches();
    let state = cursor.into_hrjn();
    let consumed = state.tuples_consumed();
    let results = state.into_results();
    Ok(IslRun::Complete(
        QueryOutcome::new("ISL", results, meter.finish())
            .with_extra("tuples_consumed", consumed as f64)
            .with_extra("batches", batches as f64),
    ))
}

/// Full-enumeration read path: both score lists are consumed completely
/// (the caller has proven termination cannot fire first), so the
/// remainder of each side's scan — everything past the warm-up round's
/// buffered rows — fans out across the index table's regions. Rows arrive
/// in the same per-side score-descending order as serial batched scans,
/// and HRJN over the complete inputs is interleaving-independent, so
/// results are identical.
fn run_enumeration_parallel(
    cluster: &rj_store::cluster::Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
    mode: ExecutionMode,
    meter: QueryMeter,
    states: [rj_store::client::ScannerState; 2],
) -> Result<QueryOutcome> {
    let scanner = ParallelScanner::new(cluster, mode);
    let mut state = HrjnState::new(query.k, query.score_fn);
    let mut batches = 0u64;
    for ((side, family, batch_size), mut scan_state) in [
        (Side::Left, query.left.label.as_str(), config.batch_left),
        (Side::Right, query.right.label.as_str(), config.batch_right),
    ]
    .into_iter()
    .zip(states)
    {
        let mut rows = scan_state.take_buffered_rows();
        if let Some(resume) = scan_state.resume_key() {
            rows.extend(
                scanner.scan_collect(
                    index_table,
                    &Scan::new()
                        .families(&[family])
                        .caching(batch_size)
                        .start(resume.to_vec()),
                )?,
            );
        }
        // Informational only: the per-side turn count a serial driver
        // would need for this many rows. The serial path's demand-driven
        // count can differ by its exhaustion-discovery demands; the
        // equivalence contract covers results and counted metrics, not
        // extras.
        batches += rows.len().div_ceil(batch_size.max(1)) as u64;
        for row in rows {
            let Some(score) = keys::decode_score_desc(&row.key) else {
                continue;
            };
            for cell in row.family_cells(family) {
                let (join_value, exact_score) = codec::decode_value_score(&cell.value)
                    .unwrap_or_else(|_| (cell.value.to_vec(), score));
                state.push(
                    side,
                    RankedTuple {
                        key: cell.qualifier.clone(),
                        join_value,
                        score: exact_score,
                    },
                );
            }
        }
        state.exhaust(side);
    }
    let consumed = state.tuples_consumed();
    let results = state.into_results();
    Ok(QueryOutcome::new("ISL", results, meter.finish())
        .with_extra("tuples_consumed", consumed as f64)
        .with_extra("batches", batches as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use crate::{isl, oracle};
    use rj_mapreduce::MapReduceEngine;

    fn build_index(c: &rj_store::cluster::Cluster, q: &RankJoinQuery) -> &'static str {
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, q, "isl_idx").unwrap();
        "isl_idx"
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let got = run(&c, &q, idx, IslConfig::uniform(2)).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
    }

    #[test]
    fn matches_oracle_for_all_k_and_batches() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        for k in [1, 2, 3, 7, 40] {
            for batch in [1, 3, 16] {
                let qk = q.with_k(k);
                let got = run(&c, &qk, idx, IslConfig::uniform(batch)).unwrap();
                assert_eq!(
                    got.results,
                    oracle::topk(&c, &qk).unwrap(),
                    "k={k} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn early_termination_reads_less_than_everything() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let got = run(&c, &q.with_k(1), idx, IslConfig::uniform(1)).unwrap();
        // 22 tuples exist; top-1 must terminate well before consuming all.
        let consumed = got.extra("tuples_consumed").unwrap();
        assert!(consumed < 15.0, "consumed {consumed}");
    }

    #[test]
    fn larger_batches_fewer_rpcs_more_reads() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let small = run(&c, &q, idx, IslConfig::uniform(1)).unwrap();
        let large = run(&c, &q, idx, IslConfig::uniform(50)).unwrap();
        assert!(large.metrics.rpc_calls < small.metrics.rpc_calls);
        assert!(large.metrics.kv_reads >= small.metrics.kv_reads);
        assert_eq!(small.results, large.results);
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        assert!(matches!(
            run(&c, &q, "absent", IslConfig::default()).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
