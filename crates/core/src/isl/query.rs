//! ISL query processing (paper Algorithm 4).
//!
//! The coordinator alternates batched scans over the two score lists,
//! maintaining per-side hash tables on the join value for fast joins
//! against newly fetched tuples, and terminating by the HRJN threshold
//! test after every tuple.

use rj_store::keys;
use rj_store::metrics::QueryMeter;
use rj_store::scan::Scan;

use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::hrjn::{HrjnState, RankedTuple, Side};
use crate::query::RankJoinQuery;
use crate::stats::QueryOutcome;

/// ISL tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IslConfig {
    /// Index rows pulled per turn from the left list (`C_A`).
    pub batch_left: usize,
    /// Index rows pulled per turn from the right list (`C_B`).
    pub batch_right: usize,
}

impl Default for IslConfig {
    fn default() -> Self {
        IslConfig {
            batch_left: 64,
            batch_right: 64,
        }
    }
}

impl IslConfig {
    /// Same batch size for both sides.
    pub fn uniform(batch: usize) -> Self {
        IslConfig {
            batch_left: batch.max(1),
            batch_right: batch.max(1),
        }
    }
}

/// Executes the ISL rank join over a previously built index table.
pub fn run(
    cluster: &rj_store::cluster::Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
) -> Result<QueryOutcome> {
    cluster
        .table(index_table)
        .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
    let meter = QueryMeter::start(cluster.metrics());
    let client = cluster.client();

    // One scanner per column family; the store batches RPCs at the
    // configured row-cache size (§4.2.3).
    let mut left_scan = client.scan(
        index_table,
        Scan::new()
            .families(&[query.left.label.as_str()])
            .caching(config.batch_left),
    )?;
    let mut right_scan = client.scan(
        index_table,
        Scan::new()
            .families(&[query.right.label.as_str()])
            .caching(config.batch_right),
    )?;

    let mut state = HrjnState::new(query.k, query.score_fn);
    let mut exhausted = [false, false];
    let mut batches = 0u64;
    let mut turn = 0usize; // 0 = left
    'outer: while !state.is_done() {
        if exhausted[0] && exhausted[1] {
            break;
        }
        // Skip an exhausted side.
        if exhausted[turn] {
            turn = 1 - turn;
        }
        let (scan, side, family, batch_size) = if turn == 0 {
            (
                &mut left_scan,
                Side::Left,
                query.left.label.as_str(),
                config.batch_left,
            )
        } else {
            (
                &mut right_scan,
                Side::Right,
                query.right.label.as_str(),
                config.batch_right,
            )
        };

        batches += 1;
        let mut rows_taken = 0usize;
        while rows_taken < batch_size {
            let Some(row) = scan.next() else {
                exhausted[turn] = true;
                state.exhaust(side);
                break;
            };
            rows_taken += 1;
            // Row key = negated score; each cell = one indexed tuple.
            let Some(score) = keys::decode_score_desc(&row.key) else {
                continue;
            };
            for cell in row.family_cells(family) {
                let (join_value, exact_score) = codec::decode_value_score(&cell.value)
                    .unwrap_or_else(|_| (cell.value.to_vec(), score));
                state.push(
                    side,
                    RankedTuple {
                        key: cell.qualifier.clone(),
                        join_value,
                        score: exact_score,
                    },
                );
                // Algorithm 4 tests inside the tuple loop; rows already
                // fetched in this batch are paid for either way.
                if state.is_done() {
                    break 'outer;
                }
            }
        }
        turn = 1 - turn;
    }

    let consumed = state.tuples_consumed();
    let results = state.into_results();
    Ok(QueryOutcome::new("ISL", results, meter.finish())
        .with_extra("tuples_consumed", consumed as f64)
        .with_extra("batches", batches as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use crate::{isl, oracle};
    use rj_mapreduce::MapReduceEngine;

    fn build_index(
        c: &rj_store::cluster::Cluster,
        q: &RankJoinQuery,
    ) -> &'static str {
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, q, "isl_idx").unwrap();
        "isl_idx"
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let got = run(&c, &q, idx, IslConfig::uniform(2)).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
    }

    #[test]
    fn matches_oracle_for_all_k_and_batches() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        for k in [1, 2, 3, 7, 40] {
            for batch in [1, 3, 16] {
                let qk = q.with_k(k);
                let got = run(&c, &qk, idx, IslConfig::uniform(batch)).unwrap();
                assert_eq!(
                    got.results,
                    oracle::topk(&c, &qk).unwrap(),
                    "k={k} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn early_termination_reads_less_than_everything() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let got = run(&c, &q.with_k(1), idx, IslConfig::uniform(1)).unwrap();
        // 22 tuples exist; top-1 must terminate well before consuming all.
        let consumed = got.extra("tuples_consumed").unwrap();
        assert!(consumed < 15.0, "consumed {consumed}");
    }

    #[test]
    fn larger_batches_fewer_rpcs_more_reads() {
        let (c, q) = running_example_cluster();
        let idx = build_index(&c, &q);
        let small = run(&c, &q, idx, IslConfig::uniform(1)).unwrap();
        let large = run(&c, &q, idx, IslConfig::uniform(50)).unwrap();
        assert!(large.metrics.rpc_calls < small.metrics.rpc_calls);
        assert!(large.metrics.kv_reads >= small.metrics.kv_reads);
        assert_eq!(small.results, large.results);
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        assert!(matches!(
            run(&c, &q, "absent", IslConfig::default()).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
