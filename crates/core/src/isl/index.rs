//! ISL index creation (paper Algorithm 3).
//!
//! One map-only job per relation, putting `{negated score: base row key,
//! join value}` into the shared index table under the relation's column
//! family. Scores live in `[0,1]` (§1.1), so the index table is pre-split
//! uniformly over the order-inverted score domain — no sampling needed.

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_store::cell::Mutation;
use rj_store::keys;

use crate::codec;
use crate::error::Result;
use crate::indexutil::BuildStats;
use crate::query::{JoinSide, RankJoinQuery};

/// Build statistics for the ISL index.
pub type IslBuildStats = BuildStats;

/// Canonical index-table name for a query pair.
pub fn index_table_name(query: &RankJoinQuery) -> String {
    format!("isl__{}__{}", query.left.label, query.right.label)
}

struct IndexMapper {
    side: JoinSide,
}

impl Mapper for IndexMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        // Index row: key = negated score (ascending keys ⇔ descending
        // scores); column = {CF: side label, qualifier: base row key,
        // value: join value (+ score for exact reconstruction)}.
        out.put(
            keys::encode_score_desc(score).to_vec(),
            Mutation::put(
                &self.side.label,
                &row.key,
                codec::encode_value_score(&join_value, score),
            ),
        );
    }
}

/// Builds the ISL index for both sides of `query` into `table`.
pub fn build(engine: &MapReduceEngine, query: &RankJoinQuery, table: &str) -> Result<BuildStats> {
    let cluster = engine.cluster();
    let pieces = cluster.num_nodes() * 2;
    // Known score domain [0,1]: pre-split uniformly on the inverted axis.
    let splits: Vec<Vec<u8>> = (1..pieces)
        .map(|i| keys::encode_score_desc(1.0 - i as f64 / pieces as f64).to_vec())
        .collect();
    cluster.create_table_with_splits(
        table,
        &[query.left.label.as_str(), query.right.label.as_str()],
        &splits,
    )?;

    let mut stats = BuildStats::default();
    for side in [&query.left, &query.right] {
        let families = [side.join_col.0.as_str(), side.score_col.0.as_str()];
        let spec = JobSpec::new(
            &format!("isl-build-{}", side.label),
            JobInput::Tables(vec![TableInput::projected(&side.table, &families)]),
            0,
        )
        .put_table(table);
        let side_cl = side.clone();
        let result = engine.run(
            &spec,
            &move || {
                Box::new(IndexMapper {
                    side: side_cl.clone(),
                })
            },
            None,
            None,
        )?;
        stats.absorb(result.counters);
    }
    stats.index_bytes = cluster.table(table)?.disk_size();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use rj_store::scan::Scan;

    #[test]
    fn index_rows_sorted_by_descending_score() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        build(&engine, &q, "isl_idx").unwrap();
        let client = c.client();
        let mut scores = Vec::new();
        for row in client
            .scan("isl_idx", Scan::new().families(&["R1"]))
            .unwrap()
        {
            if row.family_cells("R1").count() > 0 {
                scores.push(keys::decode_score_desc(&row.key).unwrap());
            }
        }
        // Fig. 3: R1 scores descending: 1.00, 0.93, 0.82 (x3 in one row),
        // 0.79, 0.73, 0.70, 0.68, 0.67, 0.64.
        assert_eq!(scores.first(), Some(&1.0));
        assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
        assert_eq!(scores.len(), 9, "0.82 appears once as a row key");
    }

    #[test]
    fn equal_scores_share_one_row() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        build(&engine, &q, "isl_idx").unwrap();
        let client = c.client();
        let row = client
            .get("isl_idx", &keys::encode_score_desc(0.82))
            .unwrap()
            .expect("0.82 row");
        // r1_1, r1_4, r1_7 all score 0.82 (Fig. 3).
        assert_eq!(row.family_cells("R1").count(), 3);
    }

    #[test]
    fn cell_payload_roundtrips_join_value() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        build(&engine, &q, "isl_idx").unwrap();
        let client = c.client();
        let row = client
            .get("isl_idx", &keys::encode_score_desc(1.0))
            .unwrap()
            .expect("top row");
        let cell = row.family_cells("R1").next().expect("r1_10");
        assert_eq!(cell.qualifier, b"r1_10".to_vec());
        let (join, score) = codec::decode_value_score(&cell.value).unwrap();
        assert_eq!(join, b"a".to_vec());
        assert_eq!(score, 1.0);
    }
}
