//! Pull-based ranked-enumeration cursors over the rank-join drivers.
//!
//! The paper's algorithms are written as run-to-completion top-k calls,
//! but a serving layer wants the *any-k* shape from the ranked-enumeration
//! literature (Tziavelis et al.): results pulled in rank order a page at a
//! time, execution suspended between pulls, and the suspended state cheap
//! to park, migrate, and resume. This module defines that surface:
//!
//! * [`RankedCursor`] — the pull interface: [`RankedCursor::next_batch`]
//!   produces the next `n` results in the *same* deterministic rank order
//!   as the one-shot run ([`crate::result::JoinTuple::rank_cmp`]), and
//!   [`RankedCursor::pause`] detaches a [`CursorState`] that resumes on
//!   any cluster handle sharing the same data.
//! * [`CursorState`] — the detached state: plain owned data (scan
//!   positions, consumed-tuple logs, partial accumulators), serializable
//!   in principle, pinned to the statistics version it was opened under.
//! * [`IslCursor`] — ISL/HRJN as a cursor: the batched alternating
//!   descent of [`crate::isl`] generalized from PR 5's abort seam into
//!   first-class suspend/resume.
//! * [`MaterializedCursor`] — the bulk MapReduce algorithms (Hive, Pig,
//!   IJLMR) as cursors: the one-shot run executes on the first pull (MR
//!   jobs are not incremental — all reads are charged then, exactly the
//!   one-shot amount) and later pulls page from the buffer for free.
//!
//! The BFHM and DRJN cursors live in their driver modules (they share the
//! drivers' private machinery); [`crate::executor::RankJoinExecutor`] has
//! the uniform entry points (`open_cursor` / `resume_cursor`).
//!
//! # The equivalence contract
//!
//! For every algorithm, **any** schedule of `next_batch` / `pause` /
//! resume calls (any page sizes, any resume cluster) emits the one-shot
//! run's result sequence exactly, and draining the cursor charges exactly
//! the one-shot run's counted metrics (KV reads, bytes, RPCs). A prefix
//! consumption charges only what the prefix needed. This holds because a
//! cursor only ever emits *certified* results — results provably in their
//! final rank position:
//!
//! * ISL emits a buffered result only while its score is **strictly**
//!   above the HRJN threshold (every future tuple scores ≤ threshold, so
//!   nothing can be inserted at or before an emitted rank — even a tie at
//!   the threshold stays un-emitted until the run completes, because a
//!   late tie with a smaller key would sort *before* it);
//! * BFHM emits only results strictly above its threat bound, DRJN only
//!   results strictly above the unpulled-score bound — the same strict
//!   rule against each algorithm's "anything still out there" bound;
//! * a drained cursor (threshold crossed or inputs exhausted) emits
//!   everything, matching the one-shot answer.

use std::collections::VecDeque;

use rj_mapreduce::MapReduceEngine;
use rj_store::client::ScannerState;
use rj_store::cluster::Cluster;
use rj_store::keys;
use rj_store::metrics::MetricsSnapshot;
use rj_store::scan::Scan;

use crate::cancel::{StopPolicy, StopReason};
use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::hrjn::{HrjnState, RankedTuple, Side};
use crate::isl::{BatchVerdict, IslConfig};
use crate::query::RankJoinQuery;
use crate::result::JoinTuple;

/// Component-wise sum of two metric snapshots (deltas compose).
pub(crate) fn snap_add(a: MetricsSnapshot, b: MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        kv_reads: a.kv_reads + b.kv_reads,
        kv_writes: a.kv_writes + b.kv_writes,
        network_bytes: a.network_bytes + b.network_bytes,
        rpc_calls: a.rpc_calls + b.rpc_calls,
        sim_seconds: a.sim_seconds + b.sim_seconds,
        node_seconds: a.node_seconds + b.node_seconds,
        admin_kv_reads: a.admin_kv_reads + b.admin_kv_reads,
    }
}

/// Evaluates a [`StopPolicy`] at a cursor step boundary. `charged_sim` is
/// the cursor's *cumulative* simulated-seconds charge (all calls since
/// open), so a deadline bounds the whole query, not one page.
pub(crate) fn policy_stop(
    policy: &StopPolicy,
    batches: u64,
    charged_sim: f64,
) -> Option<StopReason> {
    if let Some(trip_at) = policy.cancel_after_batches {
        if batches >= trip_at {
            policy.token.cancel();
        }
    }
    if policy.token.is_cancelled() {
        return Some(StopReason::Cancelled);
    }
    if let Some(budget) = policy.deadline_sim_seconds {
        if charged_sim >= budget {
            return Some(StopReason::DeadlineExpired);
        }
    }
    None
}

/// One page of results pulled from a [`RankedCursor`].
#[derive(Clone, Debug)]
pub struct CursorBatch {
    /// The next results in rank order — the one-shot answer's rows
    /// `emitted .. emitted + results.len()`. May be shorter than the `n`
    /// asked for when the cursor drained or a stop condition fired.
    pub results: Vec<JoinTuple>,
    /// The cursor is fully drained: every result of the one-shot run has
    /// been emitted. Further pulls return empty batches.
    pub done: bool,
    /// A [`StopPolicy`] condition fired at a step boundary; the cursor
    /// stopped early but remains valid — pause it or keep pulling.
    pub stopped: Option<StopReason>,
    /// Exactly what *this call* charged to the executing cluster's ledger
    /// (the consumed delta a metering layer bills for this page).
    pub metrics: MetricsSnapshot,
}

/// A pausable, resumable rank-join execution: results are pulled in rank
/// order a batch at a time, and the execution can be suspended into a
/// [`CursorState`] between pulls. See the module docs for the
/// equivalence contract every implementation satisfies.
pub trait RankedCursor: Send {
    /// Pulls up to `n` further results, stopping early if `policy` fires
    /// at a step boundary. Results already buffered are served without
    /// new reads; otherwise the underlying descent advances just far
    /// enough to certify `n` more ranks.
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch>;

    /// Detaches the execution into a plain-data [`CursorState`].
    fn pause(self: Box<Self>) -> CursorState;

    /// Results emitted so far (across all `next_batch` calls and resumes).
    fn emitted(&self) -> usize;

    /// How deep the underlying descent has consumed its inputs — an
    /// algorithm-specific monotone progress measure (ISL: tuples consumed
    /// from the score lists; BFHM: bucket + reverse-row fetches; DRJN:
    /// tuples pulled). Deeper states warm deeper re-targets.
    fn consumed_depth(&self) -> u64;

    /// Cumulative metric charge across the cursor's whole life (all
    /// pulls, including before a pause/resume).
    fn charged(&self) -> MetricsSnapshot;

    /// Whether the cursor is fully drained (see [`CursorBatch::done`]).
    fn is_done(&self) -> bool;

    /// The driving algorithm's display name (`"ISL"`, `"BFHM"`, ...).
    fn algorithm(&self) -> &'static str;
}

/// Common bookkeeping carried by every cursor implementation and its
/// detached state.
#[derive(Clone, Debug)]
pub(crate) struct CursorMeta {
    /// Target result count (the cursor's `k`).
    pub k: usize,
    /// Results emitted so far.
    pub emitted: usize,
    /// Cumulative metric charge.
    pub charged: MetricsSnapshot,
    /// Statistics version pinned at open (`None` when opened outside an
    /// executor — no coherence tracking available).
    pub pinned_version: Option<u64>,
}

impl CursorMeta {
    pub(crate) fn new(k: usize, pinned_version: Option<u64>) -> Self {
        CursorMeta {
            k,
            emitted: 0,
            charged: MetricsSnapshot::default(),
            pinned_version,
        }
    }
}

/// A paused cursor, detached from any cluster handle.
///
/// # Serialization & coherence contract
///
/// The state is **plain owned data** — scan positions (start keys plus
/// already-billed buffered rows), the consumed-tuple log, partial
/// accumulators, counters — with no handles into any live cluster, so it
/// is serializable in principle (this workspace vendors no serde; the
/// contract is that nothing in here is process-specific). Resuming on any
/// cluster handle over the *same data* continues the execution exactly:
/// same remaining result sequence, remaining reads billed to the resuming
/// handle's ledger (a resume on a different [`Cluster::fork_metrics`]
/// fork bills the continuation there — nothing already billed is
/// re-charged).
///
/// **Stats-version pinning.** A cursor opened through
/// [`crate::executor::RankJoinExecutor::open_cursor`] records the
/// backend's [`crate::statsmaint::SharedTableStats::version`]. Every
/// maintained write and every index (re-)preparation bumps that version,
/// and `RankJoinExecutor::resume_cursor` refuses a version mismatch with
/// [`RankJoinError::StaleCursor`]: the buffered tuples and scan positions
/// were computed against the old data, so the token is permanently
/// invalid and the query must re-run. A state with no pinned version
/// (opened directly on a driver) resumes unchecked — the caller owns
/// coherence.
///
/// States are `Clone`: a serving layer can park one copy in a
/// partial-work cache and resume another.
#[derive(Clone)]
pub struct CursorState {
    pub(crate) inner: StateInner,
}

/// The per-algorithm payloads of a [`CursorState`].
#[derive(Clone)]
pub(crate) enum StateInner {
    /// ISL/HRJN descent state.
    Isl(Box<IslCore>),
    /// BFHM guarantee-loop state.
    Bfhm(Box<crate::bfhm::BfhmCore>),
    /// DRJN round state.
    Drjn(Box<crate::drjn::DrjnCore>),
    /// Bulk-MR algorithm state (buffered one-shot answer).
    Materialized(Box<MaterializedCore>),
    /// N-ary multiway descent state.
    Multiway(Box<crate::multiway::cursor::MultiwayCore>),
    /// An `Algorithm::Auto` cursor: the currently-driving inner state
    /// plus whether the adaptive switch already happened.
    Auto(Box<AutoCore>),
}

/// Detached state of an executor-level adaptive (`Algorithm::Auto`)
/// cursor: the inner driving cursor plus the switch flag. Resumable only
/// through [`crate::executor::RankJoinExecutor::resume_cursor`] (the
/// re-planning context lives on the executor).
#[derive(Clone)]
pub(crate) struct AutoCore {
    /// The currently-driving inner state.
    pub inner: StateInner,
    /// Whether the mid-query switch away from ISL already happened (a
    /// switched cursor never re-arms observation).
    pub switched: bool,
}

impl std::fmt::Debug for CursorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CursorState")
            .field("algorithm", &self.algorithm())
            .field("k", &self.k())
            .field("emitted", &self.emitted())
            .field("consumed_depth", &self.consumed_depth())
            .field("pinned_version", &self.pinned_version())
            .finish_non_exhaustive()
    }
}

impl CursorState {
    fn meta(&self) -> &CursorMeta {
        match &self.inner {
            StateInner::Isl(c) => &c.meta,
            StateInner::Bfhm(c) => &c.meta,
            StateInner::Drjn(c) => &c.meta,
            StateInner::Materialized(c) => &c.meta,
            StateInner::Multiway(c) => &c.meta,
            StateInner::Auto(c) => CursorState::meta_of(&c.inner),
        }
    }

    fn meta_of(inner: &StateInner) -> &CursorMeta {
        match inner {
            StateInner::Isl(c) => &c.meta,
            StateInner::Bfhm(c) => &c.meta,
            StateInner::Drjn(c) => &c.meta,
            StateInner::Materialized(c) => &c.meta,
            StateInner::Multiway(c) => &c.meta,
            StateInner::Auto(c) => CursorState::meta_of(&c.inner),
        }
    }

    /// The algorithm driving this state.
    pub fn algorithm(&self) -> &'static str {
        match &self.inner {
            StateInner::Isl(_) => "ISL",
            StateInner::Bfhm(_) => "BFHM",
            StateInner::Drjn(_) => "DRJN",
            StateInner::Materialized(c) => c.algorithm,
            StateInner::Multiway(_) => "MULTIWAY",
            StateInner::Auto(_) => "AUTO",
        }
    }

    /// The `k` the paused execution targets.
    pub fn k(&self) -> usize {
        self.meta().k
    }

    /// Results emitted before the pause.
    pub fn emitted(&self) -> usize {
        self.meta().emitted
    }

    /// Cumulative metric charge before the pause.
    pub fn charged(&self) -> MetricsSnapshot {
        self.meta().charged
    }

    /// Input depth consumed before the pause (see
    /// [`RankedCursor::consumed_depth`]).
    pub fn consumed_depth(&self) -> u64 {
        match &self.inner {
            StateInner::Isl(c) => c.log.len() as u64,
            StateInner::Bfhm(c) => c.consumed_depth(),
            StateInner::Drjn(c) => c.consumed_depth(),
            StateInner::Materialized(c) => c.results.as_ref().map_or(0, |r| r.len()) as u64,
            StateInner::Multiway(c) => c.log.len() as u64,
            StateInner::Auto(c) => CursorState {
                inner: c.inner.clone(),
            }
            .consumed_depth(),
        }
    }

    /// The statistics version the cursor was opened under, when opened
    /// through an executor (see the coherence contract above).
    pub fn pinned_version(&self) -> Option<u64> {
        self.meta().pinned_version
    }

    /// Whether this state can be re-targeted to a deeper `k` (the
    /// partial-work warm-start path): the consumed-tuple log lets an ISL
    /// state rebuild its accumulator at any larger `k`; an exhausted
    /// materialized state already holds the whole join.
    pub fn supports_retarget(&self) -> bool {
        match &self.inner {
            StateInner::Isl(_) | StateInner::Multiway(_) => true,
            StateInner::Auto(c) => matches!(c.inner, StateInner::Isl(_)),
            _ => false,
        }
    }

    /// Resumes the paused execution on `cluster` (which must hold the
    /// same data the cursor was consuming — see the coherence contract).
    /// Remaining work is billed to `cluster`'s metric ledger.
    ///
    /// `Algorithm::Auto` states must resume through
    /// [`crate::executor::RankJoinExecutor::resume_cursor`] — the
    /// re-planning context lives on the executor.
    pub fn resume_on(self, cluster: &Cluster) -> Result<Box<dyn RankedCursor>> {
        match self.inner {
            StateInner::Isl(core) => Ok(Box::new(IslCursor::resume(cluster, *core))),
            StateInner::Bfhm(core) => Ok(Box::new(crate::bfhm::BfhmCursor::resume(cluster, *core))),
            StateInner::Drjn(core) => Ok(Box::new(crate::drjn::DrjnCursor::resume(cluster, *core))),
            StateInner::Materialized(core) => {
                Ok(Box::new(MaterializedCursor::resume(cluster, *core)))
            }
            StateInner::Multiway(core) => Ok(Box::new(
                crate::multiway::cursor::MultiwayCursor::resume(cluster, *core),
            )),
            StateInner::Auto(_) => Err(RankJoinError::Internal(
                "Algorithm::Auto cursors resume through RankJoinExecutor::resume_cursor",
            )),
        }
    }

    /// Re-targets an ISL state to a (usually deeper) `new_k` and resumes
    /// it on `cluster` — the partial-work warm start. The consumed-tuple
    /// log is replayed into a fresh `k = new_k` accumulator (pure
    /// in-memory work: nothing already read is re-charged), emission
    /// restarts at rank 0, and the cumulative charge resets — the warmed
    /// query is billed only what *it* consumes beyond the donor prefix.
    pub fn resume_retargeted(
        self,
        cluster: &Cluster,
        new_k: usize,
    ) -> Result<Box<dyn RankedCursor>> {
        match self.inner {
            StateInner::Isl(mut core) => {
                core.retarget(new_k);
                Ok(Box::new(IslCursor::resume(cluster, *core)))
            }
            StateInner::Multiway(mut core) => {
                core.retarget(new_k);
                Ok(Box::new(crate::multiway::cursor::MultiwayCursor::resume(
                    cluster, *core,
                )))
            }
            StateInner::Auto(auto) if matches!(auto.inner, StateInner::Isl(_)) => {
                CursorState { inner: auto.inner }.resume_retargeted(cluster, new_k)
            }
            _ => Err(RankJoinError::Internal(
                "only ISL and multiway cursor states support re-targeting to a deeper k",
            )),
        }
    }
}

// ---------------------------------------------------------------------
// ISL
// ---------------------------------------------------------------------

/// Detached state of an [`IslCursor`]: the exact descent position of the
/// batched alternating loop in [`crate::isl`], plus the consumed-tuple
/// log the HRJN accumulator is rebuilt from on resume.
#[derive(Clone)]
pub(crate) struct IslCore {
    pub meta: CursorMeta,
    /// The query, with `query.k == meta.k`.
    pub query: RankJoinQuery,
    /// ISL index table name.
    pub table: String,
    pub config: IslConfig,
    /// Detached per-side scanner positions (`None` until first demand).
    pub scans: [Option<ScannerState>; 2],
    pub exhausted: [bool; 2],
    /// Which side the current/next batch pulls from (0 = left).
    pub turn: usize,
    /// Batches completed or started.
    pub batches: u64,
    /// A batch is part-way through (paused by early HRJN termination —
    /// a deeper re-target continues it mid-row).
    pub in_batch: bool,
    /// Rows consumed within the current batch.
    pub rows_taken: usize,
    /// Decoded tuples of a partially-consumed row, not yet pushed (the
    /// one-shot loop stops pushing the instant HRJN terminates; a deeper
    /// re-target must push the remainder before reading on).
    pub pending: VecDeque<RankedTuple>,
    /// Every tuple pushed into HRJN, in push order — replaying this log
    /// into a fresh accumulator reconstructs the full threshold state
    /// (and, at a larger `k`, recovers results the bounded top-k had
    /// evicted) without touching the store.
    pub log: Vec<(Side, RankedTuple)>,
}

impl IslCore {
    fn retarget(&mut self, new_k: usize) {
        self.query = self.query.with_k(new_k);
        self.meta = CursorMeta::new(new_k, self.meta.pinned_version);
    }
}

/// What one [`IslCursor::advance_one_batch`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchStep {
    /// Nothing left to do: HRJN terminated or both inputs exhausted
    /// (possibly mid-batch).
    Drained,
    /// One batch completed at its boundary; the descent continues.
    Completed,
}

/// Per-batch observation callback: sees the live HRJN state and the
/// batch ordinal, and rules whether the descent continues.
pub(crate) type BatchObserver = Box<dyn FnMut(&HrjnState, u64) -> BatchVerdict + Send>;

/// The ISL/HRJN rank join as a [`RankedCursor`]: the batched alternating
/// descent of [`crate::isl::run_with_mode`], suspendable at any batch
/// boundary. The serial one-shot driver *is* this cursor drained in one
/// call, so results and counted metrics agree by construction.
pub struct IslCursor {
    cluster: Cluster,
    core: IslCore,
    state: HrjnState,
    /// Per-batch observation hook (the adaptive driver's divergence
    /// watch). Called after every completed batch, like
    /// `isl::run_observed`'s observer; an `Abort` verdict ends the pump
    /// and sets [`IslCursor::observer_abort`].
    observer: Option<BatchObserver>,
    observer_abort: bool,
}

impl IslCursor {
    /// Opens a cursor over a previously built ISL index.
    pub(crate) fn open(
        cluster: &Cluster,
        query: &RankJoinQuery,
        index_table: &str,
        config: IslConfig,
        pinned_version: Option<u64>,
    ) -> Result<Self> {
        cluster
            .table(index_table)
            .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
        Ok(IslCursor {
            cluster: cluster.clone(),
            state: HrjnState::new(query.k, query.score_fn),
            core: IslCore {
                meta: CursorMeta::new(query.k, pinned_version),
                query: query.clone(),
                table: index_table.to_owned(),
                config,
                scans: [None, None],
                exhausted: [false, false],
                turn: 0,
                batches: 0,
                in_batch: false,
                rows_taken: 0,
                pending: VecDeque::new(),
                log: Vec::new(),
            },
            observer: None,
            observer_abort: false,
        })
    }

    /// Seeds the cursor with already-opened scanner positions (the
    /// parallel warm-up round's prefetched first RPCs).
    pub(crate) fn with_warm_scans(mut self, scans: [ScannerState; 2]) -> Self {
        let [l, r] = scans;
        self.core.scans = [Some(l), Some(r)];
        self
    }

    /// Reattaches a detached state to `cluster`, rebuilding the HRJN
    /// accumulator by replaying the consumed-tuple log (pure in-memory —
    /// nothing is re-read or re-billed).
    pub(crate) fn resume(cluster: &Cluster, core: IslCore) -> Self {
        let mut state = HrjnState::new(core.query.k, core.query.score_fn);
        for (side, tuple) in &core.log {
            state.push(*side, tuple.clone());
        }
        for (i, side) in [Side::Left, Side::Right].into_iter().enumerate() {
            if core.exhausted[i] {
                state.exhaust(side);
            }
        }
        IslCursor {
            cluster: cluster.clone(),
            state,
            core,
            observer: None,
            observer_abort: false,
        }
    }

    /// Installs the per-batch observation hook (see [`IslCursor::observer`]).
    pub(crate) fn set_observer(&mut self, observer: BatchObserver) {
        self.observer = Some(observer);
    }

    /// Whether the last pump ended on the observer's `Abort` verdict.
    pub(crate) fn observer_aborted(&self) -> bool {
        self.observer_abort
    }

    /// The live HRJN threshold state.
    pub(crate) fn hrjn(&self) -> &HrjnState {
        &self.state
    }

    /// Batches fetched so far.
    pub(crate) fn batches(&self) -> u64 {
        self.core.batches
    }

    /// Both inputs fully consumed.
    pub(crate) fn both_exhausted(&self) -> bool {
        self.core.exhausted[0] && self.core.exhausted[1]
    }

    /// Consumes the cursor into its HRJN state (the adaptive driver's
    /// abort handoff).
    pub(crate) fn into_hrjn(self) -> HrjnState {
        self.state
    }

    fn drained(&self) -> bool {
        self.core.meta.k == 0 || self.state.is_done() || self.both_exhausted()
    }

    /// Results currently certain to be final: while the descent runs,
    /// the buffered prefix **strictly** above the HRJN threshold; once
    /// drained, everything (see the module docs for why strictness is
    /// what makes emitted prefixes exact under score ties).
    fn certified(&self) -> usize {
        if self.drained() {
            return self.state.result_count();
        }
        let Some(threshold) = self.state.threshold() else {
            return 0;
        };
        self.state
            .current_results()
            .iter()
            .take_while(|t| t.score > threshold)
            .count()
    }

    /// Runs exactly one batch of the alternating descent (or finishes a
    /// part-way batch left by an earlier re-target) — the loop body of
    /// `isl::run_observed`, verbatim. No observer or policy evaluation
    /// happens here; callers check at the boundary this returns at.
    pub(crate) fn advance_one_batch(&mut self) -> Result<BatchStep> {
        if self.drained() {
            return Ok(BatchStep::Drained);
        }
        let client = self.cluster.client();
        if !self.core.in_batch {
            if self.core.exhausted[self.core.turn] {
                self.core.turn = 1 - self.core.turn;
            }
            self.core.batches += 1;
            self.core.rows_taken = 0;
            self.core.in_batch = true;
        }
        let turn = self.core.turn;
        let side = if turn == 0 { Side::Left } else { Side::Right };
        let family = self
            .core
            .query
            .try_side(turn)
            // rjlint: allow(no-unwrap) — `turn` alternates over {0, 1} and a
            // validated binary query always has both sides.
            .expect("binary side")
            .label
            .clone();
        let batch_size = if turn == 0 {
            self.core.config.batch_left
        } else {
            self.core.config.batch_right
        };

        // Push the leftover cells of a row a previous (shallower) target
        // stopped inside — already read and billed, never re-fetched.
        while let Some(tuple) = self.core.pending.pop_front() {
            self.core.log.push((side, tuple.clone()));
            self.state.push(side, tuple);
            if self.state.is_done() {
                return Ok(BatchStep::Drained);
            }
        }

        // Materialize this side's scanner at its detached position.
        let mut scan = match self.core.scans[turn].take() {
            Some(state) => client.resume_scan(state)?,
            None => {
                let spec = Scan::new().families(&[family.as_str()]).caching(batch_size);
                client.scan(&self.core.table, spec)?
            }
        };

        let mut step = BatchStep::Completed;
        'rows: while self.core.rows_taken < batch_size {
            let Some(row) = scan.next() else {
                self.core.exhausted[turn] = true;
                self.state.exhaust(side);
                break;
            };
            self.core.rows_taken += 1;
            // Row key = negated score; each cell = one indexed tuple.
            let Some(score) = keys::decode_score_desc(&row.key) else {
                continue;
            };
            let mut cells: VecDeque<RankedTuple> = row
                .family_cells(&family)
                .map(|cell| {
                    let (join_value, exact_score) = codec::decode_value_score(&cell.value)
                        .unwrap_or_else(|_| (cell.value.to_vec(), score));
                    RankedTuple {
                        key: cell.qualifier.clone(),
                        join_value,
                        score: exact_score,
                    }
                })
                .collect();
            while let Some(tuple) = cells.pop_front() {
                self.core.log.push((side, tuple.clone()));
                self.state.push(side, tuple);
                // Algorithm 4 tests inside the tuple loop; rows already
                // fetched in this batch are paid for either way.
                if self.state.is_done() {
                    self.core.pending = cells;
                    step = BatchStep::Drained;
                    break 'rows;
                }
            }
        }
        self.core.scans[turn] = Some(scan.into_state());
        if step == BatchStep::Completed {
            self.core.in_batch = false;
            self.core.turn = 1 - self.core.turn;
        }
        Ok(step)
    }

    /// Advances batches until `want` results are certified, the cursor
    /// drains, or a stop condition / observer abort fires at a boundary.
    /// Returns the stop reason (if any) and this call's metric delta.
    fn pump(
        &mut self,
        want: usize,
        policy: &StopPolicy,
    ) -> Result<(Option<StopReason>, MetricsSnapshot)> {
        let ledger = self.cluster.metrics();
        let before = ledger.snapshot();
        self.observer_abort = false;
        let mut stopped = None;
        loop {
            // `certified() >= want` can hold part-way through a batch only
            // right after a re-target (advance_one_batch never yields
            // mid-batch otherwise); the detached state is consistent there
            // too, so stop without demanding further reads.
            if self.drained() || self.certified() >= want {
                break;
            }
            match self.advance_one_batch()? {
                BatchStep::Drained => break,
                BatchStep::Completed => {
                    if self.both_exhausted() {
                        continue; // top-of-loop drain; no boundary checks
                    }
                    // Observation point: one batch fully paid for, HRJN
                    // not terminated — same seam as isl::run_observed.
                    if let Some(observer) = &mut self.observer {
                        if observer(&self.state, self.core.batches) == BatchVerdict::Abort {
                            self.observer_abort = true;
                            break;
                        }
                    }
                    let sim_so_far = self.core.meta.charged.sim_seconds
                        + ledger.snapshot().delta_since(&before).sim_seconds;
                    if let Some(reason) = policy_stop(policy, self.core.batches, sim_so_far) {
                        stopped = Some(reason);
                        break;
                    }
                }
            }
        }
        let delta = ledger.snapshot().delta_since(&before);
        self.core.meta.charged = snap_add(self.core.meta.charged, delta);
        Ok((stopped, delta))
    }
}

impl RankedCursor for IslCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        let want = self
            .core
            .meta
            .emitted
            .saturating_add(n)
            .min(self.core.meta.k);
        let (stopped, metrics) = self.pump(want, policy)?;
        let all = self.state.current_results();
        let certified = self.certified();
        let emit_to = certified.min(want).max(self.core.meta.emitted);
        let results = all[self.core.meta.emitted..emit_to].to_vec();
        self.core.meta.emitted = emit_to;
        Ok(CursorBatch {
            results,
            done: self.is_done(),
            stopped,
            metrics,
        })
    }

    fn pause(self: Box<Self>) -> CursorState {
        CursorState {
            inner: StateInner::Isl(Box::new(self.core)),
        }
    }

    fn emitted(&self) -> usize {
        self.core.meta.emitted
    }

    fn consumed_depth(&self) -> u64 {
        self.core.log.len() as u64
    }

    fn charged(&self) -> MetricsSnapshot {
        self.core.meta.charged
    }

    fn is_done(&self) -> bool {
        self.drained() && self.core.meta.emitted == self.state.result_count()
    }

    fn algorithm(&self) -> &'static str {
        "ISL"
    }
}

// ---------------------------------------------------------------------
// Materialized (Hive / Pig / IJLMR)
// ---------------------------------------------------------------------

/// Which bulk-MR algorithm a [`MaterializedCursor`] runs.
#[derive(Clone, Debug)]
pub(crate) enum MaterializedSource {
    /// Hive-style baseline (2 MR jobs + fetch).
    Hive,
    /// Pig-style baseline (3 MR jobs).
    Pig,
    /// IJLMR over its prepared index table.
    Ijlmr(String),
    /// DRJN over its prepared matrices — only as an adaptive *switch
    /// target* (native DRJN cursors run the incremental
    /// [`crate::drjn`] round machine instead).
    Drjn(
        String,
        crate::drjn::DrjnConfig,
        rj_store::parallel::ExecutionMode,
    ),
    /// A pre-computed answer handed in directly (the adaptive switch
    /// path parks its switched run's results here).
    Buffered,
}

/// Detached state of a [`MaterializedCursor`].
#[derive(Clone)]
pub(crate) struct MaterializedCore {
    pub meta: CursorMeta,
    pub query: RankJoinQuery,
    pub source: MaterializedSource,
    /// The one-shot answer, once the first pull has executed it.
    pub results: Option<Vec<JoinTuple>>,
    pub algorithm: &'static str,
}

/// Bulk MapReduce algorithms as cursors: MR jobs are not incremental, so
/// the first pull runs the one-shot execution (charging exactly the
/// one-shot metrics) and every later pull pages from the buffered answer
/// for free.
pub struct MaterializedCursor {
    cluster: Cluster,
    core: MaterializedCore,
}

impl MaterializedCursor {
    pub(crate) fn open(
        cluster: &Cluster,
        query: &RankJoinQuery,
        source: MaterializedSource,
        algorithm: &'static str,
        pinned_version: Option<u64>,
    ) -> Self {
        MaterializedCursor {
            cluster: cluster.clone(),
            core: MaterializedCore {
                meta: CursorMeta::new(query.k, pinned_version),
                query: query.clone(),
                source,
                results: None,
                algorithm,
            },
        }
    }

    pub(crate) fn resume(cluster: &Cluster, core: MaterializedCore) -> Self {
        MaterializedCursor {
            cluster: cluster.clone(),
            core,
        }
    }

    fn ensure_materialized(&mut self) -> Result<MetricsSnapshot> {
        if self.core.results.is_some() {
            return Ok(MetricsSnapshot::default());
        }
        let ledger = self.cluster.metrics();
        let before = ledger.snapshot();
        let engine = MapReduceEngine::new(self.cluster.clone());
        let outcome = match &self.core.source {
            MaterializedSource::Hive => crate::hive::run(&engine, &self.core.query)?,
            MaterializedSource::Pig => crate::pig::run(&engine, &self.core.query)?,
            MaterializedSource::Ijlmr(table) => {
                crate::ijlmr::run(&engine, &self.core.query, table)?
            }
            MaterializedSource::Drjn(table, config, mode) => {
                crate::drjn::run_with_mode(&engine, &self.core.query, table, config, *mode)?
            }
            MaterializedSource::Buffered => {
                return Err(RankJoinError::Internal("buffered cursor lost its results"))
            }
        };
        self.core.results = Some(outcome.results);
        let delta = ledger.snapshot().delta_since(&before);
        self.core.meta.charged = snap_add(self.core.meta.charged, delta);
        Ok(delta)
    }
}

impl RankedCursor for MaterializedCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        // MR jobs are not interruptible mid-flight; the policy is honoured
        // at the only step boundary there is — before launching the run.
        if self.core.results.is_none() {
            if let Some(reason) = policy_stop(policy, 0, self.core.meta.charged.sim_seconds) {
                return Ok(CursorBatch {
                    results: Vec::new(),
                    done: false,
                    stopped: Some(reason),
                    metrics: MetricsSnapshot::default(),
                });
            }
        }
        let metrics = self.ensure_materialized()?;
        let results = self
            .core
            .results
            .as_ref()
            .ok_or(RankJoinError::Internal("materialization left no results"))?;
        let emit_to = results.len().min(self.core.meta.emitted.saturating_add(n));
        let page = results[self.core.meta.emitted..emit_to].to_vec();
        self.core.meta.emitted = emit_to;
        Ok(CursorBatch {
            results: page,
            done: self.is_done(),
            stopped: None,
            metrics,
        })
    }

    fn pause(self: Box<Self>) -> CursorState {
        CursorState {
            inner: StateInner::Materialized(Box::new(self.core)),
        }
    }

    fn emitted(&self) -> usize {
        self.core.meta.emitted
    }

    fn consumed_depth(&self) -> u64 {
        self.core.results.as_ref().map_or(0, |r| r.len()) as u64
    }

    fn charged(&self) -> MetricsSnapshot {
        self.core.meta.charged
    }

    fn is_done(&self) -> bool {
        self.core
            .results
            .as_ref()
            .is_some_and(|r| self.core.meta.emitted == r.len().min(self.core.meta.k))
    }

    fn algorithm(&self) -> &'static str {
        self.core.algorithm
    }
}

/// Opens an [`IslCursor`] directly over a built ISL index — the
/// driver-level entry point ([`crate::executor::RankJoinExecutor::open_cursor`]
/// is the planned, version-pinned one).
pub fn open_isl_cursor(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
) -> Result<IslCursor> {
    IslCursor::open(cluster, query, index_table, config, None)
}
