//! Mid-query adaptive re-planning: abort-and-switch for ISL.
//!
//! The cost-based planner ([`crate::planner`]) is a *one-shot* oracle: it
//! prices every candidate from histograms and commits before the first
//! byte is read. The paper's Fig. 7/8 contrast shows how much that bet is
//! worth — no algorithm wins everywhere — and PR 4's statistics
//! maintenance keeps the histograms fresh *between* queries. But a
//! histogram can still be wrong at runtime (a raced refresh set, a delta
//! stream that drifted from the base data, plain estimation error), and a
//! mispriced ISL plan fails expensively: batched HRJN keeps descending
//! the score lists until the threshold crosses the k-th result, however
//! deep that turns out to be.
//!
//! The adaptive-operator idea from the ranked-enumeration literature
//! (Tziavelis et al., *Ranked Enumeration for Database Queries*; *Optimal
//! Join Algorithms Meet Top-k*) is to let the first batches of execution
//! correct the plan:
//!
//! 1. **Observe.** Every ISL batch descends each score list; after `d`
//!    pulled tuples a side sits at its lowest-seen score `s̄`. The plan's
//!    [`DescentModel`] predicts that score from the histograms the plan
//!    was priced on. The absolute gap is the *divergence* — in the
//!    normalized `[0,1]` score domain, so one bound works for every
//!    query.
//! 2. **Abort.** When the divergence crosses the executor's trust bound
//!    (`replan_divergence`, the runtime sibling of the staleness bound),
//!    the descent stops at a batch boundary: the tuples already fetched
//!    are paid for either way, everything else is still demand-driven.
//! 3. **Correct.** The observed per-side descent is folded back through
//!    the shared [`SharedTableStats`](crate::statsmaint::SharedTableStats)
//!    handle
//!    ([`apply_observed_descent`](crate::statsmaint::SharedTableStats::apply_observed_descent))
//!    — a mid-query
//!    correction is just another delta plus a version bump, so every
//!    cached plan sharing the handle invalidates coherently, and later
//!    plans report [`StatsSource::MidQuery`](crate::planner::StatsSource).
//! 4. **Switch.** The executor re-plans over the corrected statistics
//!    (live region counts re-read, candidates minus ISL — restarting the
//!    algorithm that just proved mispriced is not a switch) and runs the
//!    new winner. The aborted prefix is not wasted twice: its buffered
//!    join results are genuine, so a switch to BFHM seeds the top-k
//!    accumulator with them ([`crate::bfhm::run_seeded`]), which can only
//!    tighten BFHM's termination bound. All reads — wasted prefix,
//!    re-plan, switched run — are charged to one [`QueryOutcome`], so the
//!    measured cost of adapting stays honest.
//!
//! Adaptivity only engages on ISL runs dispatched through
//! [`Algorithm::Auto`]: the divergence
//! test needs the plan's descent model, and a caller who asked for
//! `Algorithm::Isl` by name asked for ISL, not for a planner.

use rj_store::cluster::Cluster;
use rj_store::metrics::MetricsSnapshot;
use rj_store::parallel::ExecutionMode;

use crate::error::Result;
use crate::executor::Algorithm;
use crate::hrjn::{HrjnState, Side};
use crate::isl::{self, BatchVerdict, IslConfig, IslRun};
use crate::planner::{DescentModel, Plan, STAT_BUCKETS};
use crate::query::RankJoinQuery;
use crate::stats::QueryOutcome;
use crate::statsmaint::ObservedDescent;

/// Default trust bound on observed-vs-predicted score divergence before
/// an `Auto`-dispatched ISL execution aborts and re-plans.
///
/// Units are absolute score distance in the normalized `[0,1]` domain.
/// Honest statistics keep the divergence within one histogram bucket
/// (0.01) plus maintained-path residual drift, so 0.2 never fires on a
/// truthful plan while catching any lie big enough to change the
/// ISL-vs-BFHM ranking. `f64::INFINITY` disables switching entirely.
pub const DEFAULT_REPLAN_DIVERGENCE: f64 = 0.2;

/// Per-side tuples that must have been consumed before that side's
/// divergence is judged — below this, the observation is mostly the
/// bucket-granularity floor, not signal.
const MIN_OBSERVED_TUPLES: usize = 4;

/// The per-batch divergence judge an adaptive ISL execution runs with.
/// Owns a snapshot of the plan's descent model, so it can also live
/// inside the long-lived observer hook of an executor-opened Auto cursor
/// (which outlives the plan borrow).
pub(crate) struct DivergenceObserver {
    model: DescentModel,
    bound: f64,
    /// Fault-injection hook: abort unconditionally once this many batches
    /// ran (regardless of divergence). Drives the any-switch-point
    /// equivalence tests.
    force_after: Option<u64>,
    max_divergence: f64,
}

impl DivergenceObserver {
    /// A judge against `plan`'s descent model with the executor's bound.
    pub(crate) fn new(plan: &Plan, bound: f64, force_after: Option<u64>) -> Self {
        DivergenceObserver {
            model: plan.descent.clone(),
            // NaN bounds read as "never trust" would abort every query;
            // the conservative reading for a *divergence* bound is the
            // opposite of the staleness bound's: garbage in, adaptivity
            // off.
            bound: if bound.is_nan() { f64::INFINITY } else { bound },
            force_after,
            max_divergence: 0.0,
        }
    }

    /// The largest divergence seen so far (what a triggered correction
    /// records).
    pub(crate) fn divergence(&self) -> f64 {
        self.max_divergence
    }

    /// The per-batch verdict (see [`isl::run_observed`]).
    pub(crate) fn after_batch(&mut self, state: &HrjnState, batches: u64) -> BatchVerdict {
        for (i, side) in [Side::Left, Side::Right].into_iter().enumerate() {
            let depth = state.consumed(side);
            if depth < MIN_OBSERVED_TUPLES {
                continue;
            }
            let Some((_, low)) = state.side_bounds(side) else {
                continue;
            };
            let predicted = self.model.expected_score_at_depth(i, depth as u64);
            self.max_divergence = self.max_divergence.max((low - predicted).abs());
        }
        if self.force_after.is_some_and(|n| batches >= n) || self.max_divergence > self.bound {
            BatchVerdict::Abort
        } else {
            BatchVerdict::Continue
        }
    }
}

/// What [`run_isl`] hands back when the observer aborted: everything the
/// executor needs to correct, re-plan, and switch.
pub(crate) struct SwitchRequest {
    /// Genuine join results buffered by the aborted prefix (rank-ordered)
    /// — the reusable part of the work already paid for.
    pub partial_results: Vec<crate::result::JoinTuple>,
    /// Per-side observed descents, ready for
    /// [`apply_observed_descent`](crate::statsmaint::SharedTableStats::apply_observed_descent).
    pub observed: [Option<ObservedDescent>; 2],
    /// The divergence that triggered the abort.
    pub divergence: f64,
    /// Metrics the aborted prefix charged (the wasted-read accounting).
    pub prefix: MetricsSnapshot,
    /// Batches the prefix ran.
    pub batches: u64,
}

/// Outcome of one observed ISL execution.
pub(crate) enum AdaptiveIsl {
    /// Ran to completion — no switch was warranted.
    Completed(QueryOutcome),
    /// Aborted on observed divergence (or the forced hook); the executor
    /// should correct the statistics, re-plan, and switch.
    Switch(SwitchRequest),
}

/// Runs ISL under divergence observation with `observer` as the judge
/// (build one with [`DivergenceObserver::new`] against the plan the run
/// was priced on).
pub(crate) fn run_isl(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: IslConfig,
    mode: ExecutionMode,
    observer: &mut DivergenceObserver,
) -> Result<AdaptiveIsl> {
    match isl::run_observed(
        cluster,
        query,
        index_table,
        config,
        mode,
        &mut |state, batches| observer.after_batch(state, batches),
    )? {
        IslRun::Complete(outcome) => Ok(AdaptiveIsl::Completed(outcome)),
        IslRun::Aborted(partial) => {
            let observed = observed_from(&partial.state);
            Ok(AdaptiveIsl::Switch(SwitchRequest {
                partial_results: partial.state.current_results(),
                observed,
                divergence: observer.divergence(),
                prefix: partial.metrics,
                batches: partial.batches,
            }))
        }
    }
}

/// Per-side observed descents of an aborted ISL prefix, ready for
/// [`apply_observed_descent`](crate::statsmaint::SharedTableStats::apply_observed_descent)
/// — shared by the one-shot abort path and the cursor switch path.
pub(crate) fn observed_from(state: &HrjnState) -> [Option<ObservedDescent>; 2] {
    [Side::Left, Side::Right].map(|side| {
        let (max_score, low_score) = state.side_bounds(side)?;
        Some(ObservedDescent {
            hist: state.observed_histogram(side, STAT_BUCKETS),
            low_score,
            max_score,
            tuples: state.consumed(side) as u64,
        })
    })
}

/// Static display name of an adaptive execution that switched from ISL to
/// `target` — what the merged [`QueryOutcome::algorithm`] reports, so
/// harnesses can tell an adapted run from a native one at a glance.
pub(crate) fn switched_name(target: Algorithm) -> &'static str {
    match target {
        Algorithm::Hive => "ISL→HIVE",
        Algorithm::Pig => "ISL→PIG",
        Algorithm::Ijlmr => "ISL→IJLMR",
        Algorithm::Bfhm => "ISL→BFHM",
        Algorithm::Drjn => "ISL→DRJN",
        // Unreachable in practice: the switch plan never ranks ISL (it is
        // excluded from the candidates) or Auto (the planner never ranks
        // itself).
        Algorithm::Isl | Algorithm::Auto => "ISL→?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hrjn::RankedTuple;
    use crate::planner::{self, Candidates, Objective};
    use crate::testsupport::running_example_cluster;
    use rj_store::costmodel::CostModel;

    fn example_plan() -> Plan {
        let (c, q) = running_example_cluster();
        let stats = planner::collect_stats(&c, &q).unwrap();
        planner::plan(
            &stats,
            &q,
            3,
            &CostModel::ec2(8),
            Objective::Time,
            &Candidates::all(),
            ExecutionMode::Serial,
        )
    }

    fn feed(state: &mut HrjnState, side: Side, scores: &[f64]) {
        for (i, &s) in scores.iter().enumerate() {
            state.push(
                side,
                RankedTuple {
                    key: format!("k{i}").into_bytes(),
                    join_value: format!("j{i}").into_bytes(),
                    score: s,
                },
            );
        }
    }

    #[test]
    fn truthful_descent_never_trips() {
        let plan = example_plan();
        let mut obs = DivergenceObserver::new(&plan, DEFAULT_REPLAN_DIVERGENCE, None);
        let mut state = HrjnState::new(3, crate::score::ScoreFn::Sum);
        // The real running-example descents (left: 1.0, .93, .82, .82;
        // right: .92, .91, .64, .53).
        feed(&mut state, Side::Left, &[1.0, 0.93, 0.82, 0.82]);
        feed(&mut state, Side::Right, &[0.92, 0.91, 0.64, 0.53]);
        assert_eq!(obs.after_batch(&state, 1), BatchVerdict::Continue);
        assert!(
            obs.divergence() <= 0.02,
            "honest stats diverge by at most bucket granularity, got {}",
            obs.divergence()
        );
    }

    #[test]
    fn lied_descent_trips_the_bound() {
        let plan = example_plan();
        let mut obs = DivergenceObserver::new(&plan, DEFAULT_REPLAN_DIVERGENCE, None);
        let mut state = HrjnState::new(3, crate::score::ScoreFn::Sum);
        // Reality descends to 0.3 where the histogram claims the 4th-best
        // left tuple still scores 0.82.
        feed(&mut state, Side::Left, &[0.6, 0.5, 0.4, 0.3]);
        feed(&mut state, Side::Right, &[0.92, 0.91, 0.64, 0.53]);
        assert_eq!(obs.after_batch(&state, 1), BatchVerdict::Abort);
        assert!(obs.divergence() > DEFAULT_REPLAN_DIVERGENCE);
    }

    #[test]
    fn infinite_bound_never_aborts_and_nan_reads_as_infinite() {
        let plan = example_plan();
        for bound in [f64::INFINITY, f64::NAN] {
            let mut obs = DivergenceObserver::new(&plan, bound, None);
            let mut state = HrjnState::new(3, crate::score::ScoreFn::Sum);
            feed(&mut state, Side::Left, &[0.2, 0.1, 0.05, 0.01]);
            feed(&mut state, Side::Right, &[0.2, 0.1, 0.05, 0.01]);
            assert_eq!(obs.after_batch(&state, 9), BatchVerdict::Continue);
        }
    }

    #[test]
    fn forced_hook_aborts_regardless_of_divergence() {
        let plan = example_plan();
        let mut obs = DivergenceObserver::new(&plan, f64::INFINITY, Some(2));
        let state = HrjnState::new(3, crate::score::ScoreFn::Sum);
        assert_eq!(obs.after_batch(&state, 1), BatchVerdict::Continue);
        assert_eq!(obs.after_batch(&state, 2), BatchVerdict::Abort);
    }

    #[test]
    fn below_floor_observations_are_not_judged() {
        let plan = example_plan();
        let mut obs = DivergenceObserver::new(&plan, 0.01, None);
        let mut state = HrjnState::new(3, crate::score::ScoreFn::Sum);
        // Three wildly diverging tuples — still under the 4-tuple floor.
        feed(&mut state, Side::Left, &[0.1, 0.05, 0.01]);
        assert_eq!(obs.after_batch(&state, 1), BatchVerdict::Continue);
        assert_eq!(obs.divergence(), 0.0);
    }

    #[test]
    fn switched_names_are_stable() {
        assert_eq!(switched_name(Algorithm::Bfhm), "ISL→BFHM");
        assert_eq!(switched_name(Algorithm::Hive), "ISL→HIVE");
        assert_eq!(switched_name(Algorithm::Drjn), "ISL→DRJN");
    }
}
