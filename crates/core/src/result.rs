//! Join result tuples and the bounded top-k list.

use std::cmp::Ordering;
use std::collections::BTreeSet;

/// One joined result tuple.
///
/// Binary joins fill `left_key`/`right_key` and leave `inner` empty; an
/// N-ary [`crate::query::JoinSpec`] result additionally records every
/// *interior* side (result order, sides `1..n-1`) in `inner`, with side
/// 0 as `left` and side `n-1` as `right`. That keeps the binary layout —
/// and therefore every binary code path and equality — untouched.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinTuple {
    /// Row key of the left-side base tuple (side 0).
    pub left_key: Vec<u8>,
    /// Row key of the right-side base tuple (the last side).
    pub right_key: Vec<u8>,
    /// The shared join-attribute value (binary joins; for N-ary results
    /// this is the value on the first join edge).
    pub join_value: Vec<u8>,
    /// Left tuple's individual score.
    pub left_score: f64,
    /// Right tuple's individual score.
    pub right_score: f64,
    /// Interior sides of an N-ary join, as `(row_key, score)` in side
    /// order. Always empty for binary results.
    pub inner: Vec<(Vec<u8>, f64)>,
    /// Aggregate score — `f(left_score, right_score)` for binary joins,
    /// the full [`crate::score::ScoreFn::combine_many`] fold for N-ary.
    pub score: f64,
}

impl JoinTuple {
    /// Total order: score descending (IEEE total order, so even a NaN
    /// that slipped past ingest validation cannot break sort invariants),
    /// then `(left_key, inner keys, right_key)` ascending. Every
    /// algorithm in the crate returns results in this order, which makes
    /// cross-algorithm equality testable even under score ties. Binary
    /// tuples have empty `inner`, so their order is exactly the
    /// pre-N-ary `(left_key, right_key)` one.
    pub fn rank_cmp(&self, other: &JoinTuple) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.left_key.cmp(&other.left_key))
            .then_with(|| {
                let a = self.inner.iter().map(|(k, _)| k);
                let b = other.inner.iter().map(|(k, _)| k);
                a.cmp(b)
            })
            .then_with(|| self.right_key.cmp(&other.right_key))
    }
}

/// Wrapper giving `JoinTuple` the total order of [`JoinTuple::rank_cmp`].
#[derive(Clone, Debug, PartialEq)]
struct Ranked(JoinTuple);

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.rank_cmp(&other.0)
    }
}

/// A bounded, deduplicating top-k accumulator — the paper's
/// `SortedList results; results.trim(k)` idiom (Algorithm 2).
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    set: BTreeSet<Ranked>,
}

impl TopK {
    /// An empty accumulator retaining `k` best tuples. `k = 0` is valid
    /// and retains nothing (every offer is discarded) — the degenerate
    /// query contract of [`crate::query::RankJoinQuery::with_k`].
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            set: BTreeSet::new(),
        }
    }

    /// Offers a tuple; keeps it only if it ranks in the current top-k.
    /// Duplicate `(left_key, right_key)` pairs (same scores) are kept once.
    pub fn offer(&mut self, t: JoinTuple) {
        self.set.insert(Ranked(t));
        while self.set.len() > self.k {
            self.set.pop_last();
        }
    }

    /// Number of retained tuples (≤ k).
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The k-th (worst retained) score, or `None` when fewer than k tuples
    /// are held. This is the score the HRJN/BFHM termination tests compare
    /// thresholds against.
    pub fn kth_score(&self) -> Option<f64> {
        if self.set.len() < self.k {
            None
        } else {
            self.set.last().map(|r| r.0.score)
        }
    }

    /// Best retained score.
    pub fn best_score(&self) -> Option<f64> {
        self.set.first().map(|r| r.0.score)
    }

    /// Consumes into a rank-ordered vector.
    pub fn into_sorted_vec(self) -> Vec<JoinTuple> {
        self.set.into_iter().map(|r| r.0).collect()
    }

    /// Rank-ordered iteration without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &JoinTuple> {
        self.set.iter().map(|r| &r.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(l: &[u8], r: &[u8], score: f64) -> JoinTuple {
        JoinTuple {
            left_key: l.to_vec(),
            right_key: r.to_vec(),
            join_value: b"j".to_vec(),
            left_score: score / 2.0,
            right_score: score / 2.0,
            inner: Vec::new(),
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut top = TopK::new(3);
        for (i, s) in [0.1, 0.9, 0.5, 0.7, 0.3].iter().enumerate() {
            top.offer(t(&[i as u8], b"r", *s));
        }
        let v = top.into_sorted_vec();
        let scores: Vec<f64> = v.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn kth_score_only_when_full() {
        let mut top = TopK::new(2);
        top.offer(t(b"a", b"r", 0.9));
        assert_eq!(top.kth_score(), None);
        top.offer(t(b"b", b"r", 0.4));
        assert_eq!(top.kth_score(), Some(0.4));
        top.offer(t(b"c", b"r", 0.6));
        assert_eq!(top.kth_score(), Some(0.6));
        assert_eq!(top.best_score(), Some(0.9));
    }

    #[test]
    fn ties_break_deterministically_by_key() {
        let mut top = TopK::new(2);
        top.offer(t(b"c", b"x", 0.5));
        top.offer(t(b"a", b"x", 0.5));
        top.offer(t(b"b", b"x", 0.5));
        let v = top.into_sorted_vec();
        assert_eq!(v[0].left_key, b"a".to_vec());
        assert_eq!(v[1].left_key, b"b".to_vec());
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut top = TopK::new(0);
        top.offer(t(b"a", b"r", 0.9));
        assert!(top.is_empty());
        assert_eq!(top.kth_score(), None);
        assert!(top.into_sorted_vec().is_empty());
    }

    #[test]
    fn duplicate_offers_collapse() {
        let mut top = TopK::new(5);
        top.offer(t(b"a", b"r", 0.5));
        top.offer(t(b"a", b"r", 0.5));
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn rank_cmp_is_total_enough() {
        let a = t(b"a", b"r", 0.5);
        let b = t(b"b", b"r", 0.5);
        assert_eq!(a.rank_cmp(&b), Ordering::Less);
        assert_eq!(b.rank_cmp(&a), Ordering::Greater);
        assert_eq!(a.rank_cmp(&a), Ordering::Equal);
        let hi = t(b"z", b"z", 0.9);
        assert_eq!(hi.rank_cmp(&a), Ordering::Less, "higher score ranks first");
    }
}
