//! The centralized HRJN operator (Ilyas, Aref & Elmagarmid, VLDB 2003).
//!
//! HRJN consumes two inputs sorted by descending score, joining each newly
//! retrieved tuple against everything seen so far. It keeps per-input
//! minimum (`s̄_i`, the score of the last pulled tuple) and maximum
//! (`ŝ_i`, the first pulled) scores, and stops when the k-th buffered
//! result is at least the **threshold**
//!
//! ```text
//! S = max{ f(s̄_1, ŝ_2), f(ŝ_1, s̄_2) }
//! ```
//!
//! — the best score any future join tuple could achieve (§4.2.1). The ISL
//! algorithm (§4.2) is this operator driven by batched scans over the
//! score-ordered ISL index; this module keeps the core logic independent
//! so it can be tested (and property-tested) in isolation.

use rj_sketch::FlatMultiMap;

use crate::result::{JoinTuple, TopK};
use crate::score::ScoreFn;

/// One input tuple: `(base key, join value, score)`.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedTuple {
    /// Base-table row key.
    pub key: Vec<u8>,
    /// Join-attribute value.
    pub join_value: Vec<u8>,
    /// Individual score.
    pub score: f64,
}

/// Which input a tuple came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The left relation.
    Left,
    /// The right relation.
    Right,
}

/// Per-side seen-tuple store in flat, cache-friendly layout.
///
/// The old representation — `HashMap<Vec<u8>, Vec<(Vec<u8>, f64)>>` — paid
/// a heap allocation per join value plus one per tuple group, and the
/// descent loop chased those pointers on every probe. Here join values are
/// interned into a [`FlatMultiMap`] whose groups hold dense tuple ids, and
/// the tuples themselves are **columnar**: base keys back to back in one
/// byte arena, scores in one contiguous `f64` column (which is also what
/// the observed-descent histogram scans).
#[derive(Clone, Default)]
pub(crate) struct SeenSide {
    /// Join value → group of tuple ids.
    index: FlatMultiMap<u32>,
    /// Tuple base keys, interned back to back.
    key_arena: Vec<u8>,
    /// Per-tuple `(offset, len)` span into `key_arena`.
    key_spans: Vec<(u32, u32)>,
    /// Per-tuple scores, one flat column.
    scores: Vec<f64>,
}

impl SeenSide {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one `(base key, score)` tuple under `join`.
    pub(crate) fn insert(&mut self, join: &[u8], key: &[u8], score: f64) {
        // Checked narrowing: a store past 2^32 tuples or 4 GiB of key
        // bytes must panic, not silently alias spans.
        let id = u32::try_from(self.scores.len()).expect("SeenSide tuple count overflows u32");
        self.key_spans.push((
            u32::try_from(self.key_arena.len()).expect("SeenSide key arena overflows u32"),
            u32::try_from(key.len()).expect("SeenSide key length overflows u32"),
        ));
        self.key_arena.extend_from_slice(key);
        self.scores.push(score);
        self.index.push(join, id);
    }

    /// All `(base key, score)` tuples seen under `join`, insertion order.
    pub(crate) fn matches<'a>(&'a self, join: &[u8]) -> impl Iterator<Item = (&'a [u8], f64)> + 'a {
        self.index.get(join).map(move |&id| {
            let (off, len) = self.key_spans[id as usize];
            (
                &self.key_arena[off as usize..(off + len) as usize],
                self.scores[id as usize],
            )
        })
    }

    /// Number of tuples recorded.
    pub(crate) fn len(&self) -> usize {
        self.scores.len()
    }

    /// The contiguous score column (for whole-side sweeps).
    pub(crate) fn scores(&self) -> &[f64] {
        &self.scores
    }
}

/// Incremental HRJN state machine. Feed tuples in descending score order
/// per side (any interleaving of sides) and poll [`HrjnState::is_done`].
pub struct HrjnState {
    k: usize,
    score_fn: ScoreFn,
    results: TopK,
    seen: [SeenSide; 2],
    /// Tuples pushed per side (kept separately so per-batch observers
    /// read it in O(1) instead of walking the seen-maps).
    consumed: [usize; 2],
    /// (max seen, min seen) per side; `None` until the first tuple.
    bounds: [Option<(f64, f64)>; 2],
    exhausted: [bool; 2],
}

impl HrjnState {
    /// Fresh state for a top-k join under `score_fn`.
    pub fn new(k: usize, score_fn: ScoreFn) -> Self {
        HrjnState {
            k,
            score_fn,
            results: TopK::new(k),
            seen: [SeenSide::new(), SeenSide::new()],
            consumed: [0, 0],
            bounds: [None, None],
            exhausted: [false, false],
        }
    }

    fn side_index(side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// Feeds one tuple from `side`. Panics in debug builds if scores go up
    /// — inputs must be score-descending.
    pub fn push(&mut self, side: Side, tuple: RankedTuple) {
        let i = Self::side_index(side);
        debug_assert!(
            self.bounds[i].is_none_or(|(_, min)| tuple.score <= min + 1e-12),
            "input not score-descending"
        );
        self.bounds[i] = Some(match self.bounds[i] {
            None => (tuple.score, tuple.score),
            Some((max, min)) => (max, min.min(tuple.score)),
        });

        // Join against the other side's seen tuples (columnar probe).
        for (other_key, other_score) in self.seen[1 - i].matches(&tuple.join_value) {
            let (l, r) = if i == 0 {
                (
                    (tuple.key.as_slice(), tuple.score),
                    (other_key, other_score),
                )
            } else {
                (
                    (other_key, other_score),
                    (tuple.key.as_slice(), tuple.score),
                )
            };
            self.results.offer(JoinTuple {
                left_key: l.0.to_vec(),
                right_key: r.0.to_vec(),
                join_value: tuple.join_value.clone(),
                left_score: l.1,
                right_score: r.1,
                inner: Vec::new(),
                score: self.score_fn.combine(l.1, r.1),
            });
        }
        self.seen[i].insert(&tuple.join_value, &tuple.key, tuple.score);
        self.consumed[i] += 1;
    }

    /// Marks a side as fully consumed.
    pub fn exhaust(&mut self, side: Side) {
        self.exhausted[Self::side_index(side)] = true;
    }

    /// The HRJN threshold: the maximum attainable score of any join tuple
    /// not yet produced. `None` while no bound exists yet (nothing pulled
    /// from some non-exhausted side).
    pub fn threshold(&self) -> Option<f64> {
        // A future join tuple needs at least one *unseen* tuple. Unseen
        // tuples on side i score at most s̄_i; the partner is bounded by
        // ŝ_other. Exhausted sides produce no unseen tuples.
        let mut t: Option<f64> = None;
        for i in 0..2 {
            if self.exhausted[i] {
                continue;
            }
            let Some((_, my_min)) = self.bounds[i] else {
                // Nothing pulled from an active side: unbounded.
                return None;
            };
            // Partner bound: the other side's max seen. If the other side
            // has produced nothing: an exhausted empty side can never
            // partner (skip); an active one leaves the bound open.
            let other_max = match self.bounds[1 - i] {
                Some((max, _)) => max,
                None if self.exhausted[1 - i] => continue,
                None => return None,
            };
            let bound = self.score_fn.combine_sided(i, my_min, other_max);
            t = Some(t.map_or(bound, |x: f64| x.max(bound)));
        }
        t.or(Some(f64::NEG_INFINITY))
    }

    /// Termination test: k results buffered and the k-th ≥ threshold.
    pub fn is_done(&self) -> bool {
        match (self.results.kth_score(), self.threshold()) {
            (Some(kth), Some(t)) => kth >= t,
            // Both sides exhausted → threshold = -inf → done even if fewer
            // than k results exist.
            (None, Some(t)) => t == f64::NEG_INFINITY,
            _ => false,
        }
    }

    /// Current result count.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Total tuples consumed across both sides.
    pub fn tuples_consumed(&self) -> usize {
        self.consumed.iter().sum()
    }

    /// Finishes, returning the rank-ordered results.
    pub fn into_results(self) -> Vec<JoinTuple> {
        self.results.into_sorted_vec()
    }

    /// Requested k.
    pub fn k(&self) -> usize {
        self.k
    }

    // ------------------------------------------------------------------
    // Threshold-state handoff — what an adaptive driver
    // ([`crate::adaptive`]) reads out of a part-way HRJN execution when it
    // aborts ISL and switches algorithms mid-query. Everything here is
    // derived from tuples already consumed; no handoff call touches the
    // store.
    // ------------------------------------------------------------------

    /// The k-th buffered result's score — a valid *lower bound* on the
    /// final k-th score (buffered results are genuine join tuples), or
    /// `None` while fewer than k are buffered.
    pub fn kth_score(&self) -> Option<f64> {
        self.results.kth_score()
    }

    /// Tuples consumed from one side so far (O(1) — observers call this
    /// after every batch).
    pub fn consumed(&self, side: Side) -> usize {
        self.consumed[Self::side_index(side)]
    }

    /// `(max seen, min seen)` scores of one side — the `ŝ_i`/`s̄_i` pair
    /// the HRJN threshold is built from. `None` before the first pull.
    /// The max is the side's *true* maximum (inputs are score-descending);
    /// the min is how deep the descent has reached.
    pub fn side_bounds(&self, side: Side) -> Option<(f64, f64)> {
        self.bounds[Self::side_index(side)]
    }

    /// Equi-width histogram (over `[0,1]`, `buckets` cells, out-of-range
    /// scores clamped to the edge cells) of the scores consumed from one
    /// side — the *observed* descent an adaptive driver compares against
    /// the planner's histogram-predicted descent, in the same bucket
    /// geometry as [`crate::planner::TableStats`].
    pub fn observed_histogram(&self, side: Side, buckets: usize) -> Vec<u64> {
        let buckets = buckets.max(1);
        let mut hist = vec![0u64; buckets];
        // One linear sweep over the side's contiguous score column.
        for score in self.seen[Self::side_index(side)].scores() {
            let b = ((score.max(0.0) * buckets as f64) as usize).min(buckets - 1);
            hist[b] += 1;
        }
        hist
    }

    /// The genuine join tuples buffered so far, rank-ordered — safe to
    /// seed another algorithm's top-k accumulator with (every one is a
    /// real join result of tuples already paid for).
    pub fn current_results(&self) -> Vec<JoinTuple> {
        self.results.iter().cloned().collect()
    }
}

impl ScoreFn {
    /// `combine` with the "my side" argument placed correctly.
    fn combine_sided(&self, my_index: usize, mine: f64, other: f64) -> f64 {
        if my_index == 0 {
            self.combine(mine, other)
        } else {
            self.combine(other, mine)
        }
    }
}

/// Runs HRJN to completion over two in-memory score-descending lists,
/// alternating pulls (the reference driver used by tests and by the
/// examples).
pub fn run_hrjn(
    k: usize,
    score_fn: ScoreFn,
    left: &[RankedTuple],
    right: &[RankedTuple],
) -> Vec<JoinTuple> {
    let mut state = HrjnState::new(k, score_fn);
    let mut li = 0usize;
    let mut ri = 0usize;
    let mut turn = Side::Left;
    loop {
        if state.is_done() {
            break;
        }
        let (idx, tuples, side) = match turn {
            Side::Left if li < left.len() => (&mut li, left, Side::Left),
            Side::Left => (&mut ri, right, Side::Right),
            Side::Right if ri < right.len() => (&mut ri, right, Side::Right),
            Side::Right => (&mut li, left, Side::Left),
        };
        if *idx >= tuples.len() {
            // Both exhausted.
            state.exhaust(Side::Left);
            state.exhaust(Side::Right);
            break;
        }
        state.push(side, tuples[*idx].clone());
        *idx += 1;
        if li == left.len() {
            state.exhaust(Side::Left);
        }
        if ri == right.len() {
            state.exhaust(Side::Right);
        }
        turn = match turn {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
    }
    state.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: &[u8], join: &[u8], score: f64) -> RankedTuple {
        RankedTuple {
            key: key.to_vec(),
            join_value: join.to_vec(),
            score,
        }
    }

    /// The running example of Fig. 1, score-sorted per relation.
    fn running_example() -> (Vec<RankedTuple>, Vec<RankedTuple>) {
        let mut r1 = vec![
            t(b"r1_1", b"d", 0.82),
            t(b"r1_2", b"c", 0.93),
            t(b"r1_3", b"c", 0.67),
            t(b"r1_4", b"d", 0.82),
            t(b"r1_5", b"a", 0.73),
            t(b"r1_6", b"c", 0.79),
            t(b"r1_7", b"b", 0.82),
            t(b"r1_8", b"b", 0.70),
            t(b"r1_9", b"d", 0.68),
            t(b"r1_10", b"a", 1.00),
            t(b"r1_11", b"b", 0.64),
        ];
        let mut r2 = vec![
            t(b"r2_1", b"a", 0.51),
            t(b"r2_2", b"b", 0.91),
            t(b"r2_3", b"c", 0.64),
            t(b"r2_4", b"d", 0.53),
            t(b"r2_5", b"d", 0.41),
            t(b"r2_6", b"d", 0.50),
            t(b"r2_7", b"a", 0.35),
            t(b"r2_8", b"a", 0.38),
            t(b"r2_9", b"a", 0.37),
            t(b"r2_10", b"c", 0.31),
            t(b"r2_11", b"b", 0.92),
        ];
        r1.sort_by(|a, b| b.score.total_cmp(&a.score));
        r2.sort_by(|a, b| b.score.total_cmp(&a.score));
        (r1, r2)
    }

    /// Brute-force top-k over the same inputs.
    fn brute_force(
        k: usize,
        f: ScoreFn,
        left: &[RankedTuple],
        right: &[RankedTuple],
    ) -> Vec<JoinTuple> {
        let mut top = crate::result::TopK::new(k);
        for l in left {
            for r in right {
                if l.join_value == r.join_value {
                    top.offer(JoinTuple {
                        left_key: l.key.clone(),
                        right_key: r.key.clone(),
                        join_value: l.join_value.clone(),
                        left_score: l.score,
                        right_score: r.score,
                        inner: Vec::new(),
                        score: f.combine(l.score, r.score),
                    });
                }
            }
        }
        top.into_sorted_vec()
    }

    #[test]
    fn running_example_top3_sum() {
        let (r1, r2) = running_example();
        let got = run_hrjn(3, ScoreFn::Sum, &r1, &r2);
        // All three best results come from join value b:
        // 0.82+0.92=1.74, 0.82+0.91=1.73, 0.70+0.92=1.62.
        let scores: Vec<f64> = got.iter().map(|x| x.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
    }

    /// Top-k is ambiguous at the k-th score boundary when several tuples
    /// tie there; HRJN may legitimately return any tie-sibling. This
    /// comparator requires: identical score sequences, identical tuples
    /// strictly above the boundary, and every boundary tuple of `got` to
    /// be a genuine boundary tuple of the full result.
    fn assert_rank_equivalent(got: &[JoinTuple], all_sorted: &[JoinTuple], k: usize) {
        let want: Vec<&JoinTuple> = all_sorted.iter().take(k).collect();
        assert_eq!(got.len(), want.len());
        let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
        let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
        assert_eq!(got_scores, want_scores, "score sequences differ");
        let boundary = want.last().map(|t| t.score);
        for (g, w) in got.iter().zip(&want) {
            if Some(g.score) != boundary {
                assert_eq!(&g, w, "above-boundary tuples must match exactly");
            } else {
                // A boundary tuple must appear somewhere in the full
                // rank-ordered join result with that exact score.
                assert!(
                    all_sorted.iter().any(|t| t.score == g.score
                        && t.left_key == g.left_key
                        && t.right_key == g.right_key),
                    "boundary tuple not a real join result: {g:?}"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_example_all_k() {
        let (r1, r2) = running_example();
        for f in [ScoreFn::Sum, ScoreFn::Product, ScoreFn::Min, ScoreFn::Max] {
            let all = brute_force(usize::MAX / 2, f, &r1, &r2);
            for k in 1..=20 {
                let got = run_hrjn(k, f, &r1, &r2);
                assert_rank_equivalent(&got, &all, k.min(all.len()));
            }
        }
    }

    #[test]
    fn early_termination_consumes_less_than_everything() {
        // Two relations where the top result is obvious early.
        let left: Vec<RankedTuple> = (0..100)
            .map(|i| t(format!("l{i}").as_bytes(), b"x", 1.0 - i as f64 / 100.0))
            .collect();
        let right: Vec<RankedTuple> = (0..100)
            .map(|i| t(format!("r{i}").as_bytes(), b"x", 1.0 - i as f64 / 100.0))
            .collect();
        let mut state = HrjnState::new(1, ScoreFn::Sum);
        let mut consumed = 0;
        let mut li = 0;
        let mut ri = 0;
        while !state.is_done() {
            if li <= ri {
                state.push(Side::Left, left[li].clone());
                li += 1;
            } else {
                state.push(Side::Right, right[ri].clone());
                ri += 1;
            }
            consumed += 1;
        }
        assert!(consumed <= 4, "top-1 should need ≈2 pulls, used {consumed}");
    }

    #[test]
    fn empty_inputs_terminate() {
        let got = run_hrjn(5, ScoreFn::Sum, &[], &[]);
        assert!(got.is_empty());
        let one = vec![t(b"a", b"x", 0.5)];
        let got = run_hrjn(5, ScoreFn::Sum, &one, &[]);
        assert!(got.is_empty());
    }

    #[test]
    fn fewer_than_k_results() {
        let left = vec![t(b"l1", b"x", 0.9)];
        let right = vec![t(b"r1", b"x", 0.8), t(b"r2", b"y", 0.7)];
        let got = run_hrjn(10, ScoreFn::Sum, &left, &right);
        assert_eq!(got.len(), 1);
        assert!((got[0].score - 1.7).abs() < 1e-12);
    }

    #[test]
    fn threshold_is_none_before_both_sides_seen() {
        let mut s = HrjnState::new(1, ScoreFn::Sum);
        assert_eq!(s.threshold(), None);
        s.push(Side::Left, t(b"l", b"x", 0.9));
        assert_eq!(s.threshold(), None, "right side untouched → no bound");
        s.push(Side::Right, t(b"r", b"y", 0.8));
        assert!(s.threshold().is_some());
    }

    #[test]
    fn duplicate_join_values_multiply() {
        let left = vec![t(b"l1", b"x", 0.9), t(b"l2", b"x", 0.8)];
        let right = vec![t(b"r1", b"x", 0.7), t(b"r2", b"x", 0.6)];
        let got = run_hrjn(10, ScoreFn::Sum, &left, &right);
        assert_eq!(got.len(), 4, "2×2 cartesian on shared join value");
    }
}
