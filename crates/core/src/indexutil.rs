//! Shared helpers for index builders: split-point sampling and build
//! statistics.

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::{Counters, MapReduceEngine};

use crate::error::Result;
use crate::query::JoinSide;

/// Rows each sampling mapper reads from the head of its region.
const SAMPLE_ROWS_PER_REGION: usize = 256;

/// Statistics common to all index builds.
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Modelled seconds spent building (sum of the builder's MR jobs).
    pub build_seconds: f64,
    /// Index size on disk after the build.
    pub index_bytes: u64,
    /// Per-job counters, in execution order.
    pub jobs: Vec<Counters>,
    /// Peak self-reported reducer state during the build (BFHM's filter
    /// memory — the §7.2 memory-footprint metric).
    pub max_reducer_state_bytes: u64,
    /// Largest shuffle volume any build reducer received (the footprint
    /// of stateless reducers like DRJN's cell summer).
    pub max_reducer_input_bytes: u64,
}

impl BuildStats {
    /// Folds one job's counters in.
    pub fn absorb(&mut self, c: Counters) {
        self.build_seconds += c.job_seconds;
        self.max_reducer_state_bytes = self.max_reducer_state_bytes.max(c.max_reducer_state_bytes);
        self.max_reducer_input_bytes = self.max_reducer_input_bytes.max(c.max_reducer_input_bytes);
        self.jobs.push(c);
    }
}

struct SampleMapper {
    side: JoinSide,
    taken: usize,
    limit: usize,
}

impl Mapper for SampleMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        if let Some(row) = input.row() {
            if let Some((join_value, _score)) = self.side.extract(row) {
                out.emit(join_value, Vec::new());
                self.taken += 1;
            }
        }
    }

    fn wants_more(&self) -> bool {
        self.taken < self.limit
    }
}

/// Samples join values from the head of each base-table region and
/// returns `pieces - 1` quantile split keys for pre-splitting a
/// join-value-keyed index table. Costs are charged (it is a real map-only
/// job with bounded scans).
pub fn sample_join_splits(
    engine: &MapReduceEngine,
    side: &JoinSide,
    pieces: usize,
) -> Result<Vec<Vec<u8>>> {
    if pieces <= 1 {
        return Ok(Vec::new());
    }
    let families = [side.join_col.0.as_str(), side.score_col.0.as_str()];
    let spec = JobSpec::new(
        "index-sample",
        JobInput::Tables(vec![TableInput::projected(&side.table, &families)]),
        0,
    )
    .sink(OutputSink::Collect)
    .scan_caching(SAMPLE_ROWS_PER_REGION);
    let side_cl = side.clone();
    let result = engine.run(
        &spec,
        &move || {
            Box::new(SampleMapper {
                side: side_cl.clone(),
                taken: 0,
                limit: SAMPLE_ROWS_PER_REGION,
            })
        },
        None,
        None,
    )?;
    let mut sample: Vec<Vec<u8>> = result.collected.into_iter().map(|(k, _)| k).collect();
    sample.sort();
    sample.dedup();
    let mut splits = Vec::new();
    if !sample.is_empty() {
        for i in 1..pieces {
            let idx = (i * sample.len() / pieces).min(sample.len() - 1);
            splits.push(sample[idx].clone());
        }
        splits.dedup();
    }
    Ok(splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rj_store::cell::Mutation;
    use rj_store::cluster::Cluster;
    use rj_store::costmodel::CostModel;

    #[test]
    fn sampling_produces_ordered_splits() {
        let c = Cluster::new(2, CostModel::test());
        c.create_table_with_splits("t", &["d"], &[500u64.to_be_bytes().to_vec()])
            .unwrap();
        let client = c.client();
        for i in 0..1000u64 {
            client
                .mutate_row(
                    "t",
                    &i.to_be_bytes(),
                    vec![
                        Mutation::put("d", b"jk", i.to_be_bytes().to_vec()),
                        Mutation::put("d", b"score", 0.5f64.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        let engine = MapReduceEngine::new(c);
        let side = JoinSide::new("t", "L", ("d", b"jk"), ("d", b"score"));
        let splits = sample_join_splits(&engine, &side, 4).unwrap();
        assert!(!splits.is_empty() && splits.len() <= 3);
        assert!(splits.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_piece_needs_no_splits() {
        let c = Cluster::new(1, CostModel::test());
        c.create_table("t", &["d"]).unwrap();
        let engine = MapReduceEngine::new(c);
        let side = JoinSide::new("t", "L", ("d", b"jk"), ("d", b"score"));
        assert!(sample_join_splits(&engine, &side, 1).unwrap().is_empty());
    }

    #[test]
    fn build_stats_absorb_accumulates() {
        let mut s = BuildStats::default();
        let c1 = Counters {
            job_seconds: 2.0,
            max_reducer_state_bytes: 100,
            ..Default::default()
        };
        let c2 = Counters {
            job_seconds: 3.0,
            max_reducer_state_bytes: 50,
            ..Default::default()
        };
        s.absorb(c1);
        s.absorb(c2);
        assert_eq!(s.build_seconds, 5.0);
        assert_eq!(s.max_reducer_state_bytes, 100);
        assert_eq!(s.jobs.len(), 2);
    }
}
