//! Write-path interception keeping base tables and indices consistent
//! (paper §6).
//!
//! "Both insertions and deletions are intercepted at the caller level;
//! then, the mutation is augmented so as to perform both a base data and
//! an index insertion/deletion in one operation, using the original
//! mutation timestamp for both operations." Consistency is eventual —
//! timestamps discern fresh from stale entries, matching the store's
//! native semantics.
//!
//! [`MaintainedSide`] wraps one relation and fans every insert/delete out
//! to whichever indices are attached: ISL, IJLMR, and/or a BFHM
//! maintainer (whose blob handling lives in [`crate::bfhm::maintenance`]).

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::keys;

use crate::bfhm::maintenance::BfhmMaintainer;
use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::query::JoinSide;

/// Intercepted write path for one relation and its indices.
pub struct MaintainedSide {
    cluster: Cluster,
    side: JoinSide,
    isl_table: Option<String>,
    ijlmr_table: Option<String>,
    bfhm: Option<BfhmMaintainer>,
}

impl MaintainedSide {
    /// Wraps a relation with no indices attached yet.
    pub fn new(cluster: &Cluster, side: JoinSide) -> Self {
        MaintainedSide {
            cluster: cluster.clone(),
            side,
            isl_table: None,
            ijlmr_table: None,
            bfhm: None,
        }
    }

    /// Attaches an ISL index table.
    pub fn with_isl(mut self, table: &str) -> Self {
        self.isl_table = Some(table.to_owned());
        self
    }

    /// Attaches an IJLMR index table.
    pub fn with_ijlmr(mut self, table: &str) -> Self {
        self.ijlmr_table = Some(table.to_owned());
        self
    }

    /// Attaches a BFHM maintainer.
    pub fn with_bfhm(mut self, maintainer: BfhmMaintainer) -> Self {
        self.bfhm = Some(maintainer);
        self
    }

    /// The wrapped side descriptor.
    pub fn side(&self) -> &JoinSide {
        &self.side
    }

    /// Inserts a tuple into the base table and all attached indices,
    /// sharing one timestamp. `extra` mutations (filler columns etc.) ride
    /// along in the same atomic base-row operation. Returns the timestamp.
    ///
    /// Non-finite scores are rejected with
    /// [`RankJoinError::NonFiniteScore`] before anything is written: a
    /// NaN admitted here would panic much later, deep inside a score-list
    /// key encoding or a query-time sort.
    pub fn insert(
        &self,
        row_key: &[u8],
        join_value: &[u8],
        score: f64,
        extra: Vec<Mutation>,
    ) -> Result<u64> {
        if !score.is_finite() {
            return Err(RankJoinError::NonFiniteScore(score));
        }
        let ts = self.cluster.next_ts();
        let client = self.cluster.client();

        let mut base = vec![
            Mutation::put_at(
                &self.side.join_col.0,
                &self.side.join_col.1,
                join_value.to_vec(),
                ts,
            ),
            Mutation::put_at(
                &self.side.score_col.0,
                &self.side.score_col.1,
                score.to_be_bytes().to_vec(),
                ts,
            ),
        ];
        base.extend(extra.into_iter().map(|m| pin_ts(m, ts)));
        client.mutate_row(&self.side.table, row_key, base)?;

        if let Some(t) = &self.isl_table {
            client.mutate_row(
                t,
                &keys::encode_score_desc(score),
                vec![Mutation::put_at(
                    &self.side.label,
                    row_key,
                    codec::encode_value_score(join_value, score),
                    ts,
                )],
            )?;
        }
        if let Some(t) = &self.ijlmr_table {
            client.mutate_row(
                t,
                join_value,
                vec![Mutation::put_at(
                    &self.side.label,
                    row_key,
                    score.to_be_bytes().to_vec(),
                    ts,
                )],
            )?;
        }
        if let Some(b) = &self.bfhm {
            b.record_insert(row_key, join_value, score, ts)?;
        }
        Ok(ts)
    }

    /// Deletes a tuple from the base table and all attached indices. The
    /// base row is read first to learn the join value and score that
    /// locate the index entries. Returns the timestamp, or an error if
    /// the row does not exist.
    pub fn delete(&self, row_key: &[u8]) -> Result<u64> {
        let client = self.cluster.client();
        let row = client
            .get(&self.side.table, row_key)?
            .ok_or(RankJoinError::MissingRow)?;
        let (join_value, score) = self
            .side
            .extract(&row)
            .ok_or(RankJoinError::Internal("row lacks join/score columns"))?;
        let ts = self.cluster.next_ts();

        // Tombstone every base column.
        let muts: Vec<Mutation> = row
            .cells
            .iter()
            .map(|c| Mutation::delete_at(&c.family, &c.qualifier, ts))
            .collect();
        client.mutate_row(&self.side.table, row_key, muts)?;

        if let Some(t) = &self.isl_table {
            client.mutate_row(
                t,
                &keys::encode_score_desc(score),
                vec![Mutation::delete_at(&self.side.label, row_key, ts)],
            )?;
        }
        if let Some(t) = &self.ijlmr_table {
            client.mutate_row(
                t,
                &join_value,
                vec![Mutation::delete_at(&self.side.label, row_key, ts)],
            )?;
        }
        if let Some(b) = &self.bfhm {
            b.record_delete(row_key, &join_value, score, ts)?;
        }
        Ok(ts)
    }
}

/// Forces a mutation's timestamp to `ts`.
fn pin_ts(m: Mutation, ts: u64) -> Mutation {
    match m {
        Mutation::Put {
            family,
            qualifier,
            value,
            ..
        } => Mutation::Put {
            family,
            qualifier,
            value,
            timestamp: Some(ts),
        },
        Mutation::Delete {
            family, qualifier, ..
        } => Mutation::Delete {
            family,
            qualifier,
            timestamp: Some(ts),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use crate::{ijlmr, isl, oracle};
    use rj_mapreduce::MapReduceEngine;

    #[test]
    fn insert_updates_base_and_both_list_indices() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();

        let side = MaintainedSide::new(&c, q.right.clone())
            .with_isl("isl_idx")
            .with_ijlmr("ijlmr_idx");
        side.insert(b"r2_99", b"b", 0.99, vec![]).unwrap();

        // Both query paths see the new tuple (top score b: 0.82+0.99).
        let got_isl = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        let got_ijlmr = ijlmr::run(&engine, &q, "ijlmr_idx").unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        assert_eq!(got_isl.results, want);
        assert_eq!(got_ijlmr.results, want);
        assert!((want[0].score - 1.81).abs() < 1e-9);
    }

    #[test]
    fn delete_removes_from_indices() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();

        let side = MaintainedSide::new(&c, q.right.clone())
            .with_isl("isl_idx")
            .with_ijlmr("ijlmr_idx");
        // Remove r2_11 (b, 0.92): the old top-1 partner.
        side.delete(b"r2_11").unwrap();

        let want = oracle::topk(&c, &q).unwrap();
        assert!((want[0].score - 1.73).abs() < 1e-9, "0.82 + 0.91 now tops");
        let got_isl = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        let got_ijlmr = ijlmr::run(&engine, &q, "ijlmr_idx").unwrap();
        assert_eq!(got_isl.results, want);
        assert_eq!(got_ijlmr.results, want);
    }

    #[test]
    fn non_finite_scores_are_rejected_at_ingest() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        let side = MaintainedSide::new(&c, q.left.clone()).with_isl("isl_idx");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = side.insert(b"r1_bad", b"a", bad, vec![]).unwrap_err();
            assert!(
                matches!(err, RankJoinError::NonFiniteScore(_)),
                "{bad} must yield a typed error, got {err}"
            );
        }
        // Nothing landed: the base table has no such row.
        assert!(c.client().get("r1", b"r1_bad").unwrap().is_none());
    }

    #[test]
    fn delete_missing_row_errors() {
        let (c, q) = running_example_cluster();
        let side = MaintainedSide::new(&c, q.left.clone());
        assert!(side.delete(b"no_such_row").is_err());
    }

    #[test]
    fn insert_delete_roundtrip_is_clean() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        let side = MaintainedSide::new(&c, q.left.clone()).with_isl("isl_idx");
        let before = oracle::topk(&c, &q).unwrap();
        side.insert(b"r1_99", b"a", 0.95, vec![]).unwrap();
        side.delete(b"r1_99").unwrap();
        let after = oracle::topk(&c, &q).unwrap();
        assert_eq!(before, after);
        let got = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        assert_eq!(got.results, after);
    }
}
