//! Write-path interception keeping base tables and indices consistent
//! (paper §6).
//!
//! "Both insertions and deletions are intercepted at the caller level;
//! then, the mutation is augmented so as to perform both a base data and
//! an index insertion/deletion in one operation, using the original
//! mutation timestamp for both operations." Consistency is eventual —
//! timestamps discern fresh from stale entries, matching the store's
//! native semantics.
//!
//! [`MaintainedSide`] wraps one relation and fans every insert/delete out
//! to whichever indices are attached: ISL, IJLMR, and/or a BFHM
//! maintainer (whose blob handling lives in [`crate::bfhm::maintenance`]).
//! Registered [`StatsMaintainer`]s ride the same fan-out: each mutation's
//! statistics-relevant residue is emitted as a [`StatsDelta`], keeping the
//! planner's histograms fresh in place (see [`crate::statsmaint`]).

use std::sync::Arc;

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::keys;

use crate::bfhm::maintenance::BfhmMaintainer;
use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::query::JoinSide;
use crate::statsmaint::{join_fingerprint, DeltaOp, StatsDelta, StatsMaintainer};

/// Intercepted write path for one relation and its indices.
pub struct MaintainedSide {
    cluster: Cluster,
    side: JoinSide,
    isl_table: Option<String>,
    ijlmr_table: Option<String>,
    bfhm: Option<BfhmMaintainer>,
    stats: Vec<Arc<dyn StatsMaintainer>>,
}

impl MaintainedSide {
    /// Wraps a relation with no indices attached yet.
    pub fn new(cluster: &Cluster, side: JoinSide) -> Self {
        MaintainedSide {
            cluster: cluster.clone(),
            side,
            isl_table: None,
            ijlmr_table: None,
            bfhm: None,
            stats: Vec::new(),
        }
    }

    /// Attaches an ISL index table.
    pub fn with_isl(mut self, table: &str) -> Self {
        self.isl_table = Some(table.to_owned());
        self
    }

    /// Attaches an IJLMR index table.
    pub fn with_ijlmr(mut self, table: &str) -> Self {
        self.ijlmr_table = Some(table.to_owned());
        self
    }

    /// Attaches a BFHM maintainer.
    pub fn with_bfhm(mut self, maintainer: BfhmMaintainer) -> Self {
        self.bfhm = Some(maintainer);
        self
    }

    /// Registers a statistics maintainer (usually an executor's
    /// [`crate::statsmaint::SharedTableStats`] handle): every subsequent
    /// insert/delete emits its [`StatsDelta`] here after the base and
    /// index writes land.
    pub fn with_stats(mut self, maintainer: Arc<dyn StatsMaintainer>) -> Self {
        self.stats.push(maintainer);
        self
    }

    /// Fans one mutation's statistics residue out to every registered
    /// maintainer.
    fn emit_delta(&self, op: DeltaOp, row_key: &[u8], join_value: &[u8], score: f64) {
        if self.stats.is_empty() {
            return;
        }
        let delta = StatsDelta {
            table: self.side.table.clone(),
            join_col: self.side.join_col.clone(),
            score_col: self.side.score_col.clone(),
            op,
            join_fingerprint: join_fingerprint(join_value),
            score,
            entry_bytes: crate::planner::entry_bytes_of(join_value, row_key),
        };
        for m in &self.stats {
            m.apply_delta(&delta);
        }
    }

    /// The wrapped side descriptor.
    pub fn side(&self) -> &JoinSide {
        &self.side
    }

    /// Inserts a tuple into the base table and all attached indices,
    /// sharing one timestamp. `extra` mutations (filler columns etc.) ride
    /// along in the same atomic base-row operation. Returns the timestamp.
    ///
    /// Non-finite scores are rejected with
    /// [`RankJoinError::NonFiniteScore`] before anything is written: a
    /// NaN admitted here would panic much later, deep inside a score-list
    /// key encoding or a query-time sort.
    ///
    /// **Contract: `row_key` must be new.** Like the paper's §6 write
    /// interception, this is an *insert*, not an upsert — writing an
    /// existing key leaves the old score's index entries (and statistics
    /// contribution) in place alongside the new ones. The same applies to
    /// retries: the fan-out is not transactional, so if an index write
    /// fails mid-way the base row and statistics delta have already
    /// landed — recover by [`MaintainedSide::delete`]-ing the key (or
    /// rebuilding the failed index), not by re-inserting it.
    pub fn insert(
        &self,
        row_key: &[u8],
        join_value: &[u8],
        score: f64,
        extra: Vec<Mutation>,
    ) -> Result<u64> {
        if !score.is_finite() {
            return Err(RankJoinError::NonFiniteScore(score));
        }
        let ts = self.cluster.next_ts();
        let client = self.cluster.client();

        let mut base = vec![
            Mutation::put_at(
                &self.side.join_col.0,
                &self.side.join_col.1,
                join_value.to_vec(),
                ts,
            ),
            Mutation::put_at(
                &self.side.score_col.0,
                &self.side.score_col.1,
                score.to_be_bytes().to_vec(),
                ts,
            ),
        ];
        base.extend(extra.into_iter().map(|m| pin_ts(m, ts)));
        client.mutate_row(&self.side.table, row_key, base)?;

        // From here on the base row exists, so the statistics delta is
        // emitted even if an index write fails below: planner statistics
        // describe the *base tables* (what `collect_stats` scans), and
        // swallowing the delta on an index error would leave the
        // staleness counter blind to drift it exists to bound.
        let index_writes = (|| -> Result<()> {
            if let Some(t) = &self.isl_table {
                client.mutate_row(
                    t,
                    &keys::encode_score_desc(score),
                    vec![Mutation::put_at(
                        &self.side.label,
                        row_key,
                        codec::encode_value_score(join_value, score),
                        ts,
                    )],
                )?;
            }
            if let Some(t) = &self.ijlmr_table {
                client.mutate_row(
                    t,
                    join_value,
                    vec![Mutation::put_at(
                        &self.side.label,
                        row_key,
                        score.to_be_bytes().to_vec(),
                        ts,
                    )],
                )?;
            }
            if let Some(b) = &self.bfhm {
                b.record_insert(row_key, join_value, score, ts)?;
            }
            Ok(())
        })();
        self.emit_delta(DeltaOp::Insert, row_key, join_value, score);
        index_writes?;
        Ok(ts)
    }

    /// Deletes a tuple from the base table and all attached indices. The
    /// base row is read first to learn the join value and score that
    /// locate the index entries. Returns the timestamp, or an error if
    /// the row does not exist.
    ///
    /// Validation mirrors [`MaintainedSide::insert`]: every failure is a
    /// typed error, never a panic. A row already deleted (including by an
    /// earlier call with the same key — tombstones hide it from the read)
    /// yields [`RankJoinError::MissingRow`] *before* any index is
    /// touched, so double-deleting a key can never tombstone an index
    /// entry twice under a fresher timestamp. A stored score that is not
    /// finite (only writable by clients bypassing the maintained path)
    /// yields [`RankJoinError::NonFiniteScore`], the same rejection
    /// `insert` applies at ingest.
    pub fn delete(&self, row_key: &[u8]) -> Result<u64> {
        let client = self.cluster.client();
        let row = client
            .get(&self.side.table, row_key)?
            .ok_or(RankJoinError::MissingRow)?;
        let (join_value, score) = self.side.extract_checked(&row)?;
        let ts = self.cluster.next_ts();

        // Tombstone every base column.
        let muts: Vec<Mutation> = row
            .cells
            .iter()
            .map(|c| Mutation::delete_at(&c.family, &c.qualifier, ts))
            .collect();
        client.mutate_row(&self.side.table, row_key, muts)?;

        // As in `insert`: the base row is gone, so the delta is emitted
        // even if an index tombstone fails below.
        let index_writes = (|| -> Result<()> {
            if let Some(t) = &self.isl_table {
                client.mutate_row(
                    t,
                    &keys::encode_score_desc(score),
                    vec![Mutation::delete_at(&self.side.label, row_key, ts)],
                )?;
            }
            if let Some(t) = &self.ijlmr_table {
                client.mutate_row(
                    t,
                    &join_value,
                    vec![Mutation::delete_at(&self.side.label, row_key, ts)],
                )?;
            }
            if let Some(b) = &self.bfhm {
                b.record_delete(row_key, &join_value, score, ts)?;
            }
            Ok(())
        })();
        self.emit_delta(DeltaOp::Delete, row_key, &join_value, score);
        index_writes?;
        Ok(ts)
    }
}

/// Forces a mutation's timestamp to `ts`.
fn pin_ts(m: Mutation, ts: u64) -> Mutation {
    match m {
        Mutation::Put {
            family,
            qualifier,
            value,
            ..
        } => Mutation::Put {
            family,
            qualifier,
            value,
            timestamp: Some(ts),
        },
        Mutation::Delete {
            family, qualifier, ..
        } => Mutation::Delete {
            family,
            qualifier,
            timestamp: Some(ts),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;
    use crate::{ijlmr, isl, oracle};
    use rj_mapreduce::MapReduceEngine;

    #[test]
    fn insert_updates_base_and_both_list_indices() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();

        let side = MaintainedSide::new(&c, q.right.clone())
            .with_isl("isl_idx")
            .with_ijlmr("ijlmr_idx");
        side.insert(b"r2_99", b"b", 0.99, vec![]).unwrap();

        // Both query paths see the new tuple (top score b: 0.82+0.99).
        let got_isl = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        let got_ijlmr = ijlmr::run(&engine, &q, "ijlmr_idx").unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        assert_eq!(got_isl.results, want);
        assert_eq!(got_ijlmr.results, want);
        assert!((want[0].score - 1.81).abs() < 1e-9);
    }

    #[test]
    fn delete_removes_from_indices() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();

        let side = MaintainedSide::new(&c, q.right.clone())
            .with_isl("isl_idx")
            .with_ijlmr("ijlmr_idx");
        // Remove r2_11 (b, 0.92): the old top-1 partner.
        side.delete(b"r2_11").unwrap();

        let want = oracle::topk(&c, &q).unwrap();
        assert!((want[0].score - 1.73).abs() < 1e-9, "0.82 + 0.91 now tops");
        let got_isl = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        let got_ijlmr = ijlmr::run(&engine, &q, "ijlmr_idx").unwrap();
        assert_eq!(got_isl.results, want);
        assert_eq!(got_ijlmr.results, want);
    }

    #[test]
    fn non_finite_scores_are_rejected_at_ingest() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        let side = MaintainedSide::new(&c, q.left.clone()).with_isl("isl_idx");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = side.insert(b"r1_bad", b"a", bad, vec![]).unwrap_err();
            assert!(
                matches!(err, RankJoinError::NonFiniteScore(_)),
                "{bad} must yield a typed error, got {err}"
            );
        }
        // Nothing landed: the base table has no such row.
        assert!(c.client().get("r1", b"r1_bad").unwrap().is_none());
    }

    #[test]
    fn delete_missing_row_errors() {
        let (c, q) = running_example_cluster();
        let side = MaintainedSide::new(&c, q.left.clone());
        assert!(matches!(
            side.delete(b"no_such_row").unwrap_err(),
            RankJoinError::MissingRow
        ));
    }

    #[test]
    fn double_delete_is_typed_and_leaves_indices_consistent() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        ijlmr::build(&engine, &q, "ijlmr_idx").unwrap();
        let side = MaintainedSide::new(&c, q.right.clone())
            .with_isl("isl_idx")
            .with_ijlmr("ijlmr_idx");

        side.delete(b"r2_11").unwrap();
        let idx_kvs = c.table("isl_idx").unwrap().kv_count();
        // Second delete of the same key: typed MissingRow, *before* any
        // index is touched — no second tombstone under a fresher
        // timestamp, no index drift.
        assert!(matches!(
            side.delete(b"r2_11").unwrap_err(),
            RankJoinError::MissingRow
        ));
        assert_eq!(
            c.table("isl_idx").unwrap().kv_count(),
            idx_kvs,
            "failed delete must not write to indices"
        );
        let want = oracle::topk(&c, &q).unwrap();
        let got_isl = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        let got_ijlmr = ijlmr::run(&engine, &q, "ijlmr_idx").unwrap();
        assert_eq!(got_isl.results, want);
        assert_eq!(got_ijlmr.results, want);

        // Delete → insert → delete of the same key also stays clean.
        side.insert(b"r2_11", b"b", 0.92, vec![]).unwrap();
        side.delete(b"r2_11").unwrap();
        let want = oracle::topk(&c, &q).unwrap();
        let got = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        assert_eq!(got.results, want);
    }

    #[test]
    fn delete_validates_stored_rows_with_typed_errors() {
        let (c, q) = running_example_cluster();
        let side = MaintainedSide::new(&c, q.left.clone());
        let client = c.client();
        // A non-finite score planted by a writer bypassing the maintained
        // path: delete must reject it exactly like insert would, not
        // panic inside a key encoding.
        client
            .mutate_row(
                "r1",
                b"r1_nan",
                vec![
                    Mutation::put("d", b"jk", b"a".to_vec()),
                    Mutation::put("d", b"score", f64::NAN.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
        assert!(matches!(
            side.delete(b"r1_nan").unwrap_err(),
            RankJoinError::NonFiniteScore(_)
        ));
        // A row missing its score column: typed internal error.
        client
            .mutate_row(
                "r1",
                b"r1_noscore",
                vec![Mutation::put("d", b"jk", b"a".to_vec())],
            )
            .unwrap();
        assert!(matches!(
            side.delete(b"r1_noscore").unwrap_err(),
            RankJoinError::Internal(_)
        ));
        // A truncated score value: typed internal error, no slice panic.
        client
            .mutate_row(
                "r1",
                b"r1_short",
                vec![
                    Mutation::put("d", b"jk", b"a".to_vec()),
                    Mutation::put("d", b"score", vec![1, 2, 3]),
                ],
            )
            .unwrap();
        assert!(matches!(
            side.delete(b"r1_short").unwrap_err(),
            RankJoinError::Internal(_)
        ));
    }

    #[test]
    fn index_write_failure_still_emits_the_stats_delta() {
        use std::sync::Mutex;
        struct Recorder(Mutex<Vec<StatsDelta>>);
        impl StatsMaintainer for Recorder {
            fn apply_delta(&self, delta: &StatsDelta) {
                self.0.lock().unwrap().push(delta.clone());
            }
        }
        let (c, q) = running_example_cluster();
        let recorder = Arc::new(Recorder(Mutex::new(Vec::new())));
        // ISL table never built: the index write fails after the base
        // write lands. Statistics describe base tables, so the delta
        // must be emitted anyway — otherwise the staleness counter goes
        // blind to drift it exists to bound.
        let side = MaintainedSide::new(&c, q.left.clone())
            .with_isl("isl_idx_missing")
            .with_stats(recorder.clone());
        assert!(side.insert(b"r1_99", b"a", 0.5, vec![]).is_err());
        assert!(c.client().get("r1", b"r1_99").unwrap().is_some());
        let seen = recorder.0.lock().unwrap();
        assert_eq!(seen.len(), 1, "base write landed, delta must follow");
        assert_eq!(seen[0].op, DeltaOp::Insert);
        assert_eq!(seen[0].table, "r1");
    }

    #[test]
    fn insert_delete_roundtrip_is_clean() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        isl::build(&engine, &q, "isl_idx").unwrap();
        let side = MaintainedSide::new(&c, q.left.clone()).with_isl("isl_idx");
        let before = oracle::topk(&c, &q).unwrap();
        side.insert(b"r1_99", b"a", 0.95, vec![]).unwrap();
        side.delete(b"r1_99").unwrap();
        let after = oracle::topk(&c, &q).unwrap();
        assert_eq!(before, after);
        let got = isl::run(&c, &q, "isl_idx", isl::IslConfig::default()).unwrap();
        assert_eq!(got.results, after);
    }
}
