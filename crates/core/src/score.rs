//! Monotone aggregate score functions.
//!
//! Rank joins score result tuples with a **monotonic** aggregate of the
//! individual tuple scores (paper §1.1): if every input score is ≥ another
//! set of input scores, the aggregate is ≥ too. Monotonicity is what makes
//! HRJN-style thresholds (§4.2.1), BFHM bucket bounds (Algorithm 7 lines
//! 9–10), and DRJN score bounds sound — upper bounds on inputs give upper
//! bounds on outputs.
//!
//! The paper's evaluation queries use two of these: Q1 scores by *product*
//! (`P.RetailPrice * L.ExtendedPrice`) and Q2 by *sum*
//! (`O.TotalPrice + L.ExtendedPrice`).

/// A monotone, non-negative aggregate over two scores.
///
/// Written binary because the paper evaluates two-way joins (§3); the
/// [`ScoreFn::combine_many`] helper folds n-ary inputs for the multi-way
/// extension point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScoreFn {
    /// `l + r` — the paper's Q2.
    Sum,
    /// `l * r` — the paper's Q1 (requires non-negative scores for
    /// monotonicity, which §1.1's `[0,1]` convention guarantees).
    Product,
    /// `wl*l + wr*r` with non-negative weights.
    WeightedSum {
        /// Left weight (≥ 0).
        wl: f64,
        /// Right weight (≥ 0).
        wr: f64,
    },
    /// `min(l, r)` — monotone, used in some top-k literature.
    Min,
    /// `max(l, r)`.
    Max,
}

impl ScoreFn {
    /// Combines two scores.
    #[inline]
    pub fn combine(&self, l: f64, r: f64) -> f64 {
        match self {
            ScoreFn::Sum => l + r,
            ScoreFn::Product => l * r,
            ScoreFn::WeightedSum { wl, wr } => wl * l + wr * r,
            ScoreFn::Min => l.min(r),
            ScoreFn::Max => l.max(r),
        }
    }

    /// Folds an n-ary score list left-to-right (multi-way extension).
    pub fn combine_many(&self, scores: &[f64]) -> f64 {
        match scores {
            [] => 0.0,
            [only] => *only,
            [first, rest @ ..] => rest.iter().fold(*first, |acc, &s| self.combine(acc, s)),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScoreFn::Sum => "sum",
            ScoreFn::Product => "product",
            ScoreFn::WeightedSum { .. } => "weighted-sum",
            ScoreFn::Min => "min",
            ScoreFn::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FNS: [ScoreFn; 5] = [
        ScoreFn::Sum,
        ScoreFn::Product,
        ScoreFn::WeightedSum { wl: 0.3, wr: 0.7 },
        ScoreFn::Min,
        ScoreFn::Max,
    ];

    #[test]
    fn combine_basics() {
        assert_eq!(ScoreFn::Sum.combine(0.82, 0.91), 1.73);
        assert!((ScoreFn::Product.combine(0.5, 0.5) - 0.25).abs() < 1e-12);
        assert_eq!(ScoreFn::Min.combine(0.2, 0.9), 0.2);
        assert_eq!(ScoreFn::Max.combine(0.2, 0.9), 0.9);
        let w = ScoreFn::WeightedSum { wl: 2.0, wr: 1.0 };
        assert!((w.combine(0.5, 0.4) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_each_argument() {
        // The property every bound computation in the crate relies on.
        let grid = [0.0, 0.1, 0.31, 0.5, 0.93, 1.0];
        for f in FNS {
            for &a in &grid {
                for &b in &grid {
                    for &a2 in &grid {
                        if a2 >= a {
                            assert!(
                                f.combine(a2, b) >= f.combine(a, b),
                                "{f:?} not monotone in left"
                            );
                        }
                    }
                    for &b2 in &grid {
                        if b2 >= b {
                            assert!(
                                f.combine(a, b2) >= f.combine(a, b),
                                "{f:?} not monotone in right"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn combine_many_folds() {
        assert_eq!(ScoreFn::Sum.combine_many(&[]), 0.0);
        assert_eq!(ScoreFn::Sum.combine_many(&[0.4]), 0.4);
        assert!((ScoreFn::Sum.combine_many(&[0.1, 0.2, 0.3]) - 0.6).abs() < 1e-12);
        assert!((ScoreFn::Product.combine_many(&[0.5, 0.5, 0.5]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = FNS.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), FNS.len());
    }
}
