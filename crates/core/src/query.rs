//! Rank-join query descriptors.

use rj_store::row::RowResult;

use crate::error::{RankJoinError, Result};
use crate::score::ScoreFn;

/// One side of a two-way rank join: where the tuples live and which
/// columns carry the join value and the score.
#[derive(Clone, Debug)]
pub struct JoinSide {
    /// Base table name.
    pub table: String,
    /// Short label — used as the column-family name inside shared index
    /// tables ("the IJLMR index for each indexed table is stored as a
    /// separate column family in one big table", §4.1.1).
    pub label: String,
    /// `(family, qualifier)` of the join-attribute column.
    pub join_col: (String, Vec<u8>),
    /// `(family, qualifier)` of the score column (f64 big-endian bits,
    /// normalized to `[0,1]` per §1.1).
    pub score_col: (String, Vec<u8>),
}

impl JoinSide {
    /// Builds a side descriptor.
    pub fn new(
        table: &str,
        label: &str,
        join_col: (&str, &[u8]),
        score_col: (&str, &[u8]),
    ) -> Self {
        JoinSide {
            table: table.to_owned(),
            label: label.to_owned(),
            join_col: (join_col.0.to_owned(), join_col.1.to_vec()),
            score_col: (score_col.0.to_owned(), score_col.1.to_vec()),
        }
    }

    /// Extracts `(join value, score)` from a base-table row; `None` when
    /// either column is missing, the score bytes are malformed, or the
    /// score is not finite (NaN/±∞ never enter the query path — they
    /// would poison every sort and threshold bound downstream).
    pub fn extract(&self, row: &RowResult) -> Option<(Vec<u8>, f64)> {
        self.extract_checked(row).ok()
    }

    /// [`JoinSide::extract`] with typed errors instead of `None` — the
    /// single decoder behind both: query paths skip malformed rows via
    /// `extract`, while write paths that must *report* why a stored row
    /// is unusable (e.g. [`crate::maintenance::MaintainedSide::delete`])
    /// surface the cause.
    pub fn extract_checked(&self, row: &RowResult) -> Result<(Vec<u8>, f64)> {
        let join = row
            .value(&self.join_col.0, &self.join_col.1)
            .ok_or(RankJoinError::Internal("row lacks its join column"))?
            .to_vec();
        let score_bytes = row
            .value(&self.score_col.0, &self.score_col.1)
            .ok_or(RankJoinError::Internal("row lacks its score column"))?;
        let score = f64::from_be_bytes(
            score_bytes
                .as_ref()
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or(RankJoinError::Internal("stored score is not 8 bytes"))?,
        );
        if !score.is_finite() {
            return Err(RankJoinError::NonFiniteScore(score));
        }
        Ok((join, score))
    }
}

/// A two-way top-k equi-join query (paper §1.1):
///
/// ```sql
/// SELECT * FROM left, right
/// WHERE left.join_col = right.join_col
/// ORDER BY score_fn(left.score_col, right.score_col)
/// STOP AFTER k
/// ```
#[derive(Clone, Debug)]
pub struct RankJoinQuery {
    /// Left input.
    pub left: JoinSide,
    /// Right input.
    pub right: JoinSide,
    /// Result size (`STOP AFTER k`).
    pub k: usize,
    /// Monotone aggregate scoring function.
    pub score_fn: ScoreFn,
}

impl RankJoinQuery {
    /// Builds a query.
    ///
    /// `k = 0` is a valid degenerate request: every algorithm (and the
    /// oracle) uniformly returns an empty, zero-cost result for it — no
    /// store access is performed.
    pub fn new(left: JoinSide, right: JoinSide, k: usize, score_fn: ScoreFn) -> Self {
        assert_ne!(
            left.label, right.label,
            "side labels must differ (they name index column families)"
        );
        RankJoinQuery {
            left,
            right,
            k,
            score_fn,
        }
    }

    /// The same query with a different `k`.
    ///
    /// Contract: any `k` is accepted. `k = 0` queries short-circuit to an
    /// empty, zero-cost result in every algorithm; `k` larger than the
    /// join cardinality enumerates the full result in rank order.
    pub fn with_k(&self, k: usize) -> Self {
        let mut q = self.clone();
        q.k = k;
        q
    }

    /// Side accessor by index (0 = left, 1 = right) — handy for the
    /// alternating fetch loops.
    pub fn side(&self, i: usize) -> &JoinSide {
        match i {
            0 => &self.left,
            1 => &self.right,
            _ => panic!("two-way join has sides 0 and 1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rj_store::cell::Cell;

    fn row(join: u64, score: f64) -> RowResult {
        RowResult {
            key: b"rk".to_vec(),
            cells: vec![
                Cell {
                    row: b"rk".to_vec(),
                    family: "d".into(),
                    qualifier: b"jk".to_vec(),
                    timestamp: 1,
                    value: Bytes::copy_from_slice(&join.to_be_bytes()),
                },
                Cell {
                    row: b"rk".to_vec(),
                    family: "d".into(),
                    qualifier: b"score".to_vec(),
                    timestamp: 1,
                    value: Bytes::copy_from_slice(&score.to_be_bytes()),
                },
            ],
        }
    }

    fn side() -> JoinSide {
        JoinSide::new("t", "L", ("d", b"jk"), ("d", b"score"))
    }

    #[test]
    fn extract_reads_join_and_score() {
        let (j, s) = side().extract(&row(42, 0.73)).unwrap();
        assert_eq!(j, 42u64.to_be_bytes().to_vec());
        assert_eq!(s, 0.73);
    }

    #[test]
    fn extract_missing_columns_is_none() {
        let mut r = row(1, 0.5);
        r.cells.truncate(1); // drop score
        assert!(side().extract(&r).is_none());
        let empty = RowResult {
            key: b"k".to_vec(),
            cells: vec![],
        };
        assert!(side().extract(&empty).is_none());
    }

    #[test]
    fn extract_rejects_non_finite() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = row(1, bad);
            assert!(side().extract(&r).is_none(), "{bad} must be rejected");
        }
    }

    #[test]
    fn k_zero_is_a_valid_query() {
        let l = side();
        let mut r = side();
        r.label = "R".into();
        let q = RankJoinQuery::new(l, r, 0, ScoreFn::Sum);
        assert_eq!(q.k, 0);
        assert_eq!(q.with_k(0).k, 0);
    }

    #[test]
    #[should_panic(expected = "labels must differ")]
    fn distinct_labels_enforced() {
        let l = side();
        let r = side();
        let _ = RankJoinQuery::new(l, r, 5, ScoreFn::Sum);
    }

    #[test]
    fn with_k_clones() {
        let l = side();
        let mut r = side();
        r.label = "R".into();
        let q = RankJoinQuery::new(l, r, 5, ScoreFn::Sum);
        assert_eq!(q.with_k(10).k, 10);
        assert_eq!(q.k, 5);
        assert_eq!(q.side(0).label, "L");
        assert_eq!(q.side(1).label, "R");
    }
}
