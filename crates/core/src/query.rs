//! Rank-join query descriptors: the binary [`RankJoinQuery`] and the
//! N-ary [`JoinSpec`] it is the two-side degenerate form of.

use rj_store::row::RowResult;

use crate::error::{RankJoinError, Result};
use crate::score::ScoreFn;

/// One side of a two-way rank join: where the tuples live and which
/// columns carry the join value and the score.
#[derive(Clone, Debug)]
pub struct JoinSide {
    /// Base table name.
    pub table: String,
    /// Short label — used as the column-family name inside shared index
    /// tables ("the IJLMR index for each indexed table is stored as a
    /// separate column family in one big table", §4.1.1).
    pub label: String,
    /// `(family, qualifier)` of the join-attribute column.
    pub join_col: (String, Vec<u8>),
    /// `(family, qualifier)` of the score column (f64 big-endian bits,
    /// normalized to `[0,1]` per §1.1).
    pub score_col: (String, Vec<u8>),
}

impl JoinSide {
    /// Builds a side descriptor.
    pub fn new(
        table: &str,
        label: &str,
        join_col: (&str, &[u8]),
        score_col: (&str, &[u8]),
    ) -> Self {
        JoinSide {
            table: table.to_owned(),
            label: label.to_owned(),
            join_col: (join_col.0.to_owned(), join_col.1.to_vec()),
            score_col: (score_col.0.to_owned(), score_col.1.to_vec()),
        }
    }

    /// Extracts `(join value, score)` from a base-table row; `None` when
    /// either column is missing, the score bytes are malformed, or the
    /// score is not finite (NaN/±∞ never enter the query path — they
    /// would poison every sort and threshold bound downstream).
    pub fn extract(&self, row: &RowResult) -> Option<(Vec<u8>, f64)> {
        self.extract_checked(row).ok()
    }

    /// [`JoinSide::extract`] with typed errors instead of `None` — the
    /// single decoder behind both: query paths skip malformed rows via
    /// `extract`, while write paths that must *report* why a stored row
    /// is unusable (e.g. [`crate::maintenance::MaintainedSide::delete`])
    /// surface the cause.
    pub fn extract_checked(&self, row: &RowResult) -> Result<(Vec<u8>, f64)> {
        let join = row
            .value(&self.join_col.0, &self.join_col.1)
            .ok_or(RankJoinError::Internal("row lacks its join column"))?
            .to_vec();
        let score_bytes = row
            .value(&self.score_col.0, &self.score_col.1)
            .ok_or(RankJoinError::Internal("row lacks its score column"))?;
        let score = f64::from_be_bytes(
            score_bytes
                .as_ref()
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or(RankJoinError::Internal("stored score is not 8 bytes"))?,
        );
        if !score.is_finite() {
            return Err(RankJoinError::NonFiniteScore(score));
        }
        Ok((join, score))
    }
}

/// A two-way top-k equi-join query (paper §1.1):
///
/// ```sql
/// SELECT * FROM left, right
/// WHERE left.join_col = right.join_col
/// ORDER BY score_fn(left.score_col, right.score_col)
/// STOP AFTER k
/// ```
#[derive(Clone, Debug)]
pub struct RankJoinQuery {
    /// Left input.
    pub left: JoinSide,
    /// Right input.
    pub right: JoinSide,
    /// Result size (`STOP AFTER k`).
    pub k: usize,
    /// Monotone aggregate scoring function.
    pub score_fn: ScoreFn,
}

impl RankJoinQuery {
    /// Builds a query.
    ///
    /// `k = 0` is a valid degenerate request: every algorithm (and the
    /// oracle) uniformly returns an empty, zero-cost result for it — no
    /// store access is performed.
    pub fn new(left: JoinSide, right: JoinSide, k: usize, score_fn: ScoreFn) -> Self {
        assert_ne!(
            left.label, right.label,
            "side labels must differ (they name index column families)"
        );
        RankJoinQuery {
            left,
            right,
            k,
            score_fn,
        }
    }

    /// The same query with a different `k`.
    ///
    /// Contract: any `k` is accepted. `k = 0` queries short-circuit to an
    /// empty, zero-cost result in every algorithm; `k` larger than the
    /// join cardinality enumerates the full result in rank order.
    pub fn with_k(&self, k: usize) -> Self {
        let mut q = self.clone();
        q.k = k;
        q
    }

    /// Checked side accessor by index (0 = left, 1 = right) — handy for
    /// the alternating fetch loops. Replaces the old panicking `side`:
    /// an out-of-range index is a typed [`RankJoinError::SideOutOfRange`]
    /// instead of a crash.
    pub fn try_side(&self, i: usize) -> Result<&JoinSide> {
        match i {
            0 => Ok(&self.left),
            1 => Ok(&self.right),
            _ => Err(RankJoinError::SideOutOfRange { index: i, sides: 2 }),
        }
    }

    /// This query as the two-side degenerate [`JoinSpec`] (one edge over
    /// the sides' own join columns). `spec.as_binary()` round-trips it.
    pub fn to_spec(&self) -> JoinSpec {
        JoinSpec::path(
            vec![self.left.clone(), self.right.clone()],
            self.k,
            self.score_fn,
        )
        // rjlint: allow(no-unwrap) — conversion of an already-validated binary
        // query into the equivalent two-side spec cannot fail.
        .expect("a validated binary query is a valid two-side spec")
    }
}

/// One equi-join edge of a [`JoinSpec`]: side `a`'s column `a_col` must
/// equal side `b`'s column `b_col`. The endpoints carry their own
/// `(family, qualifier)` so an interior side of a path can join its two
/// neighbours on *different* columns.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinEdge {
    /// Index of the first endpoint side.
    pub a: usize,
    /// `(family, qualifier)` of the join column on side `a`.
    pub a_col: (String, Vec<u8>),
    /// Index of the second endpoint side.
    pub b: usize,
    /// `(family, qualifier)` of the join column on side `b`.
    pub b_col: (String, Vec<u8>),
}

impl JoinEdge {
    /// An edge joining `sides[a]` and `sides[b]` on each side's own
    /// default join column.
    pub fn on_join_cols(sides: &[JoinSide], a: usize, b: usize) -> Self {
        JoinEdge {
            a,
            a_col: sides[a].join_col.clone(),
            b,
            b_col: sides[b].join_col.clone(),
        }
    }
}

/// The shape of a validated [`JoinSpec`]'s join tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecShape {
    /// Two sides, one edge — the classic [`RankJoinQuery`] form.
    Binary,
    /// A chain: every side has at most two incident edges.
    Path,
    /// One hub side carries every edge.
    Star,
    /// Any other acyclic shape.
    Tree,
}

/// An N-ary top-k equi-join: an ordered list of sides plus equi-join
/// edges forming a connected acyclic tree (paths and stars are the
/// common cases), ranked by the monotone aggregate of all per-side
/// scores:
///
/// ```sql
/// SELECT * FROM R1, ..., Rn
/// WHERE <edges>
/// ORDER BY f(R1.score, ..., Rn.score)
/// STOP AFTER k
/// ```
///
/// The binary [`RankJoinQuery`] is the two-side degenerate form
/// ([`RankJoinQuery::to_spec`] / [`JoinSpec::as_binary`]); everything
/// N-ary in the crate — the operator ([`crate::multiway`]), its planner,
/// cursors, and the serving layer's cache keys — is driven by this type.
#[derive(Clone, Debug)]
pub struct JoinSpec {
    /// The joined relations, in result order: side 0 is the result's
    /// `left`, the last side its `right`, interior sides land in
    /// [`crate::result::JoinTuple::inner`].
    pub sides: Vec<JoinSide>,
    /// The equi-join tree: exactly `sides.len() - 1` connected edges.
    pub edges: Vec<JoinEdge>,
    /// Result size (`STOP AFTER k`).
    pub k: usize,
    /// Monotone aggregate scoring function, folded over all sides in
    /// order ([`ScoreFn::combine_many`]).
    pub score_fn: ScoreFn,
}

impl JoinSpec {
    /// Builds and validates a spec: at least two sides, pairwise-distinct
    /// labels, and edges forming a connected acyclic tree over the sides.
    pub fn new(
        sides: Vec<JoinSide>,
        edges: Vec<JoinEdge>,
        k: usize,
        score_fn: ScoreFn,
    ) -> Result<Self> {
        if sides.len() < 2 {
            return Err(RankJoinError::InvalidSpec("a join needs at least 2 sides"));
        }
        for i in 0..sides.len() {
            for j in i + 1..sides.len() {
                if sides[i].label == sides[j].label {
                    return Err(RankJoinError::InvalidSpec(
                        "side labels must be pairwise distinct (they name index column families)",
                    ));
                }
            }
        }
        if edges.len() != sides.len() - 1 {
            return Err(RankJoinError::InvalidSpec(
                "a join tree over n sides has exactly n-1 edges",
            ));
        }
        for e in &edges {
            if e.a >= sides.len() || e.b >= sides.len() || e.a == e.b {
                return Err(RankJoinError::InvalidSpec(
                    "edge endpoints must be two distinct side indices",
                ));
            }
        }
        // n-1 edges + connected ⇒ acyclic: a union-find sweep suffices.
        let mut root: Vec<usize> = (0..sides.len()).collect();
        fn find(root: &mut [usize], mut x: usize) -> usize {
            while root[x] != x {
                root[x] = root[root[x]];
                x = root[x];
            }
            x
        }
        for e in &edges {
            let (ra, rb) = (find(&mut root, e.a), find(&mut root, e.b));
            if ra == rb {
                return Err(RankJoinError::InvalidSpec(
                    "edges form a cycle — the join graph must be a tree",
                ));
            }
            root[ra] = rb;
        }
        Ok(JoinSpec {
            sides,
            edges,
            k,
            score_fn,
        })
    }

    /// A path spec: sides joined in order, each edge over both endpoint
    /// sides' own default join columns.
    pub fn path(sides: Vec<JoinSide>, k: usize, score_fn: ScoreFn) -> Result<Self> {
        let edges = (0..sides.len().saturating_sub(1))
            .map(|i| JoinEdge::on_join_cols(&sides, i, i + 1))
            .collect();
        JoinSpec::new(sides, edges, k, score_fn)
    }

    /// A star spec: side 0 is the hub, every other side joins it on the
    /// default join columns.
    pub fn star(sides: Vec<JoinSide>, k: usize, score_fn: ScoreFn) -> Result<Self> {
        let edges = (1..sides.len())
            .map(|i| JoinEdge::on_join_cols(&sides, 0, i))
            .collect();
        JoinSpec::new(sides, edges, k, score_fn)
    }

    /// Number of sides.
    pub fn n(&self) -> usize {
        self.sides.len()
    }

    /// Checked side accessor — the N-ary sibling of
    /// [`RankJoinQuery::try_side`].
    pub fn try_side(&self, i: usize) -> Result<&JoinSide> {
        self.sides.get(i).ok_or(RankJoinError::SideOutOfRange {
            index: i,
            sides: self.sides.len(),
        })
    }

    /// The same spec with a different `k` (same contract as
    /// [`RankJoinQuery::with_k`]).
    pub fn with_k(&self, k: usize) -> Self {
        let mut s = self.clone();
        s.k = k;
        s
    }

    /// The join-tree shape (validated specs are always trees).
    pub fn shape(&self) -> SpecShape {
        if self.sides.len() == 2 {
            return SpecShape::Binary;
        }
        let mut degree = vec![0usize; self.sides.len()];
        for e in &self.edges {
            degree[e.a] += 1;
            degree[e.b] += 1;
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        if max_degree <= 2 {
            SpecShape::Path
        } else if max_degree == self.sides.len() - 1
            && degree.iter().filter(|&&d| d == 1).count() == self.sides.len() - 1
        {
            SpecShape::Star
        } else {
            SpecShape::Tree
        }
    }

    /// The edges incident to side `i`, each with the column that side
    /// contributes to it, in edge order. A side's tuples carry one join
    /// value per incident edge, in exactly this order.
    pub fn incident_edges(&self, i: usize) -> Vec<(usize, (String, Vec<u8>))> {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(e, edge)| {
                if edge.a == i {
                    Some((e, edge.a_col.clone()))
                } else if edge.b == i {
                    Some((e, edge.b_col.clone()))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Extracts side `i`'s `(edge values, score)` from a base-table row:
    /// one join value per incident edge, in [`JoinSpec::incident_edges`]
    /// order. `None` when any column is missing, the score bytes are
    /// malformed, or the score is non-finite — mirroring
    /// [`JoinSide::extract`]'s skip-don't-crash contract.
    pub fn extract_side(&self, i: usize, row: &RowResult) -> Option<(Vec<Vec<u8>>, f64)> {
        let side = self.sides.get(i)?;
        let score_bytes = row.value(&side.score_col.0, &side.score_col.1)?;
        let score = f64::from_be_bytes(
            score_bytes
                .as_ref()
                .get(..8)
                .and_then(|b| b.try_into().ok())?,
        );
        if !score.is_finite() {
            return None;
        }
        let mut values = Vec::new();
        for (_, col) in self.incident_edges(i) {
            values.push(row.value(&col.0, &col.1)?.to_vec());
        }
        Some((values, score))
    }

    /// The two-side degenerate form as a [`RankJoinQuery`], when this
    /// spec is binary over the sides' own join columns (so the binary
    /// executors can run it byte-for-byte identically).
    pub fn as_binary(&self) -> Option<RankJoinQuery> {
        if self.sides.len() != 2 || self.edges.len() != 1 {
            return None;
        }
        let e = &self.edges[0];
        let (li, ri) = if e.a == 0 { (0, 1) } else { (1, 0) };
        let (lcol, rcol) = if e.a == 0 {
            (&e.a_col, &e.b_col)
        } else {
            (&e.b_col, &e.a_col)
        };
        let mut left = self.sides[li].clone();
        let mut right = self.sides[ri].clone();
        // The binary executors read the join value through the side's
        // own join_col; only a spec joining on those columns maps.
        if left.join_col != *lcol || right.join_col != *rcol {
            return None;
        }
        left.join_col = lcol.clone();
        right.join_col = rcol.clone();
        Some(RankJoinQuery::new(left, right, self.k, self.score_fn))
    }

    /// A stable canonical fingerprint of the spec's *identity* — every
    /// side (table, label, columns), every edge (endpoints normalized),
    /// and the score function, but **not** `k`: two submissions of the
    /// same join at different depths must share serving-cache keys.
    /// This is what the serving layer keys coalescing and prefix/warm
    /// caches by, so specs differing in any side or edge can never alias.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::new();
        let put = |buf: &mut Vec<u8>, bytes: &[u8]| {
            buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            buf.extend_from_slice(bytes);
        };
        put(&mut buf, self.score_fn.name().as_bytes());
        buf.extend_from_slice(&(self.sides.len() as u32).to_be_bytes());
        for s in &self.sides {
            put(&mut buf, s.table.as_bytes());
            put(&mut buf, s.label.as_bytes());
            put(&mut buf, s.join_col.0.as_bytes());
            put(&mut buf, &s.join_col.1);
            put(&mut buf, s.score_col.0.as_bytes());
            put(&mut buf, &s.score_col.1);
        }
        // An edge normalized to (low endpoint, its column, high
        // endpoint, its column) so a↔b orientation can't change the key.
        type NormalizedEdge<'a> = (usize, &'a (String, Vec<u8>), usize, &'a (String, Vec<u8>));
        let mut edges: Vec<NormalizedEdge> = self
            .edges
            .iter()
            .map(|e| {
                if e.a <= e.b {
                    (e.a, &e.a_col, e.b, &e.b_col)
                } else {
                    (e.b, &e.b_col, e.a, &e.a_col)
                }
            })
            .collect();
        edges.sort();
        for (a, a_col, b, b_col) in edges {
            buf.extend_from_slice(&(a as u32).to_be_bytes());
            buf.extend_from_slice(&(b as u32).to_be_bytes());
            put(&mut buf, a_col.0.as_bytes());
            put(&mut buf, &a_col.1);
            put(&mut buf, b_col.0.as_bytes());
            put(&mut buf, &b_col.1);
        }
        rj_sketch::hash::hash_bytes(0x6a73_7065_635f_6670, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rj_store::cell::Cell;

    fn row(join: u64, score: f64) -> RowResult {
        RowResult {
            key: b"rk".to_vec(),
            cells: vec![
                Cell {
                    row: b"rk".to_vec(),
                    family: "d".into(),
                    qualifier: b"jk".to_vec(),
                    timestamp: 1,
                    value: Bytes::copy_from_slice(&join.to_be_bytes()),
                },
                Cell {
                    row: b"rk".to_vec(),
                    family: "d".into(),
                    qualifier: b"score".to_vec(),
                    timestamp: 1,
                    value: Bytes::copy_from_slice(&score.to_be_bytes()),
                },
            ],
        }
    }

    fn side() -> JoinSide {
        JoinSide::new("t", "L", ("d", b"jk"), ("d", b"score"))
    }

    #[test]
    fn extract_reads_join_and_score() {
        let (j, s) = side().extract(&row(42, 0.73)).unwrap();
        assert_eq!(j, 42u64.to_be_bytes().to_vec());
        assert_eq!(s, 0.73);
    }

    #[test]
    fn extract_missing_columns_is_none() {
        let mut r = row(1, 0.5);
        r.cells.truncate(1); // drop score
        assert!(side().extract(&r).is_none());
        let empty = RowResult {
            key: b"k".to_vec(),
            cells: vec![],
        };
        assert!(side().extract(&empty).is_none());
    }

    #[test]
    fn extract_rejects_non_finite() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = row(1, bad);
            assert!(side().extract(&r).is_none(), "{bad} must be rejected");
        }
    }

    #[test]
    fn k_zero_is_a_valid_query() {
        let l = side();
        let mut r = side();
        r.label = "R".into();
        let q = RankJoinQuery::new(l, r, 0, ScoreFn::Sum);
        assert_eq!(q.k, 0);
        assert_eq!(q.with_k(0).k, 0);
    }

    #[test]
    #[should_panic(expected = "labels must differ")]
    fn distinct_labels_enforced() {
        let l = side();
        let r = side();
        let _ = RankJoinQuery::new(l, r, 5, ScoreFn::Sum);
    }

    #[test]
    fn with_k_clones() {
        let l = side();
        let mut r = side();
        r.label = "R".into();
        let q = RankJoinQuery::new(l, r, 5, ScoreFn::Sum);
        assert_eq!(q.with_k(10).k, 10);
        assert_eq!(q.k, 5);
        assert_eq!(q.try_side(0).unwrap().label, "L");
        assert_eq!(q.try_side(1).unwrap().label, "R");
        assert!(matches!(
            q.try_side(2),
            Err(RankJoinError::SideOutOfRange { index: 2, sides: 2 })
        ));
    }
}
