//! The correctness oracle: an omniscient full join + sort.
//!
//! Computes the exact top-k by reading every row through the store's
//! debug (metric-free) path, hash-joining in memory, and sorting. This is
//! *not* one of the paper's algorithms — it exists so that every algorithm
//! in the crate can be tested against ground truth, including the BFHM
//! 100%-recall theorem (§5.3).

use std::collections::HashMap;

use rj_store::cluster::Cluster;
use rj_store::error::Result;

use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};

/// Computes the exact top-k result without touching the metric ledger.
pub fn topk(cluster: &Cluster, query: &RankJoinQuery) -> Result<Vec<JoinTuple>> {
    let left_table = cluster.table(&query.left.table)?;
    let right_table = cluster.table(&query.right.table)?;

    let mut right_by_join: HashMap<Vec<u8>, Vec<(Vec<u8>, f64)>> = HashMap::new();
    for row in right_table.debug_all_rows() {
        if let Some((join, score)) = query.right.extract(&row) {
            right_by_join
                .entry(join)
                .or_default()
                .push((row.key, score));
        }
    }

    let mut top = TopK::new(query.k);
    for row in left_table.debug_all_rows() {
        let Some((join, left_score)) = query.left.extract(&row) else {
            continue;
        };
        let Some(matches) = right_by_join.get(&join) else {
            continue;
        };
        for (right_key, right_score) in matches {
            top.offer(JoinTuple {
                left_key: row.key.clone(),
                right_key: right_key.clone(),
                join_value: join.clone(),
                left_score,
                right_score: *right_score,
                score: query.score_fn.combine(left_score, *right_score),
            });
        }
    }
    Ok(top.into_sorted_vec())
}

/// Computes the *entire* join result, rank-ordered (for recall studies).
pub fn full_join(cluster: &Cluster, query: &RankJoinQuery) -> Result<Vec<JoinTuple>> {
    let huge = RankJoinQuery {
        k: usize::MAX / 2,
        ..query.clone()
    };
    topk(cluster, &huge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crate::score::ScoreFn;
    use rj_store::cell::Mutation;
    use rj_store::costmodel::CostModel;

    fn setup() -> (Cluster, RankJoinQuery) {
        let c = Cluster::new(2, CostModel::test());
        for t in ["l", "r"] {
            c.create_table(t, &["d"]).unwrap();
        }
        let client = c.client();
        // l: (k1, join=a, 0.9), (k2, join=b, 0.5)
        // r: (k3, join=a, 0.8), (k4, join=a, 0.1), (k5, join=c, 1.0)
        let rows = [
            ("l", "k1", b"a", 0.9_f64),
            ("l", "k2", b"b", 0.5),
            ("r", "k3", b"a", 0.8),
            ("r", "k4", b"a", 0.1),
            ("r", "k5", b"c", 1.0),
        ];
        for (t, k, j, s) in rows {
            client
                .mutate_row(
                    t,
                    k.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        let q = RankJoinQuery::new(
            JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
            2,
            ScoreFn::Sum,
        );
        (c, q)
    }

    #[test]
    fn joins_and_ranks() {
        let (c, q) = setup();
        let results = topk(&c, &q).unwrap();
        assert_eq!(results.len(), 2);
        assert!((results[0].score - 1.7).abs() < 1e-12); // k1 ⋈ k3
        assert!((results[1].score - 1.0).abs() < 1e-12); // k1 ⋈ k4
        assert_eq!(results[0].left_key, b"k1".to_vec());
        assert_eq!(results[0].right_key, b"k3".to_vec());
    }

    #[test]
    fn full_join_returns_all() {
        let (c, q) = setup();
        let all = full_join(&c, &q).unwrap();
        assert_eq!(all.len(), 2, "only join value 'a' matches, twice");
    }

    #[test]
    fn no_metrics_charged() {
        let (c, q) = setup();
        let before = c.metrics().snapshot();
        let _ = topk(&c, &q).unwrap();
        let after = c.metrics().snapshot();
        assert_eq!(before, after, "oracle must not perturb the ledger");
    }
}
