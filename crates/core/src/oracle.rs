//! The correctness oracle: an omniscient full join + sort.
//!
//! Computes the exact top-k by reading every row through the store's
//! debug (metric-free) path, hash-joining in memory, and sorting. This is
//! *not* one of the paper's algorithms — it exists so that every algorithm
//! in the crate can be tested against ground truth, including the BFHM
//! 100%-recall theorem (§5.3).

use std::collections::HashMap;

use rj_store::cluster::Cluster;
use rj_store::error::Result;

use crate::query::{JoinSpec, RankJoinQuery};
use crate::result::{JoinTuple, TopK};

/// Computes the exact top-k result without touching the metric ledger.
pub fn topk(cluster: &Cluster, query: &RankJoinQuery) -> Result<Vec<JoinTuple>> {
    let left_table = cluster.table(&query.left.table)?;
    let right_table = cluster.table(&query.right.table)?;

    let mut right_by_join: HashMap<Vec<u8>, Vec<(Vec<u8>, f64)>> = HashMap::new();
    for row in right_table.debug_all_rows() {
        if let Some((join, score)) = query.right.extract(&row) {
            right_by_join
                .entry(join)
                .or_default()
                .push((row.key, score));
        }
    }

    let mut top = TopK::new(query.k);
    for row in left_table.debug_all_rows() {
        let Some((join, left_score)) = query.left.extract(&row) else {
            continue;
        };
        let Some(matches) = right_by_join.get(&join) else {
            continue;
        };
        for (right_key, right_score) in matches {
            top.offer(JoinTuple {
                left_key: row.key.clone(),
                right_key: right_key.clone(),
                join_value: join.clone(),
                left_score,
                right_score: *right_score,
                inner: Vec::new(),
                score: query.score_fn.combine(left_score, *right_score),
            });
        }
    }
    Ok(top.into_sorted_vec())
}

/// Computes the *entire* join result, rank-ordered (for recall studies).
pub fn full_join(cluster: &Cluster, query: &RankJoinQuery) -> Result<Vec<JoinTuple>> {
    let huge = RankJoinQuery {
        k: usize::MAX / 2,
        ..query.clone()
    };
    topk(cluster, &huge)
}

/// One side tuple as the N-ary oracle sees it: row key, edge values in
/// incident order, score.
type SideRow = (Vec<u8>, Vec<Vec<u8>>, f64);

/// The N-ary oracle: exact top-k for any [`JoinSpec`] by exhaustive
/// assignment enumeration over the metric-free debug rows. Cubic-ish in
/// the side sizes — test-scale only, like [`topk`].
pub fn topk_spec(cluster: &Cluster, spec: &JoinSpec) -> Result<Vec<JoinTuple>> {
    let n = spec.n();
    let mut sides: Vec<Vec<SideRow>> = Vec::with_capacity(n);
    for i in 0..n {
        let table = cluster.table(&spec.sides[i].table)?;
        let mut rows = Vec::new();
        for row in table.debug_all_rows() {
            if let Some((values, score)) = spec.extract_side(i, &row) {
                rows.push((row.key, values, score));
            }
        }
        sides.push(rows);
    }
    // Incident-slot lookup: which position edge `e` occupies in side
    // `i`'s edge-value vector.
    let slots: Vec<HashMap<usize, usize>> = (0..n)
        .map(|i| {
            spec.incident_edges(i)
                .iter()
                .enumerate()
                .map(|(slot, (e, _))| (*e, slot))
                .collect()
        })
        .collect();

    let mut top = TopK::new(spec.k);
    let mut chosen = vec![0usize; n];
    enumerate_assignments(spec, &sides, &slots, 0, &mut chosen, &mut top);
    Ok(top.into_sorted_vec())
}

fn enumerate_assignments(
    spec: &JoinSpec,
    sides: &[Vec<SideRow>],
    slots: &[HashMap<usize, usize>],
    depth: usize,
    chosen: &mut [usize],
    top: &mut TopK,
) {
    let n = spec.n();
    if depth == n {
        for (e, edge) in spec.edges.iter().enumerate() {
            let a_val = &sides[edge.a][chosen[edge.a]].1[slots[edge.a][&e]];
            let b_val = &sides[edge.b][chosen[edge.b]].1[slots[edge.b][&e]];
            if a_val != b_val {
                return;
            }
        }
        let scores: Vec<f64> = (0..n).map(|i| sides[i][chosen[i]].2).collect();
        let e0 = &spec.edges[0];
        top.offer(JoinTuple {
            left_key: sides[0][chosen[0]].0.clone(),
            right_key: sides[n - 1][chosen[n - 1]].0.clone(),
            join_value: sides[e0.a][chosen[e0.a]].1[slots[e0.a][&0]].clone(),
            left_score: scores[0],
            right_score: scores[n - 1],
            inner: (1..n - 1)
                .map(|i| (sides[i][chosen[i]].0.clone(), scores[i]))
                .collect(),
            score: spec.score_fn.combine_many(&scores),
        });
        return;
    }
    for idx in 0..sides[depth].len() {
        chosen[depth] = idx;
        enumerate_assignments(spec, sides, slots, depth + 1, chosen, top);
    }
}

/// The entire N-ary join result, rank-ordered.
pub fn full_join_spec(cluster: &Cluster, spec: &JoinSpec) -> Result<Vec<JoinTuple>> {
    topk_spec(cluster, &spec.with_k(usize::MAX / 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinSide;
    use crate::score::ScoreFn;
    use rj_store::cell::Mutation;
    use rj_store::costmodel::CostModel;

    fn setup() -> (Cluster, RankJoinQuery) {
        let c = Cluster::new(2, CostModel::test());
        for t in ["l", "r"] {
            c.create_table(t, &["d"]).unwrap();
        }
        let client = c.client();
        // l: (k1, join=a, 0.9), (k2, join=b, 0.5)
        // r: (k3, join=a, 0.8), (k4, join=a, 0.1), (k5, join=c, 1.0)
        let rows = [
            ("l", "k1", b"a", 0.9_f64),
            ("l", "k2", b"b", 0.5),
            ("r", "k3", b"a", 0.8),
            ("r", "k4", b"a", 0.1),
            ("r", "k5", b"c", 1.0),
        ];
        for (t, k, j, s) in rows {
            client
                .mutate_row(
                    t,
                    k.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", j.to_vec()),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        let q = RankJoinQuery::new(
            JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
            JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
            2,
            ScoreFn::Sum,
        );
        (c, q)
    }

    #[test]
    fn joins_and_ranks() {
        let (c, q) = setup();
        let results = topk(&c, &q).unwrap();
        assert_eq!(results.len(), 2);
        assert!((results[0].score - 1.7).abs() < 1e-12); // k1 ⋈ k3
        assert!((results[1].score - 1.0).abs() < 1e-12); // k1 ⋈ k4
        assert_eq!(results[0].left_key, b"k1".to_vec());
        assert_eq!(results[0].right_key, b"k3".to_vec());
    }

    #[test]
    fn full_join_returns_all() {
        let (c, q) = setup();
        let all = full_join(&c, &q).unwrap();
        assert_eq!(all.len(), 2, "only join value 'a' matches, twice");
    }

    #[test]
    fn spec_oracle_agrees_with_binary_oracle() {
        let (c, q) = setup();
        let binary = topk(&c, &q).unwrap();
        let spec = topk_spec(&c, &q.to_spec()).unwrap();
        assert_eq!(binary, spec, "two-side spec oracle must match");
    }

    #[test]
    fn spec_oracle_three_way_path() {
        let (c, spec) = crate::testsupport::three_way_path_cluster(4);
        let results = topk_spec(&c, &spec).unwrap();
        assert!(results.len() <= 4);
        assert!(results
            .windows(2)
            .all(|w| w[0].rank_cmp(&w[1]) == std::cmp::Ordering::Less));
        for t in &results {
            assert_eq!(t.inner.len(), 1, "one interior side");
            let combined = spec
                .score_fn
                .combine_many(&[t.left_score, t.inner[0].1, t.right_score]);
            assert!((t.score - combined).abs() < 1e-12);
        }
        let before = c.metrics().snapshot();
        let _ = topk_spec(&c, &spec).unwrap();
        assert_eq!(before, c.metrics().snapshot(), "spec oracle is metric-free");
    }

    #[test]
    fn no_metrics_charged() {
        let (c, q) = setup();
        let before = c.metrics().snapshot();
        let _ = topk(&c, &q).unwrap();
        let after = c.metrics().snapshot();
        assert_eq!(before, after, "oracle must not perturb the ledger");
    }
}
