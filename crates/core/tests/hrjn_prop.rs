//! Property test: the HRJN operator equals brute force on arbitrary
//! score-sorted inputs (modulo tie-sibling exchange at the k-th score).

use proptest::prelude::*;

use rj_core::hrjn::{run_hrjn, RankedTuple};
use rj_core::result::{JoinTuple, TopK};
use rj_core::score::ScoreFn;

fn make_side(raw: Vec<(u8, u32)>, prefix: u8) -> Vec<RankedTuple> {
    let mut tuples: Vec<RankedTuple> = raw
        .into_iter()
        .enumerate()
        .map(|(i, (j, s))| RankedTuple {
            key: vec![prefix, i as u8],
            join_value: vec![j],
            score: f64::from(s) / 1000.0,
        })
        .collect();
    tuples.sort_by(|a, b| b.score.total_cmp(&a.score));
    tuples
}

fn brute_force(
    k: usize,
    f: ScoreFn,
    left: &[RankedTuple],
    right: &[RankedTuple],
) -> Vec<JoinTuple> {
    let mut top = TopK::new(k);
    for l in left {
        for r in right {
            if l.join_value == r.join_value {
                top.offer(JoinTuple {
                    left_key: l.key.clone(),
                    right_key: r.key.clone(),
                    join_value: l.join_value.clone(),
                    left_score: l.score,
                    right_score: r.score,
                    inner: Vec::new(),
                    score: f.combine(l.score, r.score),
                });
            }
        }
    }
    top.into_sorted_vec()
}

proptest! {
    #[test]
    fn hrjn_equals_brute_force(
        left in prop::collection::vec((0u8..10, 0u32..=1000), 0..60),
        right in prop::collection::vec((0u8..10, 0u32..=1000), 0..60),
        k in 1usize..30,
        product in any::<bool>(),
    ) {
        let f = if product { ScoreFn::Product } else { ScoreFn::Sum };
        let left = make_side(left, b'l');
        let right = make_side(right, b'r');
        let got = run_hrjn(k, f, &left, &right);
        let want = brute_force(k, f, &left, &right);
        let all = brute_force(usize::MAX / 2, f, &left, &right);

        // Rank equivalence: identical score sequences; exact tuples above
        // the k-th score; boundary tuples must be genuine.
        let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
        let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
        prop_assert_eq!(&got_scores, &want_scores);
        let boundary = want.last().map(|t| t.score);
        for (g, w) in got.iter().zip(&want) {
            if Some(g.score) != boundary {
                prop_assert_eq!(g, w);
            } else {
                prop_assert!(all.iter().any(|t| t.score == g.score
                    && t.left_key == g.left_key
                    && t.right_key == g.right_key));
            }
        }
    }
}
