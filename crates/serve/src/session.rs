//! Query sessions: what a client submits, and what it gets back.

use std::sync::Arc;

use rj_core::result::JoinTuple;
use rj_store::metrics::MetricsSnapshot;

/// Opaque handle of one submitted query session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

/// Scheduling class of a session. Classes are strict: no session of a
/// lower class is dispatched while a higher-class session is queued
/// (weighted fairness applies *within* a class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryPriority {
    /// Bulk/deferrable queries: analytics sweeps, prefetching.
    Background,
    /// Default class for programmatic clients.
    Batch,
    /// Latency-sensitive user-facing queries; always served first.
    Interactive,
}

/// Everything a client chooses at submit time.
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// How many results the session wants (the query's `k`).
    pub k: usize,
    /// Scheduling class.
    pub priority: QueryPriority,
    /// Budget of simulated seconds the query may charge before it is
    /// stopped with [`SessionOutcome::DeadlineExpired`]. `None` means no
    /// deadline. Checked at batch boundaries.
    pub deadline_sim_seconds: Option<f64>,
    /// Fault-injection hook: cancel the session after this many ISL
    /// batches, as if the client called cancel exactly there. Exercises
    /// mid-query cancellation deterministically in tests; leave `None`
    /// in production.
    pub cancel_after_batches: Option<u64>,
    /// Results per page. `None` (the default) runs the query to its full
    /// `k` in one dispatch. `Some(p)` makes the session **paged**: the
    /// scheduling round certifies only the first `p` ranks, the session
    /// parks as a paused cursor ([`SessionStatus::Paged`] carries a
    /// continuation token), and each
    /// [`crate::RankJoinService::next_page`] call resumes it for `p`
    /// more — billed exactly the consumed delta of that page. Paged
    /// sessions never coalesce (their cursor belongs to one client).
    pub page_size: Option<usize>,
}

impl SubmitOptions {
    /// An interactive top-`k` query with no deadline.
    pub fn topk(k: usize) -> Self {
        SubmitOptions {
            k,
            priority: QueryPriority::Interactive,
            deadline_sim_seconds: None,
            cancel_after_batches: None,
            page_size: None,
        }
    }

    /// Same options at a different priority, builder-style.
    pub fn with_priority(mut self, priority: QueryPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Same options with a simulated-seconds deadline, builder-style.
    pub fn with_deadline(mut self, sim_seconds: f64) -> Self {
        self.deadline_sim_seconds = Some(sim_seconds);
        self
    }

    /// Same options paged at `page_size` results per pull, builder-style
    /// (see [`SubmitOptions::page_size`]).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = Some(page_size.max(1));
        self
    }
}

/// How a completed session's answer was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// The session ran its own execution on its tenant's ledger.
    Execution,
    /// The session coalesced onto a concurrent deeper execution of the
    /// same backend and took a prefix of that answer; it was charged
    /// nothing.
    SharedExecution,
    /// The session was answered from the backend's result-prefix cache;
    /// it was charged nothing.
    PrefixCache,
    /// The session ended (cancelled) before any execution touched it.
    Unserved,
}

/// How a session ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Ran to normal completion; `results` is the full top-k answer.
    Complete,
    /// Cancelled by the client; `results` holds the best candidates at
    /// the stopping batch boundary.
    Cancelled,
    /// The simulated-seconds deadline elapsed; `results` holds the best
    /// candidates at the stopping batch boundary.
    DeadlineExpired,
    /// The execution layer failed; the message is the error's display.
    Failed(String),
}

/// The terminal record of one session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// The answer (complete, or best-so-far for stopped sessions).
    /// Shared: coalesced sessions alias the leader's allocation.
    pub results: Arc<Vec<JoinTuple>>,
    /// Exactly what this session charged its tenant's ledger. Zero for
    /// shared/cache-served and queue-cancelled sessions.
    pub charged: MetricsSnapshot,
    /// How the answer was produced.
    pub served_by: ServedBy,
    /// Service clock when the session was submitted.
    pub submitted_at: f64,
    /// Service clock when the session reached this terminal state.
    pub completed_at: f64,
}

impl SessionResult {
    /// Simulated seconds between submit and completion — the sojourn
    /// time the `serve` benchmark aggregates into p50/p99/p999.
    pub fn sojourn(&self) -> f64 {
        self.completed_at - self.submitted_at
    }
}

/// Continuation token of a paged session: names the exact page boundary
/// the paused cursor stopped at. Pass it to
/// [`crate::RankJoinService::next_page`] to pull the next page; a token
/// from an earlier page (the client retried, or raced itself) is refused
/// with [`crate::ServeError::InvalidContinuation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PageToken {
    /// The paged session.
    pub session: SessionId,
    /// Page sequence number (how many pages have been served).
    pub(crate) seq: u64,
}

/// One paged session's progress, reported while it is parked between
/// pages.
#[derive(Clone, Debug)]
pub struct PageInfo {
    /// Every result certified so far (all pages, rank order).
    pub results: Arc<Vec<JoinTuple>>,
    /// What the pages served so far charged, in total (billed to the
    /// tenant when the session reaches a terminal state).
    pub charged: MetricsSnapshot,
    /// Continuation for the next page.
    pub token: PageToken,
}

/// What [`crate::RankJoinService::poll`] reports.
#[derive(Clone, Debug)]
pub enum SessionStatus {
    /// Waiting for admission.
    Queued,
    /// Selected into the current scheduling round.
    Running,
    /// Paged session parked between pages; carries the continuation.
    Paged(PageInfo),
    /// Terminal; carries the result record.
    Done(SessionResult),
}
