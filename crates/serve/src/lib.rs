//! Multi-tenant serving front-end for rank-join queries.
//!
//! The lower layers answer *how* to run one top-k join well: indexed
//! algorithms ([`rj_core`]), cost-based and adaptive planning, and a
//! process-wide work-stealing pool ([`rj_store::pool`]). This crate
//! arbitrates *who* gets to use that machine when "heavy traffic from
//! millions of users" (the paper's cloud-store setting, §1) lands on one
//! cluster:
//!
//! * **Sessions** — [`RankJoinService::submit`] / [`poll`] / [`cancel`]
//!   with per-query deadlines. Queries stop at batch boundaries via the
//!   [`rj_core::cancel`] seam, so a cancelled or expired session charges
//!   its tenant exactly the consumed prefix, never a torn batch.
//! * **Metering** — every (tenant, backend) pair runs on its own
//!   [`rj_store::cluster::Cluster::fork_metrics`] ledger. Per-tenant
//!   usage is the sum of the tenant's forks, and the service's billing
//!   records conserve it exactly: work metered equals work billed
//!   ([`RankJoinService::tenant_usage`] vs
//!   [`RankJoinService::charged_total`]).
//! * **Admission & fairness** — bounded per-tenant queues (overload is
//!   rejected at submit, not absorbed), strict priority classes
//!   ([`QueryPriority`]), and weighted stride scheduling between tenants
//!   inside a class: a tenant's *pass* advances by charged simulated
//!   seconds over its weight, and the scheduler always serves the
//!   smallest pass — long-run service is proportional to weight.
//! * **Work sharing** — concurrent sessions on the same registered
//!   backend (same canonical [`rj_core::JoinSpec`] fingerprint, same
//!   execution config) coalesce onto one execution at the deepest
//!   requested `k`; because every algorithm returns one deterministic
//!   total order (score, then key), a completed depth-`k'` answer serves
//!   any later `k ≤ k'` session straight from the **result-prefix
//!   cache**. Cache entries are versioned against the backend's
//!   statistics handle ([`rj_core::SharedTableStats`] for binary pairs,
//!   [`rj_core::SharedSpecStats`] for multi-way specs) — the same
//!   version counter maintained writes bump — so a stale prefix is
//!   never served.
//! * **Background maintenance** — index rebuilds run at the pool's
//!   [`rj_store::PoolPriority::Background`] class: they soak idle
//!   capacity and never queue ahead of interactive query batches.
//!
//! Scheduling rounds are explicit and deterministic:
//! [`RankJoinService::run_round`] drains one admission decision onto the
//! pool and advances the service's simulated clock by the round's
//! makespan, which makes fairness and sharing effects reproducible in
//! tests and benchmarks (`rj_bench`'s `serve` experiment).
//!
//! [`poll`]: RankJoinService::poll
//! [`cancel`]: RankJoinService::cancel

#![warn(missing_docs)]

pub mod admission;
pub mod backend;
pub mod error;
pub mod service;
pub mod session;
pub mod sharing;
pub mod tenant;

pub use backend::BackendExec;
pub use error::ServeError;
pub use service::{BackendId, RankJoinService, RoundReport, ServeConfig, ServeCounters};
pub use session::{
    PageInfo, PageToken, QueryPriority, ServedBy, SessionId, SessionOutcome, SessionResult,
    SessionStatus, SubmitOptions,
};
pub use tenant::{TenantId, TenantProfile};
