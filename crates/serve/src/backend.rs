//! The serving layer's execution backend: binary or multi-way.
//!
//! [`BackendExec`] wraps either the binary
//! [`RankJoinExecutor`] (registered through
//! [`crate::RankJoinService::register_backend`]) or the spec-driven
//! [`SpecExecutor`] ([`crate::RankJoinService::register_spec_backend`])
//! behind the handful of operations a scheduling round needs: open a
//! pinned cursor, resume one, fork onto a tenant ledger, rebuild the
//! index, and report statistics version/staleness. Everything above this
//! seam — admission, fairness, coalescing, the prefix and warm caches —
//! is join-arity agnostic.
//!
//! The **share key** each backend registers under is the canonical
//! [`JoinSpec` fingerprint](rj_core::query::JoinSpec::fingerprint) (plus
//! the execution-config signature), *not* the `(left table, right
//! table)` pair: the fingerprint covers every side and every edge, so a
//! three-way spec over `(R, S)`-plus-a-third-side can never alias the
//! binary `R ⋈ S` backend's caches.

use std::sync::Arc;

use rj_core::cursor::{CursorState, RankedCursor};
use rj_core::error::Result;
use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::multiway::{SharedSpecStats, SpecExecutor};
use rj_core::statsmaint::SharedTableStats;
use rj_store::cluster::Cluster;

/// One registered backend's executor — binary or spec-driven.
pub enum BackendExec {
    /// The binary executor (always ISL-dispatched by the serving layer).
    Binary(Box<RankJoinExecutor>),
    /// The spec-driven executor: a two-side spec delegates to the binary
    /// path verbatim; three or more sides run the multiway cursor.
    Spec(SpecExecutor),
}

/// The statistics handle a backend's caches version against — the
/// table-pair handle for binary backends, the spec handle for multi-way
/// ones. Both expose the same coherence counters.
pub(crate) enum StatsHandle {
    /// [`SharedTableStats`] of a binary backend.
    Table(Arc<SharedTableStats>),
    /// [`SharedSpecStats`] of a multi-way backend.
    Spec(Arc<SharedSpecStats>),
}

impl StatsHandle {
    /// Current coherence version (bumped by maintained writes,
    /// invalidations, and collections).
    pub fn version(&self) -> u64 {
        match self {
            StatsHandle::Table(h) => h.version(),
            StatsHandle::Spec(h) => h.version(),
        }
    }

    /// Mutated fraction since the last full statistics pass
    /// (`f64::INFINITY` before the first).
    pub fn staleness(&self) -> f64 {
        match self {
            StatsHandle::Table(h) => h.staleness(),
            StatsHandle::Spec(h) => h.staleness(),
        }
    }
}

impl BackendExec {
    /// Whether the executor has its score index prepared or attached —
    /// the registration precondition (the serving layer executes
    /// exclusively through batch-boundary-stoppable cursors over the
    /// index).
    pub fn prepared(&self) -> bool {
        match self {
            BackendExec::Binary(b) => b.isl_table().is_some(),
            BackendExec::Spec(s) => s.prepared(),
        }
    }

    /// The canonical spec fingerprint — the arity-proof half of the
    /// share key (see the module docs).
    pub fn fingerprint(&self) -> u64 {
        match self {
            BackendExec::Binary(b) => b.query().to_spec().fingerprint(),
            BackendExec::Spec(s) => s.fingerprint(),
        }
    }

    /// The execution-configuration half of the share key: two backends
    /// share work only if both the spec *and* the way it executes match.
    pub fn config_sig(&self) -> String {
        match self {
            BackendExec::Binary(b) => {
                format!("isl:{:?}:{:?}", b.isl_config, b.execution_mode)
            }
            BackendExec::Spec(s) => match s.binary() {
                Some(b) => format!("isl:{:?}:{:?}", b.isl_config, b.execution_mode),
                None => format!("mw:{:?}:{:?}", s.config, s.access_override),
            },
        }
    }

    /// The statistics handle the backend's caches version against.
    pub(crate) fn stats(&self) -> StatsHandle {
        match self {
            BackendExec::Binary(b) => StatsHandle::Table(b.stats_handle()),
            BackendExec::Spec(s) => match s.spec_stats() {
                Some(h) => StatsHandle::Spec(h),
                None => {
                    // rjlint: allow(no-unwrap) — spec_stats() returns None only
                    // for the two-side delegation case, where binary() is Some.
                    StatsHandle::Table(s.binary().expect("two-side spec delegates").stats_handle())
                }
            },
        }
    }

    /// The executor's staleness bound (drives the serving layer's
    /// automatic background rebuilds).
    pub fn staleness_bound(&self) -> f64 {
        match self {
            BackendExec::Binary(b) => b.staleness_bound,
            BackendExec::Spec(s) => match s.binary() {
                Some(b) => b.staleness_bound,
                None => s.staleness_bound,
            },
        }
    }

    /// The cluster the executor runs on.
    pub fn cluster(&self) -> &Cluster {
        match self {
            BackendExec::Binary(b) => b.engine().cluster(),
            BackendExec::Spec(s) => s.engine().cluster(),
        }
    }

    /// Clones the executor onto `cluster` (a per-tenant metrics fork),
    /// sharing the statistics handle so cache invalidation stays
    /// coherent across forks.
    pub fn fork_onto(&self, cluster: &Cluster) -> Result<BackendExec> {
        Ok(match self {
            BackendExec::Binary(b) => BackendExec::Binary(Box::new(b.fork_onto(cluster)?)),
            BackendExec::Spec(s) => BackendExec::Spec(s.fork_onto(cluster)?),
        })
    }

    /// Opens a statistics-version-pinned cursor for the top `k`.
    pub fn open_cursor(&self, k: usize) -> Result<Box<dyn RankedCursor>> {
        match self {
            BackendExec::Binary(b) => b.open_cursor(Algorithm::Isl, k),
            BackendExec::Spec(s) => s.open_cursor(k),
        }
    }

    /// Resumes a paused cursor, refusing a version mismatch
    /// ([`rj_core::error::RankJoinError::StaleCursor`]).
    pub fn resume_cursor(&self, state: CursorState) -> Result<Box<dyn RankedCursor>> {
        match self {
            BackendExec::Binary(b) => b.resume_cursor(state),
            BackendExec::Spec(s) => s.resume_cursor(state),
        }
    }

    /// Rebuilds the score index and restarts the staleness clock with a
    /// fresh statistics pass (so a rebuild does not leave staleness
    /// unbounded and re-trigger itself every round).
    pub fn rebuild(&mut self) -> Result<()> {
        match self {
            BackendExec::Binary(b) => {
                b.prepare_isl()?;
                b.plan().map(|_| ())
            }
            BackendExec::Spec(s) => {
                s.prepare()?;
                match (s.spec_stats(), s.binary()) {
                    (Some(stats), _) => {
                        let cluster = s.engine().cluster().clone();
                        stats.stats_for_planning(&cluster, s.staleness_bound)?;
                        Ok(())
                    }
                    (None, Some(b)) => b.plan().map(|_| ()),
                    (None, None) => unreachable!("spec executor is binary or N-ary"),
                }
            }
        }
    }
}
