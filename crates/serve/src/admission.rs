//! Round selection: strict priority classes, weighted stride fairness
//! within a class, arrival order as the final tie-break.
//!
//! Kept as a pure function over plain data so the policy is unit-testable
//! without a cluster or a pool.

use crate::session::QueryPriority;

/// One queued session as the scheduler sees it.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Position in [`crate::RankJoinService`]'s session table.
    pub index: usize,
    /// Scheduling class (strict between classes).
    pub priority: QueryPriority,
    /// The owning tenant's stride pass (smaller = more underserved).
    pub tenant_pass: f64,
    /// Monotone arrival sequence number (final tie-break, FIFO).
    pub arrival: u64,
}

/// Picks up to `width` candidates: higher priority class first, then
/// smaller tenant pass, then earlier arrival. Returns their `index`
/// fields in dispatch order.
pub fn select_round(mut candidates: Vec<Candidate>, width: usize) -> Vec<usize> {
    candidates.sort_by(|a, b| {
        b.priority
            .cmp(&a.priority)
            .then_with(|| a.tenant_pass.total_cmp(&b.tenant_pass))
            .then_with(|| a.arrival.cmp(&b.arrival))
    });
    candidates.truncate(width);
    candidates.into_iter().map(|c| c.index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, priority: QueryPriority, pass: f64, arrival: u64) -> Candidate {
        Candidate {
            index,
            priority,
            tenant_pass: pass,
            arrival,
        }
    }

    #[test]
    fn interactive_always_beats_lower_classes() {
        let picked = select_round(
            vec![
                cand(0, QueryPriority::Background, 0.0, 0),
                cand(1, QueryPriority::Batch, 0.0, 1),
                cand(2, QueryPriority::Interactive, 1e9, 2),
            ],
            1,
        );
        assert_eq!(picked, vec![2], "class is strict, pass cannot override it");
    }

    #[test]
    fn within_class_smallest_pass_wins() {
        let picked = select_round(
            vec![
                cand(0, QueryPriority::Batch, 5.0, 0),
                cand(1, QueryPriority::Batch, 1.0, 1),
                cand(2, QueryPriority::Batch, 3.0, 2),
            ],
            2,
        );
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn equal_pass_falls_back_to_fifo() {
        let picked = select_round(
            vec![
                cand(0, QueryPriority::Batch, 1.0, 7),
                cand(1, QueryPriority::Batch, 1.0, 3),
            ],
            2,
        );
        assert_eq!(picked, vec![1, 0]);
    }

    #[test]
    fn width_bounds_the_round() {
        let all: Vec<Candidate> = (0..10)
            .map(|i| cand(i, QueryPriority::Batch, i as f64, i as u64))
            .collect();
        assert_eq!(select_round(all, 3), vec![0, 1, 2]);
    }
}
