//! Cross-query work sharing: the result-prefix cache.
//!
//! Every rank-join algorithm in this workspace returns its answer in one
//! deterministic total order — score descending, then `(left_key,
//! right_key)` ascending ([`JoinTuple::rank_cmp`]). Top-k is therefore
//! *prefix-monotone*: the top-`k` answer is exactly the first `k` rows of
//! any completed top-`k'` answer with `k' ≥ k`. That is the whole sharing
//! theorem this module relies on; everything else is cache bookkeeping.
//!
//! Coherence rides on the pair's shared statistics handle
//! ([`rj_core::SharedTableStats`]): every maintained write and every
//! index (re-)preparation bumps its version, and a cache entry stores the
//! version it was computed under — `PrefixEntry::serves` refuses any
//! version mismatch, so a prefix computed before a write is never served
//! after it.
//!
//! Entries are built **only from complete executions**. A cancelled or
//! deadline-stopped run holds unverified candidates (HRJN has not proven
//! them against the threshold), so stopped prefixes never enter the
//! cache.

use std::sync::Arc;

use rj_core::result::JoinTuple;

/// One backend's cached deepest completed answer.
#[derive(Clone, Debug)]
pub(crate) struct PrefixEntry {
    /// The `k` the cached execution was asked for.
    pub k: usize,
    /// The cached execution returned fewer than `k` rows, i.e. it
    /// enumerated the *entire* join — the answer then serves any `k`.
    pub exhausted: bool,
    /// The completed answer, rank-ordered.
    pub results: Arc<Vec<JoinTuple>>,
    /// [`rj_core::SharedTableStats::version`] at execution time.
    pub version: u64,
}

impl PrefixEntry {
    /// Builds an entry from a completed execution at depth `k`.
    pub fn from_completed(k: usize, results: Arc<Vec<JoinTuple>>, version: u64) -> Self {
        PrefixEntry {
            k,
            exhausted: results.len() < k,
            results,
            version,
        }
    }

    /// Whether this entry answers a fresh query at depth `k` under the
    /// backend's *current* statistics version.
    pub fn serves(&self, k: usize, current_version: u64) -> bool {
        self.version == current_version && (k <= self.k || self.exhausted)
    }

    /// The first `k` rows (everything, if the join has fewer results).
    /// Full-depth requests alias the cached allocation.
    pub fn prefix(&self, k: usize) -> Arc<Vec<JoinTuple>> {
        if k >= self.results.len() {
            Arc::clone(&self.results)
        } else {
            Arc::new(self.results[..k].to_vec())
        }
    }

    /// Whether `candidate` should replace `current` as the cached entry:
    /// anything beats nothing, a current-version entry beats a stale one,
    /// and within the same version deeper answers win.
    pub fn improves_on(&self, current: Option<&PrefixEntry>, current_version: u64) -> bool {
        if self.version != current_version {
            return false;
        }
        match current {
            None => true,
            Some(entry) => entry.version != current_version || self.k > entry.k || self.exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(score: f64, tag: u8) -> JoinTuple {
        JoinTuple {
            left_key: vec![tag],
            right_key: vec![tag],
            join_value: vec![tag],
            left_score: score,
            right_score: score,
            score,
        }
    }

    fn entry(k: usize, rows: usize, version: u64) -> PrefixEntry {
        let results: Vec<JoinTuple> = (0..rows)
            .map(|i| tuple(1.0 - i as f64 * 0.01, i as u8))
            .collect();
        PrefixEntry::from_completed(k, Arc::new(results), version)
    }

    #[test]
    fn serves_shallower_k_at_same_version_only() {
        let e = entry(10, 10, 3);
        assert!(e.serves(10, 3));
        assert!(e.serves(1, 3));
        assert!(!e.serves(11, 3), "deeper than cached");
        assert!(!e.serves(5, 4), "version moved — never serve stale");
    }

    #[test]
    fn exhausted_answer_serves_any_depth() {
        // Asked for 100, got 7: the whole join is 7 rows.
        let e = entry(100, 7, 0);
        assert!(e.exhausted);
        assert!(e.serves(5000, 0));
        assert_eq!(e.prefix(5000).len(), 7);
    }

    #[test]
    fn prefix_is_the_leading_rows() {
        let e = entry(10, 10, 0);
        let p = e.prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], e.results[0]);
        assert_eq!(p[2], e.results[2]);
        // Full-depth requests share the allocation instead of copying.
        assert!(Arc::ptr_eq(&e.prefix(10), &e.results));
    }

    #[test]
    fn replacement_prefers_fresh_then_deeper() {
        let shallow = entry(5, 5, 1);
        let deep = entry(9, 9, 1);
        let stale = entry(50, 50, 0);
        assert!(deep.improves_on(Some(&shallow), 1));
        assert!(!shallow.improves_on(Some(&deep), 1));
        assert!(shallow.improves_on(Some(&stale), 1), "fresh beats stale");
        assert!(!stale.improves_on(Some(&shallow), 1), "stale never enters");
        assert!(deep.improves_on(None, 1));
    }
}
