//! Cross-query work sharing: the partial-work cache.
//!
//! Every rank-join algorithm in this workspace returns its answer in one
//! deterministic total order — score descending, then `(left_key,
//! right_key)` ascending ([`JoinTuple::rank_cmp`]). Top-k is therefore
//! *prefix-monotone*: the top-`k` answer is exactly the first `k` rows of
//! any completed top-`k'` answer with `k' ≥ k`. That is the whole sharing
//! theorem the **completed side** of the cache relies on; everything else
//! is cache bookkeeping.
//!
//! Since PR 8 the cache holds two kinds of reusable work per backend:
//!
//! * `PrefixEntry` — a *completed* answer at depth `k`. Serves any
//!   later `k' ≤ k` query for free. Built only from complete executions:
//!   a cancelled or deadline-stopped run holds unverified candidates
//!   (HRJN has not proven them against the threshold), so stopped
//!   *results* are never served from the cache.
//! * `WarmEntry` — a paused [`CursorState`] at descent depth `d`. A
//!   stopped run's results are unverified, but its *work* is not wasted:
//!   the consumed-tuple log can be re-targeted to any deeper `k'`
//!   ([`CursorState::resume_retargeted`]) and the warmed execution is
//!   billed only what it reads beyond the donor's prefix. Completed ISL
//!   executions donate their final state too — that is what lets a later
//!   `k' > k` query warm-start instead of descending from scratch.
//!
//! Coherence rides on the pair's shared statistics handle
//! ([`rj_core::SharedTableStats`]): every maintained write and every
//! index (re-)preparation bumps its version, and both entry kinds store
//! the version they were computed under — a version mismatch refuses the
//! entry, so work computed before a write is never reused after it.

use std::sync::Arc;

use rj_core::cursor::CursorState;
use rj_core::result::JoinTuple;

/// One backend's cached deepest completed answer.
#[derive(Clone, Debug)]
pub(crate) struct PrefixEntry {
    /// The `k` the cached execution was asked for.
    pub k: usize,
    /// The cached execution returned fewer than `k` rows, i.e. it
    /// enumerated the *entire* join — the answer then serves any `k`.
    pub exhausted: bool,
    /// The completed answer, rank-ordered.
    pub results: Arc<Vec<JoinTuple>>,
    /// [`rj_core::SharedTableStats::version`] at execution time.
    pub version: u64,
}

impl PrefixEntry {
    /// Builds an entry from a completed execution at depth `k`.
    pub fn from_completed(k: usize, results: Arc<Vec<JoinTuple>>, version: u64) -> Self {
        PrefixEntry {
            k,
            exhausted: results.len() < k,
            results,
            version,
        }
    }

    /// Whether this entry answers a fresh query at depth `k` under the
    /// backend's *current* statistics version.
    pub fn serves(&self, k: usize, current_version: u64) -> bool {
        self.version == current_version && (k <= self.k || self.exhausted)
    }

    /// The first `k` rows (everything, if the join has fewer results).
    /// Full-depth requests alias the cached allocation.
    pub fn prefix(&self, k: usize) -> Arc<Vec<JoinTuple>> {
        if k >= self.results.len() {
            Arc::clone(&self.results)
        } else {
            Arc::new(self.results[..k].to_vec())
        }
    }

    /// Whether `candidate` should replace `current` as the cached entry:
    /// anything beats nothing, a current-version entry beats a stale one,
    /// and within the same version deeper answers win.
    pub fn improves_on(&self, current: Option<&PrefixEntry>, current_version: u64) -> bool {
        if self.version != current_version {
            return false;
        }
        match current {
            None => true,
            Some(entry) => entry.version != current_version || self.k > entry.k || self.exhausted,
        }
    }
}

/// A paused execution donated to the cache: the cursor state of an ISL
/// descent (stopped mid-flight, or completed at its target `k`), reusable
/// as a warm start for any later query on the same backend.
#[derive(Clone, Debug)]
pub(crate) struct WarmEntry {
    /// The donated descent state; always [`CursorState::supports_retarget`].
    pub state: CursorState,
    /// [`rj_core::SharedTableStats::version`] at execution time.
    pub version: u64,
    /// Input depth the donor consumed — deeper donors warm more.
    pub depth: u64,
}

impl WarmEntry {
    /// Whether this entry can warm a fresh query under the backend's
    /// *current* statistics version.
    pub fn usable(&self, current_version: u64) -> bool {
        self.version == current_version
    }

    /// Whether `self` should replace `current`: same freshness rules as
    /// the completed side, and within the same version deeper descents
    /// win (they warm strictly more).
    pub fn improves_on(&self, current: Option<&WarmEntry>, current_version: u64) -> bool {
        if self.version != current_version {
            return false;
        }
        match current {
            None => true,
            Some(entry) => entry.version != current_version || self.depth > entry.depth,
        }
    }
}

/// One backend's cached reusable work: the deepest completed answer and
/// the deepest donated descent state. Either side may be empty; both are
/// version-guarded independently.
#[derive(Debug, Default)]
pub(crate) struct PartialWork {
    /// Deepest completed answer (serves shallower queries outright).
    pub completed: Option<PrefixEntry>,
    /// Deepest donated cursor state (warm-starts deeper queries).
    pub warm: Option<WarmEntry>,
}

impl PartialWork {
    /// Installs `entry` on the completed side if it improves the cache.
    pub fn offer_completed(&mut self, entry: PrefixEntry, current_version: u64) {
        if entry.improves_on(self.completed.as_ref(), current_version) {
            self.completed = Some(entry);
        }
    }

    /// Installs `entry` on the warm side if it improves the cache.
    pub fn offer_warm(&mut self, entry: WarmEntry, current_version: u64) {
        if entry.improves_on(self.warm.as_ref(), current_version) {
            self.warm = Some(entry);
        }
    }

    /// The warm entry, if it is usable at the current version.
    pub fn usable_warm(&self, current_version: u64) -> Option<&WarmEntry> {
        self.warm.as_ref().filter(|w| w.usable(current_version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(score: f64, tag: u8) -> JoinTuple {
        JoinTuple {
            left_key: vec![tag],
            right_key: vec![tag],
            join_value: vec![tag],
            left_score: score,
            right_score: score,
            inner: Vec::new(),
            score,
        }
    }

    fn entry(k: usize, rows: usize, version: u64) -> PrefixEntry {
        let results: Vec<JoinTuple> = (0..rows)
            .map(|i| tuple(1.0 - i as f64 * 0.01, i as u8))
            .collect();
        PrefixEntry::from_completed(k, Arc::new(results), version)
    }

    #[test]
    fn serves_shallower_k_at_same_version_only() {
        let e = entry(10, 10, 3);
        assert!(e.serves(10, 3));
        assert!(e.serves(1, 3));
        assert!(!e.serves(11, 3), "deeper than cached");
        assert!(!e.serves(5, 4), "version moved — never serve stale");
    }

    #[test]
    fn exhausted_answer_serves_any_depth() {
        // Asked for 100, got 7: the whole join is 7 rows.
        let e = entry(100, 7, 0);
        assert!(e.exhausted);
        assert!(e.serves(5000, 0));
        assert_eq!(e.prefix(5000).len(), 7);
    }

    #[test]
    fn prefix_is_the_leading_rows() {
        let e = entry(10, 10, 0);
        let p = e.prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], e.results[0]);
        assert_eq!(p[2], e.results[2]);
        // Full-depth requests share the allocation instead of copying.
        assert!(Arc::ptr_eq(&e.prefix(10), &e.results));
    }

    #[test]
    fn replacement_prefers_fresh_then_deeper() {
        let shallow = entry(5, 5, 1);
        let deep = entry(9, 9, 1);
        let stale = entry(50, 50, 0);
        assert!(deep.improves_on(Some(&shallow), 1));
        assert!(!shallow.improves_on(Some(&deep), 1));
        assert!(shallow.improves_on(Some(&stale), 1), "fresh beats stale");
        assert!(!stale.improves_on(Some(&shallow), 1), "stale never enters");
        assert!(deep.improves_on(None, 1));
    }
}
