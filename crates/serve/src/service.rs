//! The serving orchestrator: sessions in, scheduling rounds out.
//!
//! A [`RankJoinService`] is driven by explicit **scheduling rounds**
//! ([`RankJoinService::run_round`]): each round serves every valid
//! prefix-cache hit, admits up to [`ServeConfig::round_width`] queued
//! sessions (strict priority classes, weighted stride fairness inside a
//! class — see [`crate::admission`]), executes one pool job per backend
//! group at the pool's foreground class, then runs any queued index
//! rebuilds at the background class. The service's simulated clock
//! advances by the round's makespan (the slowest group, mirroring the
//! store's parallel-round accounting), which is what makes fairness and
//! sharing effects measurable: sojourn = completion clock − submit clock.
//!
//! Rounds are intended to be driven from one thread (a benchmark loop or
//! a dispatcher); `submit`, `poll`, and `cancel` may be called
//! concurrently from any thread — the service lock is *released* while a
//! round executes on the pool, and in-flight executions observe
//! cancellation at batch boundaries through their session's
//! [`rj_core::cancel::CancelToken`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rj_core::cancel::{run_isl_cancellable, CancellableRun, StopPolicy, StopReason};
use rj_core::executor::RankJoinExecutor;
use rj_core::result::JoinTuple;
use rj_core::statsmaint::SharedTableStats;
use rj_store::cluster::Cluster;
use rj_store::metrics::MetricsSnapshot;
use rj_store::pool::{PoolPriority, WorkStealingPool};

use crate::admission::{select_round, Candidate};
use crate::error::ServeError;
use crate::session::{
    ServedBy, SessionId, SessionOutcome, SessionResult, SessionStatus, SubmitOptions,
};
use crate::sharing::PrefixEntry;
use crate::tenant::{accumulate, TenantId, TenantProfile, TenantState};

/// Opaque handle of one registered query backend — a join pair plus the
/// execution configuration of the prototype executor it was registered
/// with. Work sharing coalesces sessions *within* one backend only, so
/// the backend is the `(pair, mode)` share key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(usize);

/// Service-wide tuning.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum sessions dispatched per scheduling round (prefix-cache
    /// hits are served on top of this — they occupy no execution slot).
    pub round_width: usize,
    /// Admission bound: a tenant with this many sessions already queued
    /// has further submits rejected with [`ServeError::QueueFull`].
    pub max_queue_per_tenant: usize,
    /// Enables cross-query work sharing (coalescing + the result-prefix
    /// cache). Off, every session runs its own execution — the control
    /// arm of the `serve` benchmark.
    pub sharing: bool,
    /// Dedicated pool width, or `None` to share the process-wide
    /// [`WorkStealingPool::global`] pool.
    pub pool_threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            round_width: 4,
            max_queue_per_tenant: 64,
            sharing: true,
            pool_threads: None,
        }
    }
}

/// Monotone service observables (all since service creation).
#[derive(Clone, Debug, Default)]
pub struct ServeCounters {
    /// Sessions accepted by admission.
    pub submitted: u64,
    /// Submits rejected by the per-tenant queue bound.
    pub rejected: u64,
    /// Sessions that reached [`SessionOutcome::Complete`].
    pub completed: u64,
    /// Sessions that ended [`SessionOutcome::Cancelled`].
    pub cancelled: u64,
    /// Sessions that ended [`SessionOutcome::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Sessions that ended [`SessionOutcome::Failed`].
    pub failed: u64,
    /// Query executions actually run (a coalesced group counts one).
    pub executions: u64,
    /// Sessions served by coalescing onto a concurrent execution.
    pub coalesced: u64,
    /// Sessions served from the result-prefix cache.
    pub cache_hits: u64,
    /// Scheduling rounds run.
    pub rounds: u64,
    /// Background index rebuilds completed.
    pub maintenance_runs: u64,
    /// Background index rebuilds that failed.
    pub maintenance_failures: u64,
}

/// What one [`RankJoinService::run_round`] call did.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Sessions dispatched into execution groups this round.
    pub dispatched: usize,
    /// Sessions that reached a terminal state this round (including
    /// prefix-cache hits).
    pub completed: usize,
    /// Sessions sent back to the queue (their coalesced leader stopped
    /// before completing).
    pub requeued: usize,
    /// Simulated seconds the round advanced the service clock by — the
    /// makespan over this round's backend groups.
    pub sim_seconds: f64,
    /// Background index rebuilds run after the query groups.
    pub maintenance_runs: usize,
}

/// Per-(tenant, backend) execution context: a metrics fork of the base
/// cluster and an executor clone bound to it. Everything a pool job
/// needs, shared immutably.
struct TenantFork {
    cluster: Cluster,
    executor: RankJoinExecutor,
}

struct BackendState {
    /// The registered executor; mutated only by background rebuilds.
    prototype: Arc<Mutex<RankJoinExecutor>>,
    /// The pair's shared statistics handle — the coherence backbone:
    /// maintained writes and re-preparations bump its version, which
    /// invalidates the prefix entry below.
    stats: Arc<SharedTableStats>,
    /// Lazily created per-tenant execution forks.
    forks: HashMap<TenantId, Arc<TenantFork>>,
    /// Deepest completed answer at its statistics version.
    prefix: Option<PrefixEntry>,
}

enum RecState {
    Queued,
    Running,
    Done(SessionResult),
}

struct SessionRecord {
    tenant: TenantId,
    backend: BackendId,
    opts: SubmitOptions,
    token: rj_core::cancel::CancelToken,
    submitted_at: f64,
    arrival: u64,
    state: RecState,
}

struct ServiceState {
    clock: f64,
    next_session: u64,
    next_arrival: u64,
    tenants: Vec<TenantState>,
    backends: Vec<BackendState>,
    sessions: HashMap<u64, SessionRecord>,
    maintenance: VecDeque<usize>,
    counters: ServeCounters,
    charged_total: MetricsSnapshot,
}

enum PoolRef {
    Global,
    Owned(WorkStealingPool),
}

impl PoolRef {
    fn get(&self) -> &WorkStealingPool {
        match self {
            PoolRef::Global => WorkStealingPool::global(),
            PoolRef::Owned(pool) => pool,
        }
    }
}

/// One session's slice of a dispatch group (built under the service
/// lock, executed without it).
struct SessPlan {
    id: u64,
    k: usize,
    policy: StopPolicy,
    fork: Arc<TenantFork>,
}

/// One backend's dispatch group for a round.
struct GroupPlan {
    backend: usize,
    /// Statistics version sampled at dispatch; a prefix computed by this
    /// group is cached only if the version is still current when the
    /// round is applied (no maintained write raced the execution).
    version: u64,
    /// Sessions sorted deepest-`k` first; under sharing the first
    /// non-cancelled session executes for the whole group.
    sessions: Vec<SessPlan>,
    sharing: bool,
}

/// A terminal session outcome produced off-lock by a group job.
struct SessFinal {
    id: u64,
    outcome: SessionOutcome,
    results: Arc<Vec<JoinTuple>>,
    charged: MetricsSnapshot,
    served_by: ServedBy,
}

struct GroupOutput {
    finals: Vec<SessFinal>,
    requeue: Vec<u64>,
    backend: usize,
    /// Simulated seconds this group's executions charged (sequential
    /// within the group).
    sim: f64,
    prefix: Option<PrefixEntry>,
    executions: u64,
    coalesced: u64,
}

/// The multi-tenant serving front-end. See the crate docs for the model.
pub struct RankJoinService {
    config: ServeConfig,
    pool: PoolRef,
    state: Mutex<ServiceState>,
}

impl RankJoinService {
    /// Creates a service with no tenants or backends registered.
    pub fn new(config: ServeConfig) -> Self {
        let pool = match config.pool_threads {
            Some(threads) => PoolRef::Owned(WorkStealingPool::new(threads)),
            None => PoolRef::Global,
        };
        RankJoinService {
            config,
            pool,
            state: Mutex::new(ServiceState {
                clock: 0.0,
                next_session: 0,
                next_arrival: 0,
                tenants: Vec::new(),
                backends: Vec::new(),
                sessions: HashMap::new(),
                maintenance: VecDeque::new(),
                counters: ServeCounters::default(),
                charged_total: MetricsSnapshot::default(),
            }),
        }
    }

    /// Registers a query backend from a prototype executor. The executor
    /// must have an ISL index prepared or attached (the serving layer
    /// executes through the cancellable ISL path); its query pair, ISL
    /// config, and execution mode define the backend — and thereby the
    /// share key for coalescing and the prefix cache.
    pub fn register_backend(&self, executor: RankJoinExecutor) -> Result<BackendId, ServeError> {
        if executor.isl_table().is_none() {
            return Err(ServeError::NotIslPrepared);
        }
        let stats = executor.stats_handle();
        let mut st = self.lock();
        let id = st.backends.len();
        st.backends.push(BackendState {
            prototype: Arc::new(Mutex::new(executor)),
            stats,
            forks: HashMap::new(),
            prefix: None,
        });
        Ok(BackendId(id))
    }

    /// Registers a tenant. `weight` sets its fair share (must be finite
    /// and strictly positive); a new tenant joins at the minimum pass of
    /// the existing tenants so it competes immediately without draining
    /// an unbounded backlog of "missed" service.
    pub fn register_tenant(&self, name: &str, weight: f64) -> Result<TenantId, ServeError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(ServeError::InvalidWeight(weight));
        }
        let mut st = self.lock();
        let join_pass = st
            .tenants
            .iter()
            .map(|t| t.pass)
            .fold(f64::INFINITY, f64::min);
        let join_pass = if join_pass.is_finite() {
            join_pass
        } else {
            0.0
        };
        let id = st.tenants.len();
        st.tenants.push(TenantState::new(
            TenantProfile {
                name: name.to_owned(),
                weight,
            },
            join_pass,
        ));
        Ok(TenantId(id))
    }

    /// Submits a query session. Admission control may reject it
    /// synchronously ([`ServeError::QueueFull`]); an accepted session is
    /// queued until a scheduling round serves it.
    pub fn submit(
        &self,
        tenant: TenantId,
        backend: BackendId,
        opts: SubmitOptions,
    ) -> Result<SessionId, ServeError> {
        let mut st = self.lock();
        if backend.0 >= st.backends.len() {
            return Err(ServeError::UnknownBackend);
        }
        let max_queue = self.config.max_queue_per_tenant;
        let clock = st.clock;
        let tenant_state = st
            .tenants
            .get_mut(tenant.0)
            .ok_or(ServeError::UnknownTenant)?;
        if tenant_state.queued >= max_queue {
            st.counters.rejected += 1;
            let name = st.tenants[tenant.0].profile.name.clone();
            return Err(ServeError::QueueFull { tenant: name });
        }
        tenant_state.queued += 1;
        let id = st.next_session;
        st.next_session += 1;
        let arrival = st.next_arrival;
        st.next_arrival += 1;
        st.sessions.insert(
            id,
            SessionRecord {
                tenant,
                backend,
                opts,
                token: rj_core::cancel::CancelToken::new(),
                submitted_at: clock,
                arrival,
                state: RecState::Queued,
            },
        );
        st.counters.submitted += 1;
        Ok(SessionId(id))
    }

    /// Reports a session's current status.
    pub fn poll(&self, session: SessionId) -> Result<SessionStatus, ServeError> {
        let st = self.lock();
        let record = st
            .sessions
            .get(&session.0)
            .ok_or(ServeError::UnknownSession)?;
        Ok(match &record.state {
            RecState::Queued => SessionStatus::Queued,
            RecState::Running => SessionStatus::Running,
            RecState::Done(result) => SessionStatus::Done(result.clone()),
        })
    }

    /// Cancels a session. A still-queued session terminates immediately
    /// with zero charge; a running one stops at its next batch boundary
    /// (its result then reports [`SessionOutcome::Cancelled`] and the
    /// consumed prefix's charge). Cancelling a finished session is a
    /// no-op.
    pub fn cancel(&self, session: SessionId) -> Result<(), ServeError> {
        let mut st = self.lock();
        let record = st
            .sessions
            .get(&session.0)
            .ok_or(ServeError::UnknownSession)?;
        record.token.cancel();
        if matches!(record.state, RecState::Queued) {
            let clock = st.clock;
            Self::finalize(
                &mut st,
                SessFinal {
                    id: session.0,
                    outcome: SessionOutcome::Cancelled,
                    results: Arc::new(Vec::new()),
                    charged: MetricsSnapshot::default(),
                    served_by: ServedBy::Unserved,
                },
                clock,
                true,
            );
        }
        Ok(())
    }

    /// Queues a background rebuild of the backend's ISL index. It runs at
    /// the pool's background class at the end of the next round, and (via
    /// the re-preparation's statistics invalidation) coherently
    /// invalidates the backend's prefix cache and every sharer's plans.
    pub fn schedule_rebuild(&self, backend: BackendId) -> Result<(), ServeError> {
        let mut st = self.lock();
        if backend.0 >= st.backends.len() {
            return Err(ServeError::UnknownBackend);
        }
        st.maintenance.push_back(backend.0);
        Ok(())
    }

    /// The service's simulated clock (seconds).
    pub fn clock(&self) -> f64 {
        self.lock().clock
    }

    /// Advances the clock to at least `t` — how an open-loop driver
    /// models idle time between arrivals. Never moves the clock backward.
    pub fn advance_clock_to(&self, t: f64) {
        let mut st = self.lock();
        st.clock = st.clock.max(t);
    }

    /// Snapshot of the service counters.
    pub fn counters(&self) -> ServeCounters {
        self.lock().counters.clone()
    }

    /// Everything this tenant's executions charged, read from its
    /// per-backend fork ledgers (the metering ground truth).
    pub fn tenant_usage(&self, tenant: TenantId) -> Result<MetricsSnapshot, ServeError> {
        let st = self.lock();
        if tenant.0 >= st.tenants.len() {
            return Err(ServeError::UnknownTenant);
        }
        let mut total = MetricsSnapshot::default();
        for backend in &st.backends {
            if let Some(fork) = backend.forks.get(&tenant) {
                accumulate(&mut total, &fork.cluster.metrics().snapshot());
            }
        }
        Ok(total)
    }

    /// Sum of every tenant's fork ledgers — the cluster-side total of
    /// metered serving work.
    pub fn total_usage(&self) -> MetricsSnapshot {
        let st = self.lock();
        let mut total = MetricsSnapshot::default();
        for backend in &st.backends {
            for fork in backend.forks.values() {
                accumulate(&mut total, &fork.cluster.metrics().snapshot());
            }
        }
        total
    }

    /// Sum of the charges billed to this tenant's finished sessions.
    /// Conservation: equals [`RankJoinService::tenant_usage`] once no
    /// session of the tenant is in flight.
    pub fn tenant_charged(&self, tenant: TenantId) -> Result<MetricsSnapshot, ServeError> {
        let st = self.lock();
        st.tenants
            .get(tenant.0)
            .map(|t| t.charged)
            .ok_or(ServeError::UnknownTenant)
    }

    /// Sum of the charges billed across all finished sessions —
    /// conservation partner of [`RankJoinService::total_usage`].
    pub fn charged_total(&self) -> MetricsSnapshot {
        self.lock().charged_total
    }

    /// Runs scheduling rounds until no session is queued and no
    /// maintenance is pending. Terminates: every round finalizes its
    /// group leaders, so the queue strictly shrinks across rounds.
    pub fn run_until_idle(&self) -> Result<Vec<RoundReport>, ServeError> {
        let mut reports = Vec::new();
        loop {
            {
                let st = self.lock();
                let queued = st
                    .sessions
                    .values()
                    .any(|s| matches!(s.state, RecState::Queued));
                if !queued && st.maintenance.is_empty() {
                    return Ok(reports);
                }
            }
            reports.push(self.run_round()?);
        }
    }

    /// Runs one scheduling round. See the module docs for the phases.
    pub fn run_round(&self) -> Result<RoundReport, ServeError> {
        let mut report = RoundReport::default();

        // Phase 1 (locked): serve cache hits, select, plan groups.
        let (groups, maintenance) = {
            let mut st = self.lock();
            st.counters.rounds += 1;
            if self.config.sharing {
                report.completed += Self::serve_cache_hits(&mut st);
            }
            let picked = Self::pick_round(&st, self.config.round_width);
            report.dispatched = picked.len();
            let groups = Self::plan_groups(&mut st, &picked, self.config.sharing)?;
            let pending: Vec<usize> = st.maintenance.drain(..).collect();
            let maintenance: Vec<(usize, Arc<Mutex<RankJoinExecutor>>)> = pending
                .into_iter()
                .map(|b| (b, Arc::clone(&st.backends[b].prototype)))
                .collect();
            (groups, maintenance)
        };

        // Phase 2 (unlocked): query groups at foreground, then index
        // rebuilds at background. The pool parallelizes across groups;
        // sessions within a group run sequentially on their forks so
        // per-session ledger deltas never interleave.
        let outputs: Vec<GroupOutput> = self.pool.get().run_batch(
            groups
                .into_iter()
                .map(|group| {
                    Box::new(move || run_group(group)) as Box<dyn FnOnce() -> GroupOutput + Send>
                })
                .collect(),
        );
        report.maintenance_runs = maintenance.len();
        let maint_results: Vec<Result<(), String>> = self.pool.get().run_batch_at(
            PoolPriority::Background,
            maintenance
                .into_iter()
                .map(|(_, prototype)| {
                    Box::new(move || {
                        prototype
                            .lock()
                            .expect("backend prototype poisoned")
                            .prepare_isl()
                            .map(|_| ())
                            .map_err(|e| e.to_string())
                    }) as Box<dyn FnOnce() -> Result<(), String> + Send>
                })
                .collect(),
        );

        // Phase 3 (locked): advance the clock by the round makespan and
        // apply every outcome.
        let mut st = self.lock();
        let wall = outputs.iter().map(|o| o.sim).fold(0.0, f64::max);
        st.clock += wall;
        report.sim_seconds = wall;
        let clock = st.clock;
        for output in outputs {
            st.counters.executions += output.executions;
            st.counters.coalesced += output.coalesced;
            for final_ in output.finals {
                report.completed += 1;
                Self::finalize(&mut st, final_, clock, false);
            }
            for id in output.requeue {
                report.requeued += 1;
                if let Some(record) = st.sessions.get_mut(&id) {
                    record.state = RecState::Queued;
                    let tenant = record.tenant.0;
                    st.tenants[tenant].queued += 1;
                }
            }
            if let Some(prefix) = output.prefix {
                let backend = &mut st.backends[output.backend];
                if prefix.improves_on(backend.prefix.as_ref(), backend.stats.version()) {
                    backend.prefix = Some(prefix);
                }
            }
        }
        for result in maint_results {
            match result {
                Ok(()) => st.counters.maintenance_runs += 1,
                Err(_) => st.counters.maintenance_failures += 1,
            }
        }
        Ok(report)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.state.lock().expect("service state poisoned")
    }

    /// Serves every queued session a current-version prefix-cache entry
    /// can answer. Free work: no execution slot, no charge, completion
    /// at the current clock.
    fn serve_cache_hits(st: &mut ServiceState) -> usize {
        let clock = st.clock;
        let mut ids: Vec<u64> = st
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, RecState::Queued))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        let mut served = 0;
        for id in ids {
            let record = &st.sessions[&id];
            let backend = &st.backends[record.backend.0];
            let Some(prefix) = backend.prefix.as_ref() else {
                continue;
            };
            if !prefix.serves(record.opts.k, backend.stats.version()) {
                continue;
            }
            let results = prefix.prefix(record.opts.k);
            st.counters.cache_hits += 1;
            Self::finalize(
                st,
                SessFinal {
                    id,
                    outcome: SessionOutcome::Complete,
                    results,
                    charged: MetricsSnapshot::default(),
                    served_by: ServedBy::PrefixCache,
                },
                clock,
                true,
            );
            served += 1;
        }
        served
    }

    /// Builds the admission candidate list and picks the round.
    fn pick_round(st: &ServiceState, width: usize) -> Vec<u64> {
        let candidates: Vec<Candidate> = st
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, RecState::Queued))
            .map(|(id, s)| Candidate {
                index: *id as usize,
                priority: s.opts.priority,
                tenant_pass: st.tenants[s.tenant.0].pass,
                arrival: s.arrival,
            })
            .collect();
        select_round(candidates, width)
            .into_iter()
            .map(|i| i as u64)
            .collect()
    }

    /// Marks the picked sessions running and groups them per backend,
    /// deepest `k` first, resolving each session's (tenant, backend)
    /// execution fork.
    fn plan_groups(
        st: &mut ServiceState,
        picked: &[u64],
        sharing: bool,
    ) -> Result<Vec<GroupPlan>, ServeError> {
        let mut by_backend: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for id in picked {
            let record = st.sessions.get_mut(id).expect("picked session exists");
            record.state = RecState::Running;
            st.tenants[record.tenant.0].queued -= 1;
            by_backend.entry(record.backend.0).or_default().push(*id);
        }
        let mut groups = Vec::with_capacity(by_backend.len());
        for (backend_idx, mut ids) in by_backend {
            ids.sort_by_key(|id| {
                let s = &st.sessions[id];
                (std::cmp::Reverse(s.opts.k), s.arrival)
            });
            let version = st.backends[backend_idx].stats.version();
            let mut sessions = Vec::with_capacity(ids.len());
            for id in ids {
                let (tenant, opts, token) = {
                    let s = &st.sessions[&id];
                    (s.tenant, s.opts.clone(), s.token.clone())
                };
                let fork = Self::fork_for(st, backend_idx, tenant)?;
                sessions.push(SessPlan {
                    id,
                    k: opts.k,
                    policy: StopPolicy {
                        token,
                        deadline_sim_seconds: opts.deadline_sim_seconds,
                        cancel_after_batches: opts.cancel_after_batches,
                    },
                    fork,
                });
            }
            groups.push(GroupPlan {
                backend: backend_idx,
                version,
                sessions,
                sharing,
            });
        }
        Ok(groups)
    }

    /// The lazily-created per-(tenant, backend) execution fork.
    fn fork_for(
        st: &mut ServiceState,
        backend_idx: usize,
        tenant: TenantId,
    ) -> Result<Arc<TenantFork>, ServeError> {
        if let Some(fork) = st.backends[backend_idx].forks.get(&tenant) {
            return Ok(Arc::clone(fork));
        }
        let prototype = Arc::clone(&st.backends[backend_idx].prototype);
        let proto = prototype.lock().expect("backend prototype poisoned");
        let cluster = proto.engine().cluster().fork_metrics();
        let executor = proto.fork_onto(&cluster)?;
        drop(proto);
        let fork = Arc::new(TenantFork { cluster, executor });
        st.backends[backend_idx]
            .forks
            .insert(tenant, Arc::clone(&fork));
        Ok(fork)
    }

    /// Applies one terminal outcome: stores the result, bills the
    /// tenant, advances its stride pass, and bumps outcome counters.
    /// `from_queue` distinguishes sessions that never left the queue
    /// (their `queued` count still needs releasing).
    fn finalize(st: &mut ServiceState, final_: SessFinal, clock: f64, from_queue: bool) {
        let Some(record) = st.sessions.get_mut(&final_.id) else {
            return;
        };
        if from_queue {
            st.tenants[record.tenant.0].queued -= 1;
        }
        let tenant = record.tenant.0;
        let submitted_at = record.submitted_at;
        record.state = RecState::Done(SessionResult {
            outcome: final_.outcome.clone(),
            results: final_.results,
            charged: final_.charged,
            served_by: final_.served_by,
            submitted_at,
            completed_at: clock,
        });
        accumulate(&mut st.tenants[tenant].charged, &final_.charged);
        accumulate(&mut st.charged_total, &final_.charged);
        let weight = st.tenants[tenant].profile.weight;
        st.tenants[tenant].pass += final_.charged.sim_seconds / weight;
        match final_.outcome {
            SessionOutcome::Complete => st.counters.completed += 1,
            SessionOutcome::Cancelled => st.counters.cancelled += 1,
            SessionOutcome::DeadlineExpired => st.counters.deadline_expired += 1,
            SessionOutcome::Failed(_) => st.counters.failed += 1,
        }
    }
}

/// Executes one backend group on the calling pool worker. Sharing on:
/// the first non-cancelled session (deepest `k`) executes for the whole
/// group, later sessions take prefixes of its answer; if it stops early
/// the rest are requeued. Sharing off: every session executes itself.
fn run_group(plan: GroupPlan) -> GroupOutput {
    let mut out = GroupOutput {
        finals: Vec::with_capacity(plan.sessions.len()),
        requeue: Vec::new(),
        backend: plan.backend,
        sim: 0.0,
        prefix: None,
        executions: 0,
        coalesced: 0,
    };
    let mut leader: Option<(usize, Arc<Vec<JoinTuple>>)> = None;
    let mut rest = plan.sessions.iter();
    for sess in rest.by_ref() {
        if sess.policy.token.is_cancelled() {
            out.finals.push(cancelled_unserved(sess.id));
            continue;
        }
        if !plan.sharing {
            let final_ = execute_one(sess);
            out.executions += 1;
            out.sim += final_.charged.sim_seconds;
            out.finals.push(final_);
            continue;
        }
        let final_ = execute_one(sess);
        out.executions += 1;
        out.sim += final_.charged.sim_seconds;
        let complete = matches!(final_.outcome, SessionOutcome::Complete);
        if complete {
            leader = Some((sess.k, Arc::clone(&final_.results)));
            out.prefix = Some(PrefixEntry::from_completed(
                sess.k,
                Arc::clone(&final_.results),
                plan.version,
            ));
        }
        out.finals.push(final_);
        if complete {
            break;
        }
        // The would-be leader stopped (cancelled / deadline / failed):
        // its followers go back to the queue rather than inherit an
        // unverified prefix.
        for waiting in rest.by_ref() {
            if waiting.policy.token.is_cancelled() {
                out.finals.push(cancelled_unserved(waiting.id));
            } else {
                out.requeue.push(waiting.id);
            }
        }
        return out;
    }
    if let Some((leader_k, results)) = leader {
        let entry = PrefixEntry::from_completed(leader_k, results, plan.version);
        for sess in rest {
            if sess.policy.token.is_cancelled() {
                out.finals.push(cancelled_unserved(sess.id));
                continue;
            }
            out.coalesced += 1;
            out.finals.push(SessFinal {
                id: sess.id,
                outcome: SessionOutcome::Complete,
                results: entry.prefix(sess.k),
                charged: MetricsSnapshot::default(),
                served_by: ServedBy::SharedExecution,
            });
        }
    }
    out
}

fn cancelled_unserved(id: u64) -> SessFinal {
    SessFinal {
        id,
        outcome: SessionOutcome::Cancelled,
        results: Arc::new(Vec::new()),
        charged: MetricsSnapshot::default(),
        served_by: ServedBy::Unserved,
    }
}

/// Runs one session's query on its own fork, billing it the fork's
/// exact ledger delta.
fn execute_one(sess: &SessPlan) -> SessFinal {
    let fork = &sess.fork;
    let executor = &fork.executor;
    let table = executor
        .isl_table()
        .expect("backend validated at registration")
        .to_owned();
    let query = executor.query().with_k(sess.k);
    let before = fork.cluster.metrics().snapshot();
    let run = run_isl_cancellable(
        &fork.cluster,
        &query,
        &table,
        executor.isl_config,
        executor.execution_mode,
        &sess.policy,
    );
    let charged = fork.cluster.metrics().snapshot().delta_since(&before);
    match run {
        Ok(CancellableRun::Complete(outcome)) => SessFinal {
            id: sess.id,
            outcome: SessionOutcome::Complete,
            results: Arc::new(outcome.results),
            charged,
            served_by: ServedBy::Execution,
        },
        Ok(CancellableRun::Stopped(stopped)) => SessFinal {
            id: sess.id,
            outcome: match stopped.reason {
                StopReason::Cancelled => SessionOutcome::Cancelled,
                StopReason::DeadlineExpired => SessionOutcome::DeadlineExpired,
            },
            results: Arc::new(stopped.results_so_far),
            charged,
            served_by: ServedBy::Execution,
        },
        Err(e) => SessFinal {
            id: sess.id,
            outcome: SessionOutcome::Failed(e.to_string()),
            results: Arc::new(Vec::new()),
            charged,
            served_by: ServedBy::Execution,
        },
    }
}
