//! The serving orchestrator: sessions in, scheduling rounds out.
//!
//! A [`RankJoinService`] is driven by explicit **scheduling rounds**
//! ([`RankJoinService::run_round`]): each round serves every valid
//! prefix-cache hit, admits up to [`ServeConfig::round_width`] queued
//! sessions (strict priority classes, weighted stride fairness inside a
//! class — see [`crate::admission`]), executes one pool job per backend
//! group at the pool's foreground class, then runs any queued index
//! rebuilds at the background class. The service's simulated clock
//! advances by the round's makespan (the slowest group, mirroring the
//! store's parallel-round accounting), which is what makes fairness and
//! sharing effects measurable: sojourn = completion clock − submit clock.
//!
//! Rounds are intended to be driven from one thread (a benchmark loop or
//! a dispatcher); `submit`, `poll`, and `cancel` may be called
//! concurrently from any thread — the service lock is *released* while a
//! round executes on the pool, and in-flight executions observe
//! cancellation at batch boundaries through their session's
//! [`rj_core::cancel::CancelToken`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rj_core::cancel::{StopPolicy, StopReason};
use rj_core::cursor::CursorState;
use rj_core::error::RankJoinError;
use rj_core::executor::RankJoinExecutor;
use rj_core::multiway::SpecExecutor;
use rj_core::result::JoinTuple;
use rj_store::cluster::Cluster;
use rj_store::metrics::MetricsSnapshot;
use rj_store::pool::{PoolPriority, WorkStealingPool};

use crate::admission::{select_round, Candidate};
use crate::backend::{BackendExec, StatsHandle};
use crate::error::ServeError;
use crate::session::{
    PageInfo, PageToken, ServedBy, SessionId, SessionOutcome, SessionResult, SessionStatus,
    SubmitOptions,
};
use crate::sharing::{PartialWork, PrefixEntry, WarmEntry};
use crate::tenant::{accumulate, TenantId, TenantProfile, TenantState};

/// Opaque handle of one registered query backend — a join spec plus the
/// execution configuration of the prototype executor it was registered
/// with. Work sharing coalesces sessions *within* one backend only, and
/// registration dedupes backends by the canonical share key
/// `(`[`JoinSpec` fingerprint](rj_core::query::JoinSpec::fingerprint)`,
/// execution config)` — the fingerprint covers every side and edge, so
/// a multi-way spec extending a binary pair can never alias the pair's
/// backend (or its caches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(usize);

/// Service-wide tuning.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum sessions dispatched per scheduling round (prefix-cache
    /// hits are served on top of this — they occupy no execution slot).
    pub round_width: usize,
    /// Admission bound: a tenant with this many sessions already queued
    /// has further submits rejected with [`ServeError::QueueFull`].
    pub max_queue_per_tenant: usize,
    /// Enables cross-query work sharing (coalescing + the result-prefix
    /// cache). Off, every session runs its own execution — the control
    /// arm of the `serve` benchmark.
    pub sharing: bool,
    /// Dedicated pool width, or `None` to share the process-wide
    /// [`WorkStealingPool::global`] pool.
    pub pool_threads: Option<usize>,
    /// How many rounds a backend's coalescing group is **held** open
    /// before executing, absorbing compatible (same-backend, non-paged)
    /// arrivals of later rounds into one shared execution. `0` (the
    /// default) executes every group in the round that picked it. Only
    /// meaningful with [`ServeConfig::sharing`] on; a held group is
    /// injected with a *fresh* statistics-version capture, so writes
    /// landing during the hold never poison its cache entry.
    pub coalesce_hold_rounds: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            round_width: 4,
            max_queue_per_tenant: 64,
            sharing: true,
            pool_threads: None,
            coalesce_hold_rounds: 0,
        }
    }
}

/// Monotone service observables (all since service creation).
#[derive(Clone, Debug, Default)]
pub struct ServeCounters {
    /// Sessions accepted by admission.
    pub submitted: u64,
    /// Submits rejected by the per-tenant queue bound.
    pub rejected: u64,
    /// Sessions that reached [`SessionOutcome::Complete`].
    pub completed: u64,
    /// Sessions that ended [`SessionOutcome::Cancelled`].
    pub cancelled: u64,
    /// Sessions that ended [`SessionOutcome::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Sessions that ended [`SessionOutcome::Failed`].
    pub failed: u64,
    /// Query executions actually run (a coalesced group counts one).
    pub executions: u64,
    /// Sessions served by coalescing onto a concurrent execution.
    pub coalesced: u64,
    /// Sessions served from the result-prefix cache.
    pub cache_hits: u64,
    /// Executions warm-started from a donated cursor state in the
    /// partial-work cache (they paid only the reads beyond the donor's
    /// consumed prefix).
    pub warm_starts: u64,
    /// Pages served to paged sessions (first pages and
    /// [`RankJoinService::next_page`] resumes).
    pub pages_served: u64,
    /// Rebuilds auto-enqueued because a backend's mutated fraction
    /// crossed its executor's staleness bound.
    pub staleness_rebuilds: u64,
    /// Scheduling rounds run.
    pub rounds: u64,
    /// Background index rebuilds completed.
    pub maintenance_runs: u64,
    /// Background index rebuilds that failed.
    pub maintenance_failures: u64,
}

/// What one [`RankJoinService::run_round`] call did.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Sessions dispatched into execution groups this round.
    pub dispatched: usize,
    /// Sessions that reached a terminal state this round (including
    /// prefix-cache hits).
    pub completed: usize,
    /// Sessions sent back to the queue (their coalesced leader stopped
    /// before completing).
    pub requeued: usize,
    /// Simulated seconds the round advanced the service clock by — the
    /// makespan over this round's backend groups.
    pub sim_seconds: f64,
    /// Background index rebuilds run after the query groups.
    pub maintenance_runs: usize,
}

/// Per-(tenant, backend) execution context: a metrics fork of the base
/// cluster and an executor clone bound to it. Everything a pool job
/// needs, shared immutably.
struct TenantFork {
    cluster: Cluster,
    executor: BackendExec,
}

struct BackendState {
    /// The registered executor; mutated only by background rebuilds.
    prototype: Arc<Mutex<BackendExec>>,
    /// The spec's shared statistics handle — the coherence backbone:
    /// maintained writes and re-preparations bump its version, which
    /// invalidates the prefix entry below.
    stats: StatsHandle,
    /// Lazily created per-tenant execution forks.
    forks: HashMap<TenantId, Arc<TenantFork>>,
    /// The partial-work cache: deepest completed answer plus deepest
    /// donated cursor state, both at their statistics versions.
    work: PartialWork,
}

/// A paged session parked between pages: the paused cursor plus
/// everything accumulated so far.
struct PagedSession {
    /// The paused execution (stats-version pinned at open).
    state: CursorState,
    /// The session's execution fork — `next_page` resumes here.
    fork: Arc<TenantFork>,
    /// All results certified so far, rank order, across pages.
    results: Arc<Vec<JoinTuple>>,
    /// Total charge across the pages served so far (billed to the tenant
    /// at the terminal state).
    charged: MetricsSnapshot,
    /// Pages served; the continuation token must match.
    seq: u64,
}

enum RecState {
    Queued,
    Running,
    Paged(PagedSession),
    Done(SessionResult),
}

/// A coalescing group held open across rounds (satellite of PR 8): the
/// sessions already picked for one backend, waiting to absorb later
/// arrivals before executing as one group.
#[derive(Default)]
struct HeldGroup {
    ids: Vec<u64>,
    age: u64,
}

struct SessionRecord {
    tenant: TenantId,
    backend: BackendId,
    opts: SubmitOptions,
    token: rj_core::cancel::CancelToken,
    submitted_at: f64,
    arrival: u64,
    state: RecState,
}

struct ServiceState {
    clock: f64,
    next_session: u64,
    next_arrival: u64,
    tenants: Vec<TenantState>,
    backends: Vec<BackendState>,
    sessions: HashMap<u64, SessionRecord>,
    /// Registration dedupe: canonical share key → backend index.
    share_keys: HashMap<(u64, String), usize>,
    maintenance: VecDeque<usize>,
    /// Per-backend coalescing groups held open across rounds.
    held: BTreeMap<usize, HeldGroup>,
    counters: ServeCounters,
    charged_total: MetricsSnapshot,
}

enum PoolRef {
    Global,
    Owned(WorkStealingPool),
}

impl PoolRef {
    fn get(&self) -> &WorkStealingPool {
        match self {
            PoolRef::Global => WorkStealingPool::global(),
            PoolRef::Owned(pool) => pool,
        }
    }
}

/// One session's slice of a dispatch group (built under the service
/// lock, executed without it).
struct SessPlan {
    id: u64,
    k: usize,
    /// `Some` makes this a paged session: it opens a pinned cursor,
    /// serves one page, and parks (never coalesces).
    page_size: Option<usize>,
    policy: StopPolicy,
    fork: Arc<TenantFork>,
}

/// One backend's dispatch group for a round.
struct GroupPlan {
    backend: usize,
    /// Statistics version sampled at dispatch; work computed by this
    /// group is cached only if the version is still current when the
    /// round is applied (no maintained write raced the execution).
    version: u64,
    /// Sessions sorted deepest-`k` first; under sharing the first
    /// non-cancelled, non-paged session executes for the whole group.
    sessions: Vec<SessPlan>,
    sharing: bool,
    /// A usable donated cursor state from the partial-work cache,
    /// version-checked against `version` at planning time.
    warm: Option<WarmEntry>,
}

/// A terminal session outcome produced off-lock by a group job.
struct SessFinal {
    id: u64,
    outcome: SessionOutcome,
    results: Arc<Vec<JoinTuple>>,
    charged: MetricsSnapshot,
    served_by: ServedBy,
}

/// A paged session's first page, produced off-lock by a group job.
struct PagedFirst {
    id: u64,
    state: CursorState,
    results: Vec<JoinTuple>,
    charged: MetricsSnapshot,
}

struct GroupOutput {
    finals: Vec<SessFinal>,
    requeue: Vec<u64>,
    /// Paged sessions that served their first page and parked.
    paged: Vec<PagedFirst>,
    backend: usize,
    /// Simulated seconds this group's executions charged (sequential
    /// within the group).
    sim: f64,
    prefix: Option<PrefixEntry>,
    /// Deepest cursor state donated by this group's executions.
    warm: Option<WarmEntry>,
    executions: u64,
    coalesced: u64,
    warm_starts: u64,
    pages: u64,
}

/// The multi-tenant serving front-end. See the crate docs for the model.
pub struct RankJoinService {
    config: ServeConfig,
    pool: PoolRef,
    state: Mutex<ServiceState>,
}

impl RankJoinService {
    /// Creates a service with no tenants or backends registered.
    pub fn new(config: ServeConfig) -> Self {
        let pool = match config.pool_threads {
            Some(threads) => PoolRef::Owned(WorkStealingPool::new(threads)),
            None => PoolRef::Global,
        };
        RankJoinService {
            config,
            pool,
            state: Mutex::new(ServiceState {
                clock: 0.0,
                next_session: 0,
                next_arrival: 0,
                tenants: Vec::new(),
                backends: Vec::new(),
                sessions: HashMap::new(),
                share_keys: HashMap::new(),
                maintenance: VecDeque::new(),
                held: BTreeMap::new(),
                counters: ServeCounters::default(),
                charged_total: MetricsSnapshot::default(),
            }),
        }
    }

    /// Registers a binary query backend from a prototype executor. The
    /// executor must have an ISL index prepared or attached (the serving
    /// layer executes through batch-boundary-stoppable cursors over the
    /// index). The backend's share key for coalescing and the prefix
    /// cache is the canonical spec fingerprint of its query plus its
    /// execution config; registering an equivalent executor again
    /// returns the existing backend (so its sessions share work), and a
    /// multi-way spec extending the same pair gets a different key.
    pub fn register_backend(&self, executor: RankJoinExecutor) -> Result<BackendId, ServeError> {
        self.register_exec(BackendExec::Binary(Box::new(executor)))
    }

    /// Registers a spec-driven backend — binary or multi-way — from a
    /// prototype [`SpecExecutor`]. Same preconditions and share-key
    /// semantics as [`RankJoinService::register_backend`]; a two-side
    /// spec shares keys (and therefore caches) with the equivalent
    /// binary registration, because it *is* the same execution.
    pub fn register_spec_backend(&self, executor: SpecExecutor) -> Result<BackendId, ServeError> {
        self.register_exec(BackendExec::Spec(executor))
    }

    fn register_exec(&self, exec: BackendExec) -> Result<BackendId, ServeError> {
        if !exec.prepared() {
            return Err(ServeError::NotIslPrepared);
        }
        let key = (exec.fingerprint(), exec.config_sig());
        let stats = exec.stats();
        let mut st = self.lock();
        if let Some(&existing) = st.share_keys.get(&key) {
            return Ok(BackendId(existing));
        }
        let id = st.backends.len();
        st.share_keys.insert(key, id);
        st.backends.push(BackendState {
            prototype: Arc::new(Mutex::new(exec)),
            stats,
            forks: HashMap::new(),
            work: PartialWork::default(),
        });
        Ok(BackendId(id))
    }

    /// Registers a tenant. `weight` sets its fair share (must be finite
    /// and strictly positive); a new tenant joins at the minimum pass of
    /// the existing tenants so it competes immediately without draining
    /// an unbounded backlog of "missed" service.
    pub fn register_tenant(&self, name: &str, weight: f64) -> Result<TenantId, ServeError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(ServeError::InvalidWeight(weight));
        }
        let mut st = self.lock();
        let join_pass = st
            .tenants
            .iter()
            .map(|t| t.pass)
            .fold(f64::INFINITY, f64::min);
        let join_pass = if join_pass.is_finite() {
            join_pass
        } else {
            0.0
        };
        let id = st.tenants.len();
        st.tenants.push(TenantState::new(
            TenantProfile {
                name: name.to_owned(),
                weight,
            },
            join_pass,
        ));
        Ok(TenantId(id))
    }

    /// Submits a query session. Admission control may reject it
    /// synchronously ([`ServeError::QueueFull`]); an accepted session is
    /// queued until a scheduling round serves it.
    pub fn submit(
        &self,
        tenant: TenantId,
        backend: BackendId,
        opts: SubmitOptions,
    ) -> Result<SessionId, ServeError> {
        let mut st = self.lock();
        if backend.0 >= st.backends.len() {
            return Err(ServeError::UnknownBackend);
        }
        let max_queue = self.config.max_queue_per_tenant;
        let clock = st.clock;
        let tenant_state = st
            .tenants
            .get_mut(tenant.0)
            .ok_or(ServeError::UnknownTenant)?;
        if tenant_state.queued >= max_queue {
            st.counters.rejected += 1;
            let name = st.tenants[tenant.0].profile.name.clone();
            return Err(ServeError::QueueFull { tenant: name });
        }
        tenant_state.queued += 1;
        let id = st.next_session;
        st.next_session += 1;
        let arrival = st.next_arrival;
        st.next_arrival += 1;
        st.sessions.insert(
            id,
            SessionRecord {
                tenant,
                backend,
                opts,
                token: rj_core::cancel::CancelToken::new(),
                submitted_at: clock,
                arrival,
                state: RecState::Queued,
            },
        );
        st.counters.submitted += 1;
        Ok(SessionId(id))
    }

    /// Reports a session's current status.
    pub fn poll(&self, session: SessionId) -> Result<SessionStatus, ServeError> {
        let st = self.lock();
        let record = st
            .sessions
            .get(&session.0)
            .ok_or(ServeError::UnknownSession)?;
        Ok(match &record.state {
            RecState::Queued => SessionStatus::Queued,
            RecState::Running => SessionStatus::Running,
            RecState::Paged(paged) => SessionStatus::Paged(PageInfo {
                results: Arc::clone(&paged.results),
                charged: paged.charged,
                token: PageToken {
                    session,
                    seq: paged.seq,
                },
            }),
            RecState::Done(result) => SessionStatus::Done(result.clone()),
        })
    }

    /// Resumes a paged session's paused cursor for one more page.
    ///
    /// `token` must be the continuation from the session's latest
    /// [`SessionStatus::Paged`] report ([`ServeError::InvalidContinuation`]
    /// otherwise). The resume re-checks the cursor's pinned statistics
    /// version: if a maintained write or index rebuild moved the backend
    /// on, the session fails terminally and
    /// [`ServeError::StaleContinuation`] is returned — the parked scan
    /// positions describe data that no longer exists.
    ///
    /// The page is billed exactly its consumed ledger delta; the
    /// accumulated charge is billed to the tenant when the session
    /// reaches a terminal state. Returns the session's new status (parked
    /// again, or done).
    pub fn next_page(&self, token: PageToken) -> Result<SessionStatus, ServeError> {
        let id = token.session.0;
        // Take the parked cursor out under the lock.
        let (paged, policy, k) = {
            let mut st = self.lock();
            let record = st.sessions.get_mut(&id).ok_or(ServeError::UnknownSession)?;
            let matches_token = matches!(&record.state, RecState::Paged(p) if p.seq == token.seq);
            if !matches_token {
                return Err(ServeError::InvalidContinuation);
            }
            let RecState::Paged(paged) = std::mem::replace(&mut record.state, RecState::Running)
            else {
                unreachable!("checked above");
            };
            let policy = StopPolicy {
                token: record.token.clone(),
                deadline_sim_seconds: record.opts.deadline_sim_seconds,
                cancel_after_batches: record.opts.cancel_after_batches,
            };
            let page_size = record.opts.page_size.unwrap_or(record.opts.k).max(1);
            (paged, policy, (record.opts.k, page_size))
        };
        let (k, page_size) = k;
        let page = page_size.min(k.saturating_sub(paged.results.len())).max(1);

        // Resume and pull off-lock; the version check happens inside the
        // executor's resume.
        let before = paged.fork.cluster.metrics().snapshot();
        let resumed = paged.fork.executor.resume_cursor(paged.state.clone());
        let mut cursor = match resumed {
            Ok(cursor) => cursor,
            Err(RankJoinError::StaleCursor { expected, found }) => {
                self.fail_paged(id, &paged, "stale continuation: backend data changed");
                return Err(ServeError::StaleContinuation { expected, found });
            }
            Err(e) => {
                self.fail_paged(id, &paged, &e.to_string());
                return Err(ServeError::Core(e));
            }
        };
        let pulled = cursor.next_batch(page, &policy);
        let delta = paged.fork.cluster.metrics().snapshot().delta_since(&before);

        // Apply under the lock.
        let mut st = self.lock();
        st.clock += delta.sim_seconds;
        st.counters.pages_served += 1;
        let clock = st.clock;
        let mut charged = paged.charged;
        accumulate(&mut charged, &delta);
        match pulled {
            Err(e) => {
                let message = e.to_string();
                Self::finalize(
                    &mut st,
                    SessFinal {
                        id,
                        outcome: SessionOutcome::Failed(message),
                        results: Arc::clone(&paged.results),
                        charged,
                        served_by: ServedBy::Execution,
                    },
                    clock,
                    false,
                );
            }
            Ok(batch) => {
                let mut all: Vec<JoinTuple> = (*paged.results).clone();
                all.extend(batch.results);
                let results = Arc::new(all);
                if let Some(reason) = batch.stopped {
                    Self::finalize(
                        &mut st,
                        SessFinal {
                            id,
                            outcome: match reason {
                                StopReason::Cancelled => SessionOutcome::Cancelled,
                                StopReason::DeadlineExpired => SessionOutcome::DeadlineExpired,
                            },
                            results,
                            charged,
                            served_by: ServedBy::Execution,
                        },
                        clock,
                        false,
                    );
                } else if batch.done || results.len() >= k {
                    // Done: the paged session completes, and its final
                    // descent state is donated to the partial-work cache
                    // like any completed execution's.
                    let backend = st.sessions[&id].backend.0;
                    let state = cursor.pause();
                    if state.supports_retarget() {
                        if let Some(pinned) = state.pinned_version() {
                            let depth = state.consumed_depth();
                            let current = st.backends[backend].stats.version();
                            st.backends[backend].work.offer_warm(
                                WarmEntry {
                                    state,
                                    version: pinned,
                                    depth,
                                },
                                current,
                            );
                        }
                    }
                    Self::finalize(
                        &mut st,
                        SessFinal {
                            id,
                            outcome: SessionOutcome::Complete,
                            results,
                            charged,
                            served_by: ServedBy::Execution,
                        },
                        clock,
                        false,
                    );
                } else {
                    let seq = paged.seq + 1;
                    // rjlint: allow(no-unwrap) — `id` came from this round's
                    // paged set; records are only removed at finalize.
                    let record = st.sessions.get_mut(&id).expect("paged session exists");
                    record.state = RecState::Paged(PagedSession {
                        state: cursor.pause(),
                        fork: paged.fork,
                        results,
                        charged,
                        seq,
                    });
                }
            }
        }
        drop(st);
        self.poll(token.session)
    }

    /// Terminates a paged session whose resume failed.
    fn fail_paged(&self, id: u64, paged: &PagedSession, message: &str) {
        let mut st = self.lock();
        let clock = st.clock;
        Self::finalize(
            &mut st,
            SessFinal {
                id,
                outcome: SessionOutcome::Failed(message.to_owned()),
                results: Arc::clone(&paged.results),
                charged: paged.charged,
                served_by: ServedBy::Execution,
            },
            clock,
            false,
        );
    }

    /// Cancels a session. A still-queued session terminates immediately
    /// with zero charge; a running one stops at its next batch boundary
    /// (its result then reports [`SessionOutcome::Cancelled`] and the
    /// consumed prefix's charge); a parked paged session terminates
    /// immediately, billed the pages already served. Cancelling a
    /// finished session is a no-op.
    pub fn cancel(&self, session: SessionId) -> Result<(), ServeError> {
        let mut st = self.lock();
        let clock = st.clock;
        let record = st
            .sessions
            .get_mut(&session.0)
            .ok_or(ServeError::UnknownSession)?;
        record.token.cancel();
        let parked = match &record.state {
            RecState::Queued => Some(None),
            RecState::Paged(_) => {
                let RecState::Paged(paged) =
                    std::mem::replace(&mut record.state, RecState::Running)
                else {
                    unreachable!("checked above");
                };
                Some(Some(paged))
            }
            RecState::Running | RecState::Done(_) => None,
        };
        match parked {
            None => {}
            Some(None) => {
                Self::finalize(
                    &mut st,
                    SessFinal {
                        id: session.0,
                        outcome: SessionOutcome::Cancelled,
                        results: Arc::new(Vec::new()),
                        charged: MetricsSnapshot::default(),
                        served_by: ServedBy::Unserved,
                    },
                    clock,
                    true,
                );
            }
            Some(Some(paged)) => {
                Self::finalize(
                    &mut st,
                    SessFinal {
                        id: session.0,
                        outcome: SessionOutcome::Cancelled,
                        results: paged.results,
                        charged: paged.charged,
                        served_by: ServedBy::Execution,
                    },
                    clock,
                    false,
                );
            }
        }
        Ok(())
    }

    /// Queues a background rebuild of the backend's ISL index. It runs at
    /// the pool's background class at the end of the next round, and (via
    /// the re-preparation's statistics invalidation) coherently
    /// invalidates the backend's prefix cache and every sharer's plans.
    pub fn schedule_rebuild(&self, backend: BackendId) -> Result<(), ServeError> {
        let mut st = self.lock();
        if backend.0 >= st.backends.len() {
            return Err(ServeError::UnknownBackend);
        }
        st.maintenance.push_back(backend.0);
        Ok(())
    }

    /// The service's simulated clock (seconds).
    pub fn clock(&self) -> f64 {
        self.lock().clock
    }

    /// Advances the clock to at least `t` — how an open-loop driver
    /// models idle time between arrivals. Never moves the clock backward.
    pub fn advance_clock_to(&self, t: f64) {
        let mut st = self.lock();
        st.clock = st.clock.max(t);
    }

    /// Snapshot of the service counters.
    pub fn counters(&self) -> ServeCounters {
        self.lock().counters.clone()
    }

    /// Everything this tenant's executions charged, read from its
    /// per-backend fork ledgers (the metering ground truth).
    pub fn tenant_usage(&self, tenant: TenantId) -> Result<MetricsSnapshot, ServeError> {
        let st = self.lock();
        if tenant.0 >= st.tenants.len() {
            return Err(ServeError::UnknownTenant);
        }
        let mut total = MetricsSnapshot::default();
        for backend in &st.backends {
            if let Some(fork) = backend.forks.get(&tenant) {
                accumulate(&mut total, &fork.cluster.metrics().snapshot());
            }
        }
        Ok(total)
    }

    /// Sum of every tenant's fork ledgers — the cluster-side total of
    /// metered serving work.
    pub fn total_usage(&self) -> MetricsSnapshot {
        let st = self.lock();
        let mut total = MetricsSnapshot::default();
        for backend in &st.backends {
            for fork in backend.forks.values() {
                accumulate(&mut total, &fork.cluster.metrics().snapshot());
            }
        }
        total
    }

    /// Sum of the charges billed to this tenant's finished sessions.
    /// Conservation: equals [`RankJoinService::tenant_usage`] once no
    /// session of the tenant is in flight.
    pub fn tenant_charged(&self, tenant: TenantId) -> Result<MetricsSnapshot, ServeError> {
        let st = self.lock();
        st.tenants
            .get(tenant.0)
            .map(|t| t.charged)
            .ok_or(ServeError::UnknownTenant)
    }

    /// Sum of the charges billed across all finished sessions —
    /// conservation partner of [`RankJoinService::total_usage`].
    pub fn charged_total(&self) -> MetricsSnapshot {
        self.lock().charged_total
    }

    /// Runs scheduling rounds until no session is queued, no coalescing
    /// group is held, and no maintenance is pending (parked paged
    /// sessions do not count — they wait on their client's `next_page`).
    /// Terminates: every round finalizes its group leaders and held
    /// groups age monotonically, so pending work strictly shrinks.
    pub fn run_until_idle(&self) -> Result<Vec<RoundReport>, ServeError> {
        let mut reports = Vec::new();
        loop {
            {
                let st = self.lock();
                let queued = st
                    .sessions
                    .values()
                    .any(|s| matches!(s.state, RecState::Queued));
                if !queued && st.maintenance.is_empty() && st.held.is_empty() {
                    return Ok(reports);
                }
            }
            reports.push(self.run_round()?);
        }
    }

    /// Runs one scheduling round. See the module docs for the phases.
    pub fn run_round(&self) -> Result<RoundReport, ServeError> {
        let mut report = RoundReport::default();

        // Phase 1 (locked): enqueue staleness-driven rebuilds, serve
        // cache hits, select, plan groups (possibly holding some back to
        // coalesce with later arrivals).
        let (groups, maintenance) = {
            let mut st = self.lock();
            st.counters.rounds += 1;
            Self::enqueue_stale_rebuilds(&mut st);
            if self.config.sharing {
                report.completed += Self::serve_cache_hits(&mut st);
            }
            let picked = Self::pick_round(&st, self.config.round_width);
            report.dispatched = picked.len();
            let groups = Self::plan_groups(&mut st, &picked, &self.config)?;
            let pending: Vec<usize> = st.maintenance.drain(..).collect();
            let maintenance: Vec<(usize, Arc<Mutex<BackendExec>>)> = pending
                .into_iter()
                .map(|b| (b, Arc::clone(&st.backends[b].prototype)))
                .collect();
            (groups, maintenance)
        };

        // Phase 2 (unlocked): query groups at foreground, then index
        // rebuilds at background. The pool parallelizes across groups;
        // sessions within a group run sequentially on their forks so
        // per-session ledger deltas never interleave.
        let outputs: Vec<GroupOutput> = self.pool.get().run_batch(
            groups
                .into_iter()
                .map(|group| {
                    Box::new(move || run_group(group)) as Box<dyn FnOnce() -> GroupOutput + Send>
                })
                .collect(),
        );
        report.maintenance_runs = maintenance.len();
        let maint_results: Vec<Result<(), String>> = self.pool.get().run_batch_at(
            PoolPriority::Background,
            maintenance
                .into_iter()
                .map(|(_, prototype)| {
                    Box::new(move || {
                        let mut proto = prototype.lock().expect("backend prototype poisoned");
                        // Rebuild + fresh statistics pass: the rebuild
                        // invalidated the maintained snapshot, and the
                        // pass restarts the staleness clock at zero
                        // instead of leaving it unbounded (which would
                        // re-trigger the staleness-driven rebuild every
                        // round).
                        proto.rebuild().map_err(|e| e.to_string())
                    }) as Box<dyn FnOnce() -> Result<(), String> + Send>
                })
                .collect(),
        );

        // Phase 3 (locked): advance the clock by the round makespan and
        // apply every outcome.
        let mut st = self.lock();
        let wall = outputs.iter().map(|o| o.sim).fold(0.0, f64::max);
        st.clock += wall;
        report.sim_seconds = wall;
        let clock = st.clock;
        for output in outputs {
            st.counters.executions += output.executions;
            st.counters.coalesced += output.coalesced;
            st.counters.warm_starts += output.warm_starts;
            st.counters.pages_served += output.pages;
            for final_ in output.finals {
                report.completed += 1;
                Self::finalize(&mut st, final_, clock, false);
            }
            for first in output.paged {
                let fork = {
                    // rjlint: allow(no-unwrap) — `first.id` came from this
                    // round's output; records are only removed at finalize.
                    let record = st.sessions.get(&first.id).expect("paged session exists");
                    let backend = record.backend.0;
                    let tenant = record.tenant;
                    Arc::clone(&st.backends[backend].forks[&tenant])
                };
                let record = st
                    .sessions
                    .get_mut(&first.id)
                    // rjlint: allow(no-unwrap) — same round's output id; records
                    // are only removed at finalize.
                    .expect("paged session exists");
                record.state = RecState::Paged(PagedSession {
                    state: first.state,
                    fork,
                    results: Arc::new(first.results),
                    charged: first.charged,
                    seq: 1,
                });
            }
            for id in output.requeue {
                report.requeued += 1;
                if let Some(record) = st.sessions.get_mut(&id) {
                    record.state = RecState::Queued;
                    let tenant = record.tenant.0;
                    st.tenants[tenant].queued += 1;
                }
            }
            let backend = &mut st.backends[output.backend];
            let current = backend.stats.version();
            if let Some(prefix) = output.prefix {
                backend.work.offer_completed(prefix, current);
            }
            if let Some(warm) = output.warm {
                backend.work.offer_warm(warm, current);
            }
        }
        for result in maint_results {
            match result {
                Ok(()) => st.counters.maintenance_runs += 1,
                Err(_) => st.counters.maintenance_failures += 1,
            }
        }
        Ok(report)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.state.lock().expect("service state poisoned")
    }

    /// Serves every queued session a current-version prefix-cache entry
    /// can answer. Free work: no execution slot, no charge, completion
    /// at the current clock.
    fn serve_cache_hits(st: &mut ServiceState) -> usize {
        let clock = st.clock;
        let mut ids: Vec<u64> = st
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, RecState::Queued))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        let mut served = 0;
        for id in ids {
            let record = &st.sessions[&id];
            if record.opts.page_size.is_some() {
                // Paged sessions contract for a live cursor, not a
                // one-shot answer — they always execute.
                continue;
            }
            let backend = &st.backends[record.backend.0];
            let Some(prefix) = backend.work.completed.as_ref() else {
                continue;
            };
            if !prefix.serves(record.opts.k, backend.stats.version()) {
                continue;
            }
            let results = prefix.prefix(record.opts.k);
            st.counters.cache_hits += 1;
            Self::finalize(
                st,
                SessFinal {
                    id,
                    outcome: SessionOutcome::Complete,
                    results,
                    charged: MetricsSnapshot::default(),
                    served_by: ServedBy::PrefixCache,
                },
                clock,
                true,
            );
            served += 1;
        }
        served
    }

    /// Builds the admission candidate list and picks the round.
    fn pick_round(st: &ServiceState, width: usize) -> Vec<u64> {
        let candidates: Vec<Candidate> = st
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, RecState::Queued))
            .map(|(id, s)| Candidate {
                index: *id as usize,
                priority: s.opts.priority,
                tenant_pass: st.tenants[s.tenant.0].pass,
                arrival: s.arrival,
            })
            .collect();
        select_round(candidates, width)
            .into_iter()
            .map(|i| i as u64)
            .collect()
    }

    /// Enqueues a rebuild for every backend whose mutated fraction
    /// crossed its executor's staleness bound — the serving layer's
    /// automatic use of the maintained-statistics contract: past the
    /// bound the planner would re-collect anyway, so the index itself is
    /// rebuilt (and statistics re-collected) in the background instead of
    /// letting every query pay for drift.
    fn enqueue_stale_rebuilds(st: &mut ServiceState) {
        for idx in 0..st.backends.len() {
            let staleness = st.backends[idx].stats.staleness();
            if !staleness.is_finite() {
                continue; // nothing maintained — nothing measurably stale
            }
            let bound = st.backends[idx]
                .prototype
                .lock()
                .expect("backend prototype poisoned")
                .staleness_bound();
            if staleness > bound && !st.maintenance.contains(&idx) {
                st.maintenance.push_back(idx);
                st.counters.staleness_rebuilds += 1;
            }
        }
    }

    /// Marks the picked sessions running and groups them per backend,
    /// deepest `k` first, resolving each session's (tenant, backend)
    /// execution fork. With [`ServeConfig::coalesce_hold_rounds`] > 0,
    /// non-paged sessions enter their backend's held group instead and
    /// only groups old enough are released to execute this round —
    /// absorbing the arrivals of the hold window into one execution.
    fn plan_groups(
        st: &mut ServiceState,
        picked: &[u64],
        config: &ServeConfig,
    ) -> Result<Vec<GroupPlan>, ServeError> {
        let holding = config.sharing && config.coalesce_hold_rounds > 0;
        let mut by_backend: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for id in picked {
            // rjlint: allow(no-unwrap) — `picked` ids were drawn from the
            // session map under the same lock a few lines up.
            let record = st.sessions.get_mut(id).expect("picked session exists");
            record.state = RecState::Running;
            st.tenants[record.tenant.0].queued -= 1;
            let backend = record.backend.0;
            if holding && record.opts.page_size.is_none() {
                st.held.entry(backend).or_default().ids.push(*id);
            } else {
                by_backend.entry(backend).or_default().push(*id);
            }
        }
        // Release held groups that have absorbed arrivals long enough;
        // younger groups age one round.
        if holding {
            let ready: Vec<usize> = st
                .held
                .iter()
                .filter(|(_, g)| g.age >= config.coalesce_hold_rounds)
                .map(|(b, _)| *b)
                .collect();
            for backend in ready {
                // rjlint: allow(no-unwrap) — `ready` keys were collected from
                // `st.held` in the filter above, under the same borrow.
                let group = st.held.remove(&backend).expect("held group exists");
                by_backend.entry(backend).or_default().extend(group.ids);
            }
            for group in st.held.values_mut() {
                group.age += 1;
            }
        }
        let mut groups = Vec::with_capacity(by_backend.len());
        for (backend_idx, mut ids) in by_backend {
            ids.sort_by_key(|id| {
                let s = &st.sessions[id];
                (std::cmp::Reverse(s.opts.k), s.arrival)
            });
            // Version captured at release time — a held group picked up
            // rounds ago still caches only against the data it ran on.
            let version = st.backends[backend_idx].stats.version();
            let warm = st.backends[backend_idx].work.usable_warm(version).cloned();
            let mut sessions = Vec::with_capacity(ids.len());
            for id in ids {
                let (tenant, opts, token) = {
                    let s = &st.sessions[&id];
                    (s.tenant, s.opts.clone(), s.token.clone())
                };
                let fork = Self::fork_for(st, backend_idx, tenant)?;
                sessions.push(SessPlan {
                    id,
                    k: opts.k,
                    page_size: opts.page_size,
                    policy: StopPolicy {
                        token,
                        deadline_sim_seconds: opts.deadline_sim_seconds,
                        cancel_after_batches: opts.cancel_after_batches,
                    },
                    fork,
                });
            }
            groups.push(GroupPlan {
                backend: backend_idx,
                version,
                sessions,
                sharing: config.sharing,
                warm,
            });
        }
        Ok(groups)
    }

    /// The lazily-created per-(tenant, backend) execution fork.
    fn fork_for(
        st: &mut ServiceState,
        backend_idx: usize,
        tenant: TenantId,
    ) -> Result<Arc<TenantFork>, ServeError> {
        if let Some(fork) = st.backends[backend_idx].forks.get(&tenant) {
            return Ok(Arc::clone(fork));
        }
        let prototype = Arc::clone(&st.backends[backend_idx].prototype);
        let proto = prototype.lock().expect("backend prototype poisoned");
        let cluster = proto.cluster().fork_metrics();
        let executor = proto.fork_onto(&cluster)?;
        drop(proto);
        let fork = Arc::new(TenantFork { cluster, executor });
        st.backends[backend_idx]
            .forks
            .insert(tenant, Arc::clone(&fork));
        Ok(fork)
    }

    /// Applies one terminal outcome: stores the result, bills the
    /// tenant, advances its stride pass, and bumps outcome counters.
    /// `from_queue` distinguishes sessions that never left the queue
    /// (their `queued` count still needs releasing).
    fn finalize(st: &mut ServiceState, final_: SessFinal, clock: f64, from_queue: bool) {
        let Some(record) = st.sessions.get_mut(&final_.id) else {
            return;
        };
        if from_queue {
            st.tenants[record.tenant.0].queued -= 1;
        }
        let tenant = record.tenant.0;
        let submitted_at = record.submitted_at;
        record.state = RecState::Done(SessionResult {
            outcome: final_.outcome.clone(),
            results: final_.results,
            charged: final_.charged,
            served_by: final_.served_by,
            submitted_at,
            completed_at: clock,
        });
        accumulate(&mut st.tenants[tenant].charged, &final_.charged);
        accumulate(&mut st.charged_total, &final_.charged);
        let weight = st.tenants[tenant].profile.weight;
        st.tenants[tenant].pass += final_.charged.sim_seconds / weight;
        match final_.outcome {
            SessionOutcome::Complete => st.counters.completed += 1,
            SessionOutcome::Cancelled => st.counters.cancelled += 1,
            SessionOutcome::DeadlineExpired => st.counters.deadline_expired += 1,
            SessionOutcome::Failed(_) => st.counters.failed += 1,
        }
    }
}

/// Executes one backend group on the calling pool worker. Paged sessions
/// run individually (their cursor belongs to one client) and serve their
/// first page. Sharing on: the first non-cancelled plain session (deepest
/// `k`) executes for the whole group — warm-started from the partial-work
/// cache when a donated state is usable — later sessions take prefixes of
/// its answer; if it stops early the rest are requeued but its paused
/// cursor state is still donated. Sharing off: every session executes
/// itself cold, and nothing is donated.
fn run_group(plan: GroupPlan) -> GroupOutput {
    let mut out = GroupOutput {
        finals: Vec::with_capacity(plan.sessions.len()),
        requeue: Vec::new(),
        paged: Vec::new(),
        backend: plan.backend,
        sim: 0.0,
        prefix: None,
        warm: None,
        executions: 0,
        coalesced: 0,
        warm_starts: 0,
        pages: 0,
    };
    let (paged, plain): (Vec<&SessPlan>, Vec<&SessPlan>) =
        plan.sessions.iter().partition(|s| s.page_size.is_some());
    for sess in paged {
        if sess.policy.token.is_cancelled() {
            out.finals.push(cancelled_unserved(sess.id));
            continue;
        }
        execute_first_page(sess, &mut out);
    }
    let warm = plan.warm.as_ref().filter(|_| plan.sharing);
    let mut leader: Option<(usize, Arc<Vec<JoinTuple>>)> = None;
    let mut rest = plain.into_iter();
    for sess in rest.by_ref() {
        if sess.policy.token.is_cancelled() {
            out.finals.push(cancelled_unserved(sess.id));
            continue;
        }
        let (final_, donated, warmed) = execute_one(sess, plan.version, warm);
        out.executions += 1;
        if warmed {
            out.warm_starts += 1;
        }
        out.sim += final_.charged.sim_seconds;
        if plan.sharing {
            if let Some(entry) = donated {
                if entry.improves_on(out.warm.as_ref(), plan.version) {
                    out.warm = Some(entry);
                }
            }
        }
        if !plan.sharing {
            out.finals.push(final_);
            continue;
        }
        let complete = matches!(final_.outcome, SessionOutcome::Complete);
        if complete {
            leader = Some((sess.k, Arc::clone(&final_.results)));
            out.prefix = Some(PrefixEntry::from_completed(
                sess.k,
                Arc::clone(&final_.results),
                plan.version,
            ));
        }
        out.finals.push(final_);
        if complete {
            break;
        }
        // The would-be leader stopped (cancelled / deadline / failed):
        // its followers go back to the queue rather than inherit a
        // partial prefix shallower than their own `k` — but its descent
        // state was donated above, so the requeued run warm-starts.
        for waiting in rest.by_ref() {
            if waiting.policy.token.is_cancelled() {
                out.finals.push(cancelled_unserved(waiting.id));
            } else {
                out.requeue.push(waiting.id);
            }
        }
        return out;
    }
    if let Some((leader_k, results)) = leader {
        let entry = PrefixEntry::from_completed(leader_k, results, plan.version);
        for sess in rest {
            if sess.policy.token.is_cancelled() {
                out.finals.push(cancelled_unserved(sess.id));
                continue;
            }
            out.coalesced += 1;
            out.finals.push(SessFinal {
                id: sess.id,
                outcome: SessionOutcome::Complete,
                results: entry.prefix(sess.k),
                charged: MetricsSnapshot::default(),
                served_by: ServedBy::SharedExecution,
            });
        }
    }
    out
}

fn cancelled_unserved(id: u64) -> SessFinal {
    SessFinal {
        id,
        outcome: SessionOutcome::Cancelled,
        results: Arc::new(Vec::new()),
        charged: MetricsSnapshot::default(),
        served_by: ServedBy::Unserved,
    }
}

/// Runs one session's query on its own fork through the cursor stack,
/// billing it the fork's exact ledger delta. A usable `warm` entry
/// re-targets the donated descent state to this session's `k` — the
/// replayed consumed-tuple log charges nothing, so the session pays only
/// the reads beyond the donor's prefix. Returns the terminal outcome,
/// the paused state donated back to the cache (when re-targetable), and
/// whether the run was warm-started.
fn execute_one(
    sess: &SessPlan,
    version: u64,
    warm: Option<&WarmEntry>,
) -> (SessFinal, Option<WarmEntry>, bool) {
    let fork = &sess.fork;
    let before = fork.cluster.metrics().snapshot();
    let mut warmed = false;
    let opened = match warm {
        Some(entry) => {
            warmed = true;
            entry.state.clone().resume_retargeted(&fork.cluster, sess.k)
        }
        None => fork.executor.open_cursor(sess.k),
    };
    let mut cursor = match opened {
        Ok(cursor) => cursor,
        Err(e) => {
            let charged = fork.cluster.metrics().snapshot().delta_since(&before);
            let final_ = SessFinal {
                id: sess.id,
                outcome: SessionOutcome::Failed(e.to_string()),
                results: Arc::new(Vec::new()),
                charged,
                served_by: ServedBy::Execution,
            };
            return (final_, None, warmed);
        }
    };
    let mut results: Vec<JoinTuple> = Vec::new();
    let mut stopped: Option<StopReason> = None;
    let mut failed: Option<String> = None;
    while results.len() < sess.k {
        match cursor.next_batch(sess.k - results.len(), &sess.policy) {
            Err(e) => {
                failed = Some(e.to_string());
                break;
            }
            Ok(batch) => {
                results.extend(batch.results);
                if let Some(reason) = batch.stopped {
                    stopped = Some(reason);
                    break;
                }
                if batch.done {
                    break;
                }
            }
        }
    }
    let charged = fork.cluster.metrics().snapshot().delta_since(&before);
    let donated = if failed.is_none() {
        let state = cursor.pause();
        state.supports_retarget().then(|| WarmEntry {
            depth: state.consumed_depth(),
            version,
            state,
        })
    } else {
        None
    };
    let (outcome, results) = match (failed, stopped) {
        (Some(message), _) => (SessionOutcome::Failed(message), Arc::new(Vec::new())),
        (None, Some(StopReason::Cancelled)) => (SessionOutcome::Cancelled, Arc::new(results)),
        (None, Some(StopReason::DeadlineExpired)) => {
            (SessionOutcome::DeadlineExpired, Arc::new(results))
        }
        (None, None) => (SessionOutcome::Complete, Arc::new(results)),
    };
    let final_ = SessFinal {
        id: sess.id,
        outcome,
        results,
        charged,
        served_by: ServedBy::Execution,
    };
    (final_, donated, warmed)
}

/// Serves a paged session's first page on its own fork: opens an
/// executor-pinned cursor (so later [`RankJoinService::next_page`]
/// resumes get the stale-continuation check), pulls one page, and either
/// finalizes (stopped / already done) or parks the paused state into
/// `out.paged`.
fn execute_first_page(sess: &SessPlan, out: &mut GroupOutput) {
    let fork = &sess.fork;
    let page = sess
        .page_size
        // rjlint: allow(no-unwrap) — callers route here only for sessions
        // admitted with a page size (the paged plan partition).
        .expect("paged session has a page size")
        .min(sess.k)
        .max(1);
    let before = fork.cluster.metrics().snapshot();
    let fail = |charged: MetricsSnapshot, message: String, out: &mut GroupOutput| {
        out.finals.push(SessFinal {
            id: sess.id,
            outcome: SessionOutcome::Failed(message),
            results: Arc::new(Vec::new()),
            charged,
            served_by: ServedBy::Execution,
        });
    };
    let mut cursor = match fork.executor.open_cursor(sess.k) {
        Ok(cursor) => cursor,
        Err(e) => {
            let charged = fork.cluster.metrics().snapshot().delta_since(&before);
            out.executions += 1;
            out.sim += charged.sim_seconds;
            fail(charged, e.to_string(), out);
            return;
        }
    };
    let pulled = cursor.next_batch(page, &sess.policy);
    let charged = fork.cluster.metrics().snapshot().delta_since(&before);
    out.executions += 1;
    out.sim += charged.sim_seconds;
    match pulled {
        Err(e) => fail(charged, e.to_string(), out),
        Ok(batch) => {
            out.pages += 1;
            if let Some(reason) = batch.stopped {
                out.finals.push(SessFinal {
                    id: sess.id,
                    outcome: match reason {
                        StopReason::Cancelled => SessionOutcome::Cancelled,
                        StopReason::DeadlineExpired => SessionOutcome::DeadlineExpired,
                    },
                    results: Arc::new(batch.results),
                    charged,
                    served_by: ServedBy::Execution,
                });
            } else if batch.done || batch.results.len() >= sess.k {
                out.finals.push(SessFinal {
                    id: sess.id,
                    outcome: SessionOutcome::Complete,
                    results: Arc::new(batch.results),
                    charged,
                    served_by: ServedBy::Execution,
                });
            } else {
                out.paged.push(PagedFirst {
                    id: sess.id,
                    state: cursor.pause(),
                    results: batch.results,
                    charged,
                });
            }
        }
    }
}
