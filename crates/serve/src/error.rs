//! Serving-layer errors.

use std::fmt;

use rj_core::error::RankJoinError;

/// Everything that can go wrong at the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The tenant id does not name a registered tenant.
    UnknownTenant,
    /// The backend id does not name a registered backend.
    UnknownBackend,
    /// The session id does not name a submitted session.
    UnknownSession,
    /// Admission control rejected the submit: the tenant already has its
    /// maximum number of queued sessions.
    QueueFull {
        /// The rejected tenant's registered name.
        tenant: String,
    },
    /// The backend executor has no ISL index prepared or attached; the
    /// serving layer executes through the cancellable ISL path and
    /// refuses backends it could not stop at batch boundaries.
    NotIslPrepared,
    /// Tenant weights must be finite and strictly positive.
    InvalidWeight(f64),
    /// The continuation token does not name the session's current page
    /// boundary (the session is not paged, already terminal, or the
    /// token is from an earlier page).
    InvalidContinuation,
    /// The paused cursor's statistics version no longer matches the
    /// backend: a maintained write or an index rebuild changed the data
    /// under the continuation. The session is terminated
    /// ([`crate::SessionOutcome::Failed`]) — re-submit the query.
    StaleContinuation {
        /// Version the cursor was opened under.
        expected: u64,
        /// The backend's current version.
        found: u64,
    },
    /// An execution-layer error surfaced while serving.
    Core(RankJoinError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant => write!(f, "unknown tenant id"),
            ServeError::UnknownBackend => write!(f, "unknown backend id"),
            ServeError::UnknownSession => write!(f, "unknown session id"),
            ServeError::QueueFull { tenant } => {
                write!(f, "admission rejected: tenant `{tenant}` queue is full")
            }
            ServeError::NotIslPrepared => {
                write!(f, "backend has no ISL index prepared or attached")
            }
            ServeError::InvalidWeight(w) => {
                write!(f, "tenant weight must be finite and > 0, got {w}")
            }
            ServeError::InvalidContinuation => {
                write!(f, "continuation token does not name the current page")
            }
            ServeError::StaleContinuation { expected, found } => write!(
                f,
                "continuation is stale: cursor pinned stats version {expected}, backend is at {found}"
            ),
            ServeError::Core(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RankJoinError> for ServeError {
    fn from(e: RankJoinError) -> Self {
        ServeError::Core(e)
    }
}
