//! Tenants: identity, weights, and the stride-scheduling state.

use rj_store::metrics::MetricsSnapshot;

/// Opaque handle of one registered tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub(crate) usize);

/// A tenant's registered identity.
#[derive(Clone, Debug)]
pub struct TenantProfile {
    /// Display name (also used in admission-rejection errors).
    pub name: String,
    /// Fair-share weight: long-run charged simulated seconds are
    /// proportional to this, enforced by stride scheduling. Must be
    /// finite and strictly positive.
    pub weight: f64,
}

/// Mutable per-tenant scheduler state.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub profile: TenantProfile,
    /// Stride-scheduling pass value: advanced by
    /// `charged sim-seconds / weight` on every charge; the scheduler
    /// serves the smallest pass within a priority class.
    pub pass: f64,
    /// Sessions currently queued (admission control bounds this).
    pub queued: usize,
    /// Sum of every charge billed to this tenant's sessions.
    pub charged: MetricsSnapshot,
}

impl TenantState {
    pub fn new(profile: TenantProfile, join_pass: f64) -> Self {
        TenantState {
            profile,
            pass: join_pass,
            queued: 0,
            charged: MetricsSnapshot::default(),
        }
    }
}

/// Component-wise accumulation of metric snapshots (the store type is a
/// plain value; summing ledgers is the serving layer's job).
pub(crate) fn accumulate(into: &mut MetricsSnapshot, delta: &MetricsSnapshot) {
    into.kv_reads += delta.kv_reads;
    into.kv_writes += delta.kv_writes;
    into.network_bytes += delta.network_bytes;
    into.rpc_calls += delta.rpc_calls;
    into.sim_seconds += delta.sim_seconds;
    into.node_seconds += delta.node_seconds;
    into.admin_kv_reads += delta.admin_kv_reads;
}
