//! End-to-end serving-layer tests: session lifecycle, sharing,
//! fairness, cancellation/deadline stops, metering conservation, and
//! prefix-cache coherence under index maintenance.

use rj_core::executor::RankJoinExecutor;
use rj_core::oracle;
use rj_core::query::{JoinSide, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_core::ExecutionMode;
use rj_serve::{
    BackendId, QueryPriority, RankJoinService, ServeConfig, ServeError, ServedBy, SessionId,
    SessionOutcome, SessionResult, SessionStatus, SubmitOptions,
};
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

/// A ~60-rows-per-side synthetic join (deterministic LCG scores, eight
/// join values) — big enough that a deep top-k query runs many ISL
/// batches.
fn fixture() -> (Cluster, RankJoinQuery) {
    let c = Cluster::new(3, CostModel::test());
    c.create_table("l", &["d"]).unwrap();
    c.create_table("r", &["d"]).unwrap();
    let client = c.client();
    let mut seed = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64) / (1u64 << 31) as f64
    };
    for (table, n) in [("l", 60usize), ("r", 64usize)] {
        for i in 0..n {
            let key = format!("{table}_{i:03}");
            let jv = vec![b'a' + (i % 8) as u8];
            let score = next();
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        rj_store::cell::Mutation::put("d", b"jk", jv),
                        rj_store::cell::Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let q = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );
    (c, q)
}

/// An ISL-prepared executor over the fixture, small batches.
fn prepared_executor(c: &Cluster, q: &RankJoinQuery) -> RankJoinExecutor {
    let mut executor = RankJoinExecutor::new(c, q.clone());
    executor.isl_config = rj_core::isl::IslConfig::uniform(4);
    executor.execution_mode = ExecutionMode::Serial;
    executor.prepare_isl().unwrap();
    executor
}

/// Service over the fixture with one registered backend.
fn serve_fixture(config: ServeConfig) -> (RankJoinService, BackendId, Cluster, RankJoinQuery) {
    let (c, q) = fixture();
    let executor = prepared_executor(&c, &q);
    let service = RankJoinService::new(config);
    let backend = service.register_backend(executor).unwrap();
    (service, backend, c, q)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        round_width: 4,
        max_queue_per_tenant: 64,
        sharing: true,
        pool_threads: Some(2),
        coalesce_hold_rounds: 0,
    }
}

fn done(service: &RankJoinService, id: SessionId) -> SessionResult {
    match service.poll(id).unwrap() {
        SessionStatus::Done(result) => result,
        other => panic!("session not done: {other:?}"),
    }
}

#[test]
fn single_session_matches_oracle_and_meters_exactly() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let id = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    assert!(matches!(service.poll(id).unwrap(), SessionStatus::Queued));
    service.run_until_idle().unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(result.served_by, ServedBy::Execution);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(3)).unwrap());
    assert!(result.charged.kv_reads > 0);
    // The billing record and the tenant's fork ledger agree exactly.
    let usage = service.tenant_usage(tenant).unwrap();
    assert_eq!(result.charged.kv_reads, usage.kv_reads);
    assert_eq!(result.charged.sim_seconds, usage.sim_seconds);
}

#[test]
fn unknown_ids_are_rejected() {
    let (other_service, foreign_backend, _c, _q) = serve_fixture(test_config());
    let (full_service, backend, _c2, _q2) = serve_fixture(test_config());
    let empty = RankJoinService::new(test_config());
    let tenant = empty.register_tenant("acme", 1.0).unwrap();
    // No backend is registered on `empty`, so a foreign id misses.
    assert!(matches!(
        empty.submit(tenant, foreign_backend, SubmitOptions::topk(1)),
        Err(ServeError::UnknownBackend)
    ));
    let real = full_service.register_tenant("acme", 1.0).unwrap();
    let id = full_service
        .submit(real, backend, SubmitOptions::topk(1))
        .unwrap();
    assert!(matches!(empty.poll(id), Err(ServeError::UnknownSession)));
    assert!(matches!(
        empty.register_tenant("bad", f64::NAN),
        Err(ServeError::InvalidWeight(_))
    ));
    assert!(matches!(
        empty.register_tenant("bad", 0.0),
        Err(ServeError::InvalidWeight(_))
    ));
    drop(other_service);
}

#[test]
fn coalescing_serves_a_group_from_one_execution() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let t1 = service.register_tenant("t1", 1.0).unwrap();
    let t2 = service.register_tenant("t2", 1.0).unwrap();
    let t3 = service.register_tenant("t3", 1.0).unwrap();
    let s1 = service.submit(t1, backend, SubmitOptions::topk(1)).unwrap();
    let s2 = service.submit(t2, backend, SubmitOptions::topk(4)).unwrap();
    let s3 = service.submit(t3, backend, SubmitOptions::topk(2)).unwrap();
    let report = service.run_round().unwrap();
    assert_eq!(report.dispatched, 3);
    assert_eq!(report.completed, 3);
    let counters = service.counters();
    assert_eq!(counters.executions, 1, "one execution serves the group");
    assert_eq!(counters.coalesced, 2);
    // Every session gets its own correct prefix.
    for (id, k) in [(s1, 1), (s2, 4), (s3, 2)] {
        let result = done(&service, id);
        assert_eq!(result.outcome, SessionOutcome::Complete);
        assert_eq!(*result.results, oracle::topk(&c, &q.with_k(k)).unwrap());
    }
    // Only the deepest session (the leader) paid; followers were free.
    assert!(service.tenant_usage(t2).unwrap().kv_reads > 0);
    assert_eq!(service.tenant_usage(t1).unwrap().kv_reads, 0);
    assert_eq!(service.tenant_usage(t3).unwrap().kv_reads, 0);
    assert_eq!(done(&service, s2).served_by, ServedBy::Execution);
    assert_eq!(done(&service, s1).served_by, ServedBy::SharedExecution);
    assert_eq!(done(&service, s3).served_by, ServedBy::SharedExecution);
}

#[test]
fn sharing_off_runs_every_session() {
    let mut config = test_config();
    config.sharing = false;
    let (service, backend, _c, _q) = serve_fixture(config);
    let t1 = service.register_tenant("t1", 1.0).unwrap();
    let t2 = service.register_tenant("t2", 1.0).unwrap();
    service.submit(t1, backend, SubmitOptions::topk(1)).unwrap();
    service.submit(t2, backend, SubmitOptions::topk(4)).unwrap();
    service.run_round().unwrap();
    let counters = service.counters();
    assert_eq!(counters.executions, 2);
    assert_eq!(counters.coalesced, 0);
    assert_eq!(counters.cache_hits, 0);
    assert!(service.tenant_usage(t1).unwrap().kv_reads > 0);
    assert!(service.tenant_usage(t2).unwrap().kv_reads > 0);
}

#[test]
fn prefix_cache_serves_shallower_later_queries_free() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let deep = service
        .submit(tenant, backend, SubmitOptions::topk(5))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, deep).outcome, SessionOutcome::Complete);
    let paid = service.tenant_usage(tenant).unwrap().kv_reads;
    let shallow = service
        .submit(tenant, backend, SubmitOptions::topk(2))
        .unwrap();
    service.run_round().unwrap();
    let result = done(&service, shallow);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(result.served_by, ServedBy::PrefixCache);
    assert_eq!(result.charged.kv_reads, 0);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(2)).unwrap());
    assert_eq!(service.counters().cache_hits, 1);
    assert_eq!(
        service.tenant_usage(tenant).unwrap().kv_reads,
        paid,
        "a cache hit reads nothing new"
    );
}

#[test]
fn cancelling_a_queued_session_is_free_and_immediate() {
    let (service, backend, _c, _q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let id = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    service.cancel(id).unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::Cancelled);
    assert_eq!(result.served_by, ServedBy::Unserved);
    assert_eq!(result.charged.kv_reads, 0);
    assert_eq!(service.tenant_usage(tenant).unwrap().kv_reads, 0);
    // The queue slot is released: the tenant can fill its queue again.
    for _ in 0..test_config().max_queue_per_tenant {
        service
            .submit(tenant, backend, SubmitOptions::topk(1))
            .unwrap();
    }
}

#[test]
fn mid_query_cancellation_charges_only_the_consumed_prefix() {
    let mut config = test_config();
    config.sharing = false; // the reference run must not serve the stopper
    let (service, backend, _c, _q) = serve_fixture(config);
    let full = service.register_tenant("full", 1.0).unwrap();
    let stopper = service.register_tenant("stopper", 1.0).unwrap();
    // Reference: the same deep query run to completion by another tenant.
    let ref_id = service
        .submit(full, backend, SubmitOptions::topk(50))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, ref_id).outcome, SessionOutcome::Complete);
    let full_cost = service.tenant_usage(full).unwrap();
    // The stopper cancels after 2 batches, mid-query.
    let mut opts = SubmitOptions::topk(50);
    opts.cancel_after_batches = Some(2);
    let id = service.submit(stopper, backend, opts).unwrap();
    service.run_round().unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::Cancelled);
    let prefix_cost = service.tenant_usage(stopper).unwrap();
    assert!(prefix_cost.kv_reads > 0, "the consumed prefix is billed");
    assert!(
        prefix_cost.kv_reads < full_cost.kv_reads,
        "a cancelled query must charge less than a full one ({} vs {})",
        prefix_cost.kv_reads,
        full_cost.kv_reads
    );
    // Billing record == fork ledger, exactly.
    assert_eq!(result.charged.kv_reads, prefix_cost.kv_reads);
    assert_eq!(result.charged.sim_seconds, prefix_cost.sim_seconds);
    assert_eq!(service.counters().cancelled, 1);
}

#[test]
fn cancelled_runs_never_populate_the_prefix_cache() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let mut opts = SubmitOptions::topk(50);
    opts.cancel_after_batches = Some(1);
    let id = service.submit(tenant, backend, opts).unwrap();
    service.run_round().unwrap();
    assert_eq!(done(&service, id).outcome, SessionOutcome::Cancelled);
    // A later shallow query must execute — the stopped run's unverified
    // candidates are not servable state.
    let shallow = service
        .submit(tenant, backend, SubmitOptions::topk(1))
        .unwrap();
    service.run_round().unwrap();
    let result = done(&service, shallow);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(result.served_by, ServedBy::Execution);
    assert_eq!(service.counters().cache_hits, 0);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(1)).unwrap());
}

#[test]
fn deadline_expiry_stops_at_batch_boundary_and_bills_prefix() {
    let mut config = test_config();
    config.sharing = false;
    let (service, backend, _c, _q) = serve_fixture(config);
    let full = service.register_tenant("full", 1.0).unwrap();
    let bounded = service.register_tenant("bounded", 1.0).unwrap();
    let ref_id = service
        .submit(full, backend, SubmitOptions::topk(50))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, ref_id).outcome, SessionOutcome::Complete);
    let full_cost = service.tenant_usage(full).unwrap();
    let opts = SubmitOptions::topk(50).with_deadline(full_cost.sim_seconds / 2.0);
    let id = service.submit(bounded, backend, opts).unwrap();
    service.run_round().unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::DeadlineExpired);
    let cost = service.tenant_usage(bounded).unwrap();
    assert!(cost.kv_reads > 0 && cost.kv_reads < full_cost.kv_reads);
    assert_eq!(result.charged.kv_reads, cost.kv_reads);
    assert_eq!(service.counters().deadline_expired, 1);
}

#[test]
fn stopped_leader_requeues_followers_who_then_complete() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let t1 = service.register_tenant("t1", 1.0).unwrap();
    let t2 = service.register_tenant("t2", 1.0).unwrap();
    // The deepest session (the would-be leader) dies after one batch...
    let mut leader_opts = SubmitOptions::topk(50);
    leader_opts.cancel_after_batches = Some(1);
    let leader = service.submit(t1, backend, leader_opts).unwrap();
    let follower = service.submit(t2, backend, SubmitOptions::topk(2)).unwrap();
    let report = service.run_round().unwrap();
    assert_eq!(report.requeued, 1, "follower goes back to the queue");
    assert_eq!(done(&service, leader).outcome, SessionOutcome::Cancelled);
    assert!(matches!(
        service.poll(follower).unwrap(),
        SessionStatus::Queued
    ));
    // ...and the follower completes correctly on a later round.
    service.run_until_idle().unwrap();
    let result = done(&service, follower);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(2)).unwrap());
}

#[test]
fn priority_classes_are_strict() {
    let mut config = test_config();
    config.round_width = 1;
    let (service, backend, _c, _q) = serve_fixture(config);
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let bg = service
        .submit(
            tenant,
            backend,
            SubmitOptions::topk(2).with_priority(QueryPriority::Background),
        )
        .unwrap();
    let fg = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    service.run_round().unwrap();
    assert!(
        matches!(service.poll(fg).unwrap(), SessionStatus::Done(_)),
        "the later interactive session is served first"
    );
    assert!(matches!(service.poll(bg).unwrap(), SessionStatus::Queued));
}

#[test]
fn admission_rejects_past_the_queue_bound() {
    let mut config = test_config();
    config.max_queue_per_tenant = 2;
    let (service, backend, _c, _q) = serve_fixture(config);
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    service
        .submit(tenant, backend, SubmitOptions::topk(1))
        .unwrap();
    service
        .submit(tenant, backend, SubmitOptions::topk(1))
        .unwrap();
    match service.submit(tenant, backend, SubmitOptions::topk(1)) {
        Err(ServeError::QueueFull { tenant }) => assert_eq!(tenant, "acme"),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.counters().rejected, 1);
}

#[test]
fn weighted_fairness_serves_proportionally() {
    let mut config = test_config();
    config.round_width = 1;
    config.sharing = false; // every session must pay for fairness to bite
    let (service, backend, _c, _q) = serve_fixture(config);
    let heavy = service.register_tenant("heavy", 2.0).unwrap();
    let light = service.register_tenant("light", 1.0).unwrap();
    let per_tenant = 12;
    let mut heavy_ids = Vec::new();
    let mut light_ids = Vec::new();
    for _ in 0..per_tenant {
        heavy_ids.push(
            service
                .submit(heavy, backend, SubmitOptions::topk(3))
                .unwrap(),
        );
    }
    for _ in 0..per_tenant {
        light_ids.push(
            service
                .submit(light, backend, SubmitOptions::topk(3))
                .unwrap(),
        );
    }
    let completions = |ids: &[SessionId]| {
        ids.iter()
            .filter(|id| matches!(service.poll(**id).unwrap(), SessionStatus::Done(_)))
            .count()
    };
    // Run until the heavy tenant drains; the light tenant should have
    // received about half as much service by then (weight 2 vs 1).
    let mut rounds = 0;
    while completions(&heavy_ids) < per_tenant {
        service.run_round().unwrap();
        rounds += 1;
        assert!(rounds < 100, "fairness loop did not converge");
    }
    let light_done = completions(&light_ids) as i64;
    let expected = (per_tenant / 2) as i64;
    assert!(
        (light_done - expected).abs() <= 2,
        "weight-2 vs weight-1: light finished {light_done}, expected ~{expected}"
    );
}

#[test]
fn metered_work_is_conserved() {
    let (service, backend, _c, _q) = serve_fixture(test_config());
    let tenants: Vec<_> = (0..3)
        .map(|i| {
            service
                .register_tenant(&format!("t{i}"), 1.0 + i as f64)
                .unwrap()
        })
        .collect();
    for round in 0..4 {
        for (i, t) in tenants.iter().enumerate() {
            let mut opts = SubmitOptions::topk(1 + (round + i) % 5);
            if (round + i) % 3 == 0 {
                opts.cancel_after_batches = Some(1);
            }
            service.submit(*t, backend, opts).unwrap();
        }
        service.run_round().unwrap();
    }
    service.run_until_idle().unwrap();
    // Ledgers (ground truth) == billing records, per tenant and in total:
    // every read the cluster performed was billed to exactly one session.
    let mut ledger_sum = 0u64;
    for t in &tenants {
        let usage = service.tenant_usage(*t).unwrap();
        let charged = service.tenant_charged(*t).unwrap();
        assert_eq!(usage.kv_reads, charged.kv_reads);
        assert!((usage.sim_seconds - charged.sim_seconds).abs() < 1e-9);
        ledger_sum += usage.kv_reads;
    }
    let total = service.total_usage();
    let billed = service.charged_total();
    assert_eq!(total.kv_reads, ledger_sum);
    assert_eq!(total.kv_reads, billed.kv_reads);
    assert!((total.sim_seconds - billed.sim_seconds).abs() < 1e-9);
}

#[test]
fn rebuild_invalidates_the_prefix_cache_coherently() {
    let (service, backend, c, q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let deep = service
        .submit(tenant, backend, SubmitOptions::topk(5))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, deep).outcome, SessionOutcome::Complete);
    // Write new base data and rebuild the index in the background class.
    let client = c.client();
    client
        .mutate_row(
            "l",
            b"l_new",
            vec![
                rj_store::cell::Mutation::put("d", b"jk", b"a".to_vec()),
                rj_store::cell::Mutation::put("d", b"score", 0.99f64.to_be_bytes().to_vec()),
            ],
        )
        .unwrap();
    service.schedule_rebuild(backend).unwrap();
    service.run_round().unwrap();
    assert_eq!(service.counters().maintenance_runs, 1);
    // The old prefix MUST NOT serve: the answer changed.
    let fresh = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    service.run_round().unwrap();
    let result = done(&service, fresh);
    assert_eq!(
        result.served_by,
        ServedBy::Execution,
        "stale prefix refused"
    );
    assert_eq!(service.counters().cache_hits, 0);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(3)).unwrap());
}

#[test]
fn stats_version_bump_blocks_stale_prefix_service() {
    // The maintained-write path invalidates prefixes through the shared
    // statistics handle's version counter; simulate the bump directly.
    let (c, q) = fixture();
    let executor = prepared_executor(&c, &q);
    let stats = executor.stats_handle();
    let service = RankJoinService::new(test_config());
    let backend = service.register_backend(executor).unwrap();
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let deep = service
        .submit(tenant, backend, SubmitOptions::topk(5))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, deep).outcome, SessionOutcome::Complete);
    stats.invalidate(); // what any maintained write does, minus the write
    let shallow = service
        .submit(tenant, backend, SubmitOptions::topk(2))
        .unwrap();
    service.run_round().unwrap();
    assert_eq!(done(&service, shallow).served_by, ServedBy::Execution);
    assert_eq!(service.counters().cache_hits, 0);
}

#[test]
fn paged_session_pages_through_at_no_extra_total_cost() {
    let mut config = test_config();
    config.sharing = false; // isolate costs: no cache or warm-start reuse
    let (service, backend, c, q) = serve_fixture(config);
    let oneshot = service.register_tenant("oneshot", 1.0).unwrap();
    let pager = service.register_tenant("pager", 1.0).unwrap();
    // Reference: the same k=50 query run in one dispatch.
    let ref_id = service
        .submit(oneshot, backend, SubmitOptions::topk(50))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, ref_id).outcome, SessionOutcome::Complete);
    let full_cost = service.tenant_usage(oneshot).unwrap();

    // Page through the same query 10 ranks at a time.
    let id = service
        .submit(pager, backend, SubmitOptions::topk(50).with_page_size(10))
        .unwrap();
    service.run_round().unwrap();
    let mut pages = 1;
    let result = loop {
        match service.poll(id).unwrap() {
            SessionStatus::Paged(info) => {
                assert_eq!(info.results.len(), pages * 10, "page certifies 10 more");
                service.next_page(info.token).unwrap();
                pages += 1;
            }
            SessionStatus::Done(result) => break result,
            other => panic!("unexpected status {other:?}"),
        }
    };
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(result.served_by, ServedBy::Execution);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(50)).unwrap());
    assert_eq!(pages, 5, "50 ranks at 10 per page");
    assert_eq!(service.counters().pages_served, 5);
    // The acceptance bound: pausing and resuming never re-reads the
    // consumed prefix, so paging costs no more than the one-shot run.
    let paged_cost = service.tenant_usage(pager).unwrap();
    assert!(
        paged_cost.kv_reads <= full_cost.kv_reads,
        "paging k=50 read {} kv entries, one-shot read {}",
        paged_cost.kv_reads,
        full_cost.kv_reads
    );
    // Billing record == fork ledger, exactly, summed over all pages.
    assert_eq!(result.charged.kv_reads, paged_cost.kv_reads);
    assert!((result.charged.sim_seconds - paged_cost.sim_seconds).abs() < 1e-9);
}

#[test]
fn paged_session_can_be_cancelled_between_pages() {
    let (service, backend, _c, _q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let id = service
        .submit(tenant, backend, SubmitOptions::topk(40).with_page_size(5))
        .unwrap();
    service.run_round().unwrap();
    let SessionStatus::Paged(info) = service.poll(id).unwrap() else {
        panic!("session should be parked after its first page");
    };
    service.cancel(id).unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::Cancelled);
    // Billed exactly the pages served; the certified prefix is kept.
    assert_eq!(result.results.len(), 5);
    assert!(result.charged.kv_reads > 0);
    assert_eq!(
        result.charged.kv_reads,
        service.tenant_usage(tenant).unwrap().kv_reads
    );
    // The old continuation is dead.
    assert!(matches!(
        service.next_page(info.token),
        Err(ServeError::InvalidContinuation)
    ));
}

#[test]
fn stale_continuation_is_refused_with_typed_error() {
    let (c, q) = fixture();
    let executor = prepared_executor(&c, &q);
    let stats = executor.stats_handle();
    let service = RankJoinService::new(test_config());
    let backend = service.register_backend(executor).unwrap();
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let id = service
        .submit(tenant, backend, SubmitOptions::topk(20).with_page_size(5))
        .unwrap();
    service.run_round().unwrap();
    let SessionStatus::Paged(info) = service.poll(id).unwrap() else {
        panic!("session should be parked after its first page");
    };
    // What any maintained write or rebuild does to the shared handle.
    stats.invalidate();
    match service.next_page(info.token) {
        Err(ServeError::StaleContinuation { expected, found }) => {
            assert!(found > expected, "version moved forward");
        }
        other => panic!("expected StaleContinuation, got {other:?}"),
    }
    // The session failed terminally; the dead token no longer resolves.
    let result = done(&service, id);
    assert!(matches!(result.outcome, SessionOutcome::Failed(_)));
    assert!(matches!(
        service.next_page(info.token),
        Err(ServeError::InvalidContinuation)
    ));
}

#[test]
fn held_group_absorbs_later_arrivals_into_one_execution() {
    let mut config = test_config();
    config.coalesce_hold_rounds = 1;
    let (service, backend, c, q) = serve_fixture(config);
    let t1 = service.register_tenant("t1", 1.0).unwrap();
    let t2 = service.register_tenant("t2", 1.0).unwrap();
    let s1 = service.submit(t1, backend, SubmitOptions::topk(2)).unwrap();
    let r1 = service.run_round().unwrap();
    assert_eq!(r1.dispatched, 1);
    assert_eq!(
        service.counters().executions,
        0,
        "the group is held open, not executed"
    );
    assert!(matches!(service.poll(s1).unwrap(), SessionStatus::Running));
    // A deeper compatible query arrives during the hold window...
    let s2 = service.submit(t2, backend, SubmitOptions::topk(4)).unwrap();
    service.run_round().unwrap();
    // ...and the released group runs as ONE execution at the deepest k.
    let counters = service.counters();
    assert_eq!(counters.executions, 1);
    assert_eq!(counters.coalesced, 1);
    let first = done(&service, s1);
    assert_eq!(first.served_by, ServedBy::SharedExecution);
    assert_eq!(first.charged.kv_reads, 0, "absorbed session rides free");
    assert_eq!(*first.results, oracle::topk(&c, &q.with_k(2)).unwrap());
    let second = done(&service, s2);
    assert_eq!(second.served_by, ServedBy::Execution);
    assert_eq!(*second.results, oracle::topk(&c, &q.with_k(4)).unwrap());
    // run_until_idle drains a freshly held group by itself.
    let s3 = service.submit(t1, backend, SubmitOptions::topk(5)).unwrap();
    service.run_until_idle().unwrap();
    assert!(matches!(service.poll(s3).unwrap(), SessionStatus::Done(_)));
}

#[test]
fn staleness_bound_crossing_enqueues_automatic_rebuild() {
    let (c, q) = fixture();
    let mut executor = prepared_executor(&c, &q);
    executor.staleness_bound = 0.05;
    executor.plan().unwrap(); // prime the maintained snapshot
    let stats = executor.stats_handle();
    let side = rj_core::maintenance::MaintainedSide::new(&c, q.left.clone())
        .with_isl(&rj_core::isl::index_table_name(&q))
        .with_stats(stats.clone());
    let service = RankJoinService::new(test_config());
    let backend = service.register_backend(executor).unwrap();
    let tenant = service.register_tenant("acme", 1.0).unwrap();

    // Below the bound (1 of 60 left tuples): no automatic rebuild.
    side.insert(b"m_000", b"a", 0.91, vec![]).unwrap();
    let below = service
        .submit(tenant, backend, SubmitOptions::topk(2))
        .unwrap();
    service.run_until_idle().unwrap();
    assert_eq!(done(&service, below).outcome, SessionOutcome::Complete);
    assert_eq!(service.counters().staleness_rebuilds, 0);
    assert_eq!(service.counters().maintenance_runs, 0);

    // Cross the bound (5 of 60 ≈ 8% > 5%): the next round enqueues and
    // runs the rebuild in the background class.
    for i in 1..5u32 {
        let key = format!("m_{i:03}");
        side.insert(key.as_bytes(), b"b", 0.5 + f64::from(i) * 0.05, vec![])
            .unwrap();
    }
    assert!(stats.staleness() > 0.05);
    service.run_round().unwrap();
    let counters = service.counters();
    assert_eq!(counters.staleness_rebuilds, 1);
    assert_eq!(counters.maintenance_runs, 1);
    // The rebuild re-collected statistics: the staleness clock restarted,
    // so the trigger stays quiet until new churn accumulates.
    assert_eq!(stats.staleness(), 0.0);
    service.run_round().unwrap();
    assert_eq!(service.counters().staleness_rebuilds, 1);
    // And the served answers reflect the maintained writes.
    let fresh = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    service.run_until_idle().unwrap();
    let result = done(&service, fresh);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(3)).unwrap());
}

#[test]
fn donated_cursor_state_warm_starts_deeper_queries() {
    // Control: the cold cost of a k=50 run, on an identical fixture.
    let (cold_service, cold_backend, _cc, _cq) = serve_fixture(test_config());
    let cold_tenant = cold_service.register_tenant("cold", 1.0).unwrap();
    let cold_id = cold_service
        .submit(cold_tenant, cold_backend, SubmitOptions::topk(50))
        .unwrap();
    cold_service.run_until_idle().unwrap();
    assert_eq!(
        done(&cold_service, cold_id).outcome,
        SessionOutcome::Complete
    );
    let cold_cost = cold_service.tenant_usage(cold_tenant).unwrap();

    // Treatment: a cancelled k=50 run donates its descent state; the
    // retry warm-starts from it and pays only the remainder.
    let (service, backend, c, q) = serve_fixture(test_config());
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let mut opts = SubmitOptions::topk(50);
    opts.cancel_after_batches = Some(2);
    let stopped = service.submit(tenant, backend, opts).unwrap();
    service.run_round().unwrap();
    assert_eq!(done(&service, stopped).outcome, SessionOutcome::Cancelled);
    let stopped_cost = service.tenant_usage(tenant).unwrap();
    assert!(stopped_cost.kv_reads > 0);

    let retry = service
        .submit(tenant, backend, SubmitOptions::topk(50))
        .unwrap();
    service.run_until_idle().unwrap();
    let result = done(&service, retry);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(*result.results, oracle::topk(&c, &q.with_k(50)).unwrap());
    assert_eq!(service.counters().warm_starts, 1);
    let warm_reads = service.tenant_usage(tenant).unwrap().kv_reads - stopped_cost.kv_reads;
    assert!(
        warm_reads < cold_cost.kv_reads,
        "warm-started k=50 read {} kv entries, cold read {}",
        warm_reads,
        cold_cost.kv_reads
    );
}

/// A small three-table path join (A–B–C on one shared join column set)
/// for the multi-way serving tests.
fn three_way_fixture() -> (Cluster, rj_core::query::JoinSpec) {
    let c = Cluster::new(3, CostModel::test());
    for t in ["ta", "tb", "tc"] {
        c.create_table(t, &["d"]).unwrap();
    }
    let client = c.client();
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f64) / (1u64 << 31) as f64
    };
    for (table, n) in [("ta", 18usize), ("tb", 16), ("tc", 17)] {
        for i in 0..n {
            let key = format!("{table}_{i:03}");
            let jv = vec![b'a' + (i % 5) as u8];
            let score = next();
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        rj_store::cell::Mutation::put("d", b"jk", jv),
                        rj_store::cell::Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let sides = vec![
        JoinSide::new("ta", "A", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("tb", "B", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("tc", "C", ("d", b"jk"), ("d", b"score")),
    ];
    let spec = rj_core::query::JoinSpec::path(sides, 5, rj_core::score::ScoreFn::Sum).unwrap();
    (c, spec)
}

#[test]
fn equivalent_registrations_share_one_backend() {
    let (c, q) = fixture();
    let service = RankJoinService::new(test_config());
    let b1 = service.register_backend(prepared_executor(&c, &q)).unwrap();
    let b2 = service.register_backend(prepared_executor(&c, &q)).unwrap();
    assert_eq!(b1, b2, "same spec + same config must dedupe");
    // A different execution config is a different share key.
    let mut other = prepared_executor(&c, &q);
    other.isl_config = rj_core::isl::IslConfig::uniform(8);
    let b3 = service.register_backend(other).unwrap();
    assert_ne!(b1, b3, "different execution config must not share");
}

#[test]
fn spec_backend_serves_three_way_sessions() {
    let (c, spec) = three_way_fixture();
    let mut exec = rj_core::multiway::SpecExecutor::new(&c, spec.clone());
    exec.prepare().unwrap();
    let service = RankJoinService::new(test_config());
    let backend = service.register_spec_backend(exec).unwrap();
    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let id = service
        .submit(tenant, backend, SubmitOptions::topk(5))
        .unwrap();
    service.run_until_idle().unwrap();
    let result = done(&service, id);
    assert_eq!(result.outcome, SessionOutcome::Complete);
    assert_eq!(result.served_by, ServedBy::Execution);
    assert_eq!(
        *result.results,
        rj_core::oracle::topk_spec(&c, &spec.with_k(5)).unwrap()
    );
    assert!(result.charged.kv_reads > 0);

    // A shallower follow-up is served from the prefix cache for free.
    let id2 = service
        .submit(tenant, backend, SubmitOptions::topk(3))
        .unwrap();
    service.run_until_idle().unwrap();
    let r2 = done(&service, id2);
    assert_eq!(r2.served_by, ServedBy::PrefixCache);
    assert_eq!(
        *r2.results,
        rj_core::oracle::topk_spec(&c, &spec.with_k(3)).unwrap()
    );
    assert_eq!(r2.charged.kv_reads, 0);
}

#[test]
fn three_way_spec_never_aliases_its_binary_prefix() {
    let (c, spec) = three_way_fixture();
    // A binary backend over the first two sides of the same spec.
    let q = RankJoinQuery::new(
        JoinSide::new("ta", "A", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("tb", "B", ("d", b"jk"), ("d", b"score")),
        5,
        ScoreFn::Sum,
    );
    let mut binary = RankJoinExecutor::new(&c, q.clone());
    binary.prepare_isl().unwrap();
    let mut spec_exec = rj_core::multiway::SpecExecutor::new(&c, spec.clone());
    spec_exec.prepare().unwrap();

    let service = RankJoinService::new(test_config());
    let pair_backend = service.register_backend(binary).unwrap();
    let spec_backend = service.register_spec_backend(spec_exec).unwrap();
    assert_ne!(
        pair_backend, spec_backend,
        "a three-way spec must not share the binary pair's backend"
    );

    let tenant = service.register_tenant("acme", 1.0).unwrap();
    let pair_session = service
        .submit(tenant, pair_backend, SubmitOptions::topk(5))
        .unwrap();
    let spec_session = service
        .submit(tenant, spec_backend, SubmitOptions::topk(5))
        .unwrap();
    service.run_until_idle().unwrap();
    let pair_result = done(&service, pair_session);
    let spec_result = done(&service, spec_session);
    // Neither session was answered from the other's execution or caches.
    assert_eq!(pair_result.served_by, ServedBy::Execution);
    assert_eq!(spec_result.served_by, ServedBy::Execution);
    assert_eq!(*pair_result.results, oracle::topk(&c, &q).unwrap());
    assert_eq!(
        *spec_result.results,
        rj_core::oracle::topk_spec(&c, &spec).unwrap()
    );
}
