//! Refresh (update) sets, in the spirit of TPC-H RF1/RF2.
//!
//! The paper's online-updates experiment (§7.2): "each consisting of
//! ≈ s×600 insertions and ≈ s×150 deletions for scale-factor s. We then
//! applied each of these sets in their entirety (i.e., ≈ 750 mutations),
//! followed by a single query". Inserts are new orders (with their
//! lineitems) keyed past the loaded domain; deletes remove loaded orders
//! and their lineitems.

use crate::gen::{self, LineitemRow, OrderRow, TpchConfig};

/// One refresh set.
#[derive(Clone, Debug, Default)]
pub struct UpdateSet {
    /// New orders to insert.
    pub insert_orders: Vec<OrderRow>,
    /// Lineitems of the new orders.
    pub insert_lineitems: Vec<LineitemRow>,
    /// Order keys to delete (with all their lineitems).
    pub delete_orders: Vec<OrderRow>,
    /// Lineitems of the deleted orders.
    pub delete_lineitems: Vec<LineitemRow>,
}

impl UpdateSet {
    /// Total mutation count (rows inserted + rows deleted).
    pub fn mutation_count(&self) -> usize {
        self.insert_orders.len()
            + self.insert_lineitems.len()
            + self.delete_orders.len()
            + self.delete_lineitems.len()
    }
}

/// Generates refresh set `set_index` (0-based). Set `i` inserts order
/// indices `N + i·B .. N + (i+1)·B` and deletes order indices
/// `i·D .. (i+1)·D` of the originally loaded range. Insert sets are always
/// disjoint; delete sets are disjoint until `(i+1)·D` exceeds the loaded
/// order count, after which the delete range wraps and revisits orders
/// earlier sets already deleted (such deletes are no-ops downstream).
pub fn generate_update_set(cfg: &TpchConfig, set_index: u64) -> UpdateSet {
    let n_orders = cfg.order_count();
    let parts = cfg.part_count();
    // Row-count targets: TPC-H RF1 = SF×1500 new orders... the paper's sets
    // are ≈600·SF inserts / 150·SF deletes *total rows*; with ≈4 lineitems
    // per order, that is ≈120·SF new orders and ≈30·SF deleted orders.
    // Floors keep laptop-scale (SF ≪ 0.01) refresh sets meaningful: a set
    // of 4 orders against hundreds of loaded ones is pure noise, and the
    // §7.2 experiment needs each set to plausibly perturb the top-k.
    let insert_orders_n = ((cfg.scale_factor * 120.0) as u64).max(24);
    let delete_orders_n = ((cfg.scale_factor * 30.0) as u64).max(6);
    // Within-set delete indices are distinct only while D <= n_orders;
    // order_count()'s floor of 16 keeps this true for every SF today.
    debug_assert!(delete_orders_n <= n_orders);

    let mut set = UpdateSet::default();
    let insert_base = n_orders + set_index * insert_orders_n;
    for i in insert_base..insert_base + insert_orders_n {
        set.insert_orders.push(gen::order_row(cfg, i));
        set.insert_lineitems
            .extend(gen::lineitems_of_order(cfg, i, parts));
    }
    let delete_base = (set_index * delete_orders_n) % n_orders.max(1);
    for i in delete_base..delete_base + delete_orders_n {
        let idx = i % n_orders;
        set.delete_orders.push(gen::order_row(cfg, idx));
        set.delete_lineitems
            .extend(gen::lineitems_of_order(cfg, idx, parts));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_track_scale_factor() {
        let cfg = TpchConfig::new(1.0);
        let set = generate_update_set(&cfg, 0);
        // ≈120 new orders with ≈4 lineitems each ≈ 600 insert rows.
        let inserts = set.insert_orders.len() + set.insert_lineitems.len();
        let deletes = set.delete_orders.len() + set.delete_lineitems.len();
        assert!((400..900).contains(&inserts), "inserts = {inserts}");
        assert!((90..260).contains(&deletes), "deletes = {deletes}");
    }

    #[test]
    fn inserted_orders_are_beyond_loaded_domain() {
        let cfg = TpchConfig::new(0.001);
        let set = generate_update_set(&cfg, 0);
        for o in &set.insert_orders {
            assert!(o.order_key > cfg.order_count());
        }
    }

    #[test]
    fn consecutive_sets_are_disjoint() {
        let cfg = TpchConfig::new(0.01);
        let s0 = generate_update_set(&cfg, 0);
        let s1 = generate_update_set(&cfg, 1);
        let keys0: std::collections::HashSet<u64> =
            s0.insert_orders.iter().map(|o| o.order_key).collect();
        assert!(s1
            .insert_orders
            .iter()
            .all(|o| !keys0.contains(&o.order_key)));
        let del0: std::collections::HashSet<u64> =
            s0.delete_orders.iter().map(|o| o.order_key).collect();
        assert!(s1
            .delete_orders
            .iter()
            .all(|o| !del0.contains(&o.order_key)));
    }

    #[test]
    fn deletes_reference_loaded_orders() {
        let cfg = TpchConfig::new(0.001);
        let set = generate_update_set(&cfg, 0);
        for o in &set.delete_orders {
            assert!(o.order_key <= cfg.order_count());
        }
        assert!(set.mutation_count() > 0);
    }
}
