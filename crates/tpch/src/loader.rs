//! Store layout and bulk loader for the TPC-H-style tables.
//!
//! Layout (one column family `d`, one row per tuple):
//!
//! | table      | row key                                | columns |
//! |------------|----------------------------------------|---------|
//! | `part`     | `u64be(part_key)`                      | `jk` = u64be(part_key), `score` = f64be(retail_score), `name`, `comment` |
//! | `orders`   | `u64be(order_key)`                     | `jk` = u64be(order_key), `score` = f64be(total_score), `comment` |
//! | `lineitem` | `u64be(order_key) \| u32be(line_no)`   | `jk_part` = u64be(part_key), `jk_order` = u64be(order_key), `score` = f64be(extended_score), `comment` |
//!
//! Scores are stored as plain big-endian `f64` bits (what the
//! [`rj_store::filter::ScoreAtLeast`] server filter decodes); key-encoded
//! variants are an index concern, not a base-table one. Tables are
//! pre-split into `2 × nodes` regions over the key domain so mappers get
//! balanced, deterministic splits.

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::error::Result;
use rj_store::keys;

use crate::gen::{self, TpchConfig};

/// Base-table name: Part.
pub const PART_TABLE: &str = "part";
/// Base-table name: Orders.
pub const ORDERS_TABLE: &str = "orders";
/// Base-table name: Lineitem.
pub const LINEITEM_TABLE: &str = "lineitem";
/// The single data column family.
pub const FAMILY: &str = "d";

/// Column qualifiers.
pub mod cols {
    /// Join key (part: part_key; orders: order_key), u64 BE.
    pub const JK: &[u8] = b"jk";
    /// Lineitem's part-side join key, u64 BE.
    pub const JK_PART: &[u8] = b"jk_part";
    /// Lineitem's order-side join key, u64 BE.
    pub const JK_ORDER: &[u8] = b"jk_order";
    /// Normalized score, f64 BE bits.
    pub const SCORE: &[u8] = b"score";
    /// Part name.
    pub const NAME: &[u8] = b"name";
    /// Filler comment.
    pub const COMMENT: &[u8] = b"comment";
}

/// Row-key encoders.
pub mod rowkeys {
    use rj_store::keys;

    /// Part row key.
    pub fn part(part_key: u64) -> Vec<u8> {
        keys::encode_u64(part_key).to_vec()
    }

    /// Orders row key.
    pub fn order(order_key: u64) -> Vec<u8> {
        keys::encode_u64(order_key).to_vec()
    }

    /// Lineitem row key: `order_key | line_number`.
    pub fn lineitem(order_key: u64, line_number: u32) -> Vec<u8> {
        keys::composite(&[&keys::encode_u64(order_key), &keys::encode_u32(line_number)])
    }
}

/// What got loaded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Part rows.
    pub parts: u64,
    /// Orders rows.
    pub orders: u64,
    /// Lineitem rows.
    pub lineitems: u64,
}

fn uniform_splits(max_key: u64, pieces: usize) -> Vec<Vec<u8>> {
    (1..pieces)
        .map(|i| keys::encode_u64(max_key * i as u64 / pieces as u64).to_vec())
        .collect()
}

/// Mutations materializing one Part row.
pub fn part_mutations(row: &gen::PartRow) -> Vec<Mutation> {
    vec![
        Mutation::put(FAMILY, cols::JK, keys::encode_u64(row.part_key).to_vec()),
        Mutation::put(FAMILY, cols::SCORE, row.retail_score.to_be_bytes().to_vec()),
        Mutation::put(FAMILY, cols::NAME, row.name.clone().into_bytes()),
        Mutation::put(FAMILY, cols::COMMENT, row.comment.clone().into_bytes()),
    ]
}

/// Mutations materializing one Orders row.
pub fn order_mutations(row: &gen::OrderRow) -> Vec<Mutation> {
    vec![
        Mutation::put(FAMILY, cols::JK, keys::encode_u64(row.order_key).to_vec()),
        Mutation::put(FAMILY, cols::SCORE, row.total_score.to_be_bytes().to_vec()),
        Mutation::put(FAMILY, cols::COMMENT, row.comment.clone().into_bytes()),
    ]
}

/// Mutations materializing one Lineitem row.
pub fn lineitem_mutations(row: &gen::LineitemRow) -> Vec<Mutation> {
    vec![
        Mutation::put(
            FAMILY,
            cols::JK_PART,
            keys::encode_u64(row.part_key).to_vec(),
        ),
        Mutation::put(
            FAMILY,
            cols::JK_ORDER,
            keys::encode_u64(row.order_key).to_vec(),
        ),
        Mutation::put(
            FAMILY,
            cols::SCORE,
            row.extended_score.to_be_bytes().to_vec(),
        ),
        Mutation::put(FAMILY, cols::COMMENT, row.comment.clone().into_bytes()),
    ]
}

/// Creates and loads all three base tables.
pub fn load_all(cluster: &Cluster, cfg: &TpchConfig) -> Result<LoadStats> {
    let pieces = cluster.num_nodes() * 2;
    cluster.create_table_with_splits(
        PART_TABLE,
        &[FAMILY],
        &uniform_splits(cfg.part_count(), pieces),
    )?;
    cluster.create_table_with_splits(
        ORDERS_TABLE,
        &[FAMILY],
        &uniform_splits(cfg.order_count(), pieces),
    )?;
    // Lineitem keys are prefixed by order key: split on the same domain.
    let li_splits: Vec<Vec<u8>> = (1..pieces)
        .map(|i| rowkeys::lineitem(cfg.order_count() * i as u64 / pieces as u64, 0))
        .collect();
    cluster.create_table_with_splits(LINEITEM_TABLE, &[FAMILY], &li_splits)?;

    let client = cluster.client();
    let mut stats = LoadStats::default();
    for row in gen::parts(cfg) {
        client.mutate_row(
            PART_TABLE,
            &rowkeys::part(row.part_key),
            part_mutations(&row),
        )?;
        stats.parts += 1;
    }
    for row in gen::orders(cfg) {
        client.mutate_row(
            ORDERS_TABLE,
            &rowkeys::order(row.order_key),
            order_mutations(&row),
        )?;
        stats.orders += 1;
    }
    for row in gen::lineitems(cfg) {
        client.mutate_row(
            LINEITEM_TABLE,
            &rowkeys::lineitem(row.order_key, row.line_number),
            lineitem_mutations(&row),
        )?;
        stats.lineitems += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rj_store::costmodel::CostModel;
    use rj_store::scan::Scan;

    #[test]
    fn load_small_scale() {
        let cluster = Cluster::new(3, CostModel::test());
        let cfg = TpchConfig::new(0.0005); // 100 parts, 750 orders
        let stats = load_all(&cluster, &cfg).unwrap();
        assert_eq!(stats.parts, cfg.part_count());
        assert_eq!(stats.orders, cfg.order_count());
        assert!(stats.lineitems >= stats.orders);

        let part = cluster.table(PART_TABLE).unwrap();
        assert_eq!(part.row_count() as u64, stats.parts);
        assert!(part.region_infos().len() >= 2, "pre-split regions exist");

        // Spot-check one row roundtrip.
        let client = cluster.client();
        let row = client
            .get(PART_TABLE, &rowkeys::part(1))
            .unwrap()
            .expect("part 1 exists");
        let score = f64::from_be_bytes(
            row.value(FAMILY, cols::SCORE)
                .unwrap()
                .as_ref()
                .try_into()
                .unwrap(),
        );
        let expected = gen::part_row(&cfg, 0).retail_score;
        assert_eq!(score, expected);
    }

    #[test]
    fn lineitem_rows_scan_grouped_by_order() {
        let cluster = Cluster::new(2, CostModel::test());
        let cfg = TpchConfig::new(0.0002);
        load_all(&cluster, &cfg).unwrap();
        let client = cluster.client();
        let mut last_order = 0u64;
        for row in client.scan(LINEITEM_TABLE, Scan::new()).unwrap() {
            let order = rj_store::keys::decode_u64(&row.key).unwrap();
            assert!(order >= last_order, "lineitems sorted by order key");
            last_order = order;
        }
    }

    #[test]
    fn uniform_splits_are_ordered() {
        let s = uniform_splits(1000, 4);
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
