//! Pseudo-random filler text, in the spirit of TPC-H's comment columns.
//!
//! Rows need realistic widths for byte-level metrics (network, disk) to
//! mean anything; TPC-H pads every row with generated prose. We do the
//! same with a small word list and a splitmix64 stream.

/// TPC-H-flavoured vocabulary (colors + dbgen-style nouns/adjectives).
const WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic sequence of `n` words derived from `seed`.
pub fn words(seed: u64, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let w = WORDS[(mix(seed.wrapping_add(i as u64)) % WORDS.len() as u64) as usize];
        out.push_str(w);
    }
    out
}

/// A part name: five words, like dbgen's `P_NAME`.
pub fn part_name(seed: u64) -> String {
    words(seed, 5)
}

/// A comment of roughly TPC-H width (40–80 bytes).
pub fn comment(seed: u64) -> String {
    let n = 6 + (mix(seed) % 5) as usize;
    words(seed.wrapping_mul(31), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_deterministic() {
        assert_eq!(words(42, 5), words(42, 5));
        assert_ne!(words(42, 5), words(43, 5));
    }

    #[test]
    fn part_name_has_five_words() {
        assert_eq!(part_name(7).split(' ').count(), 5);
    }

    #[test]
    fn comment_width_is_realistic() {
        for seed in 0..50 {
            let c = comment(seed);
            assert!(
                c.len() >= 20 && c.len() <= 120,
                "comment width {} out of range",
                c.len()
            );
        }
    }
}
