//! A deterministic TPC-H-style data generator and store loader.
//!
//! The paper evaluates on TPC-H's Part, Orders, and Lineitem tables at scale
//! factors 10–500 (§7.1), with two rank-join queries:
//!
//! * **Q1**: `Part ⋈ Lineitem ON PartKey`, scored by
//!   `P.RetailPrice * L.ExtendedPrice` (product),
//! * **Q2**: `Orders ⋈ Lineitem ON OrderKey`, scored by
//!   `O.TotalPrice + L.ExtendedPrice` (sum),
//!
//! chosen "to showcase both the use of different aggregate scoring
//! functions and the effect of score value distributions on the query
//! processing time" — Q2 has fewer high-ranking tuples, so algorithms must
//! dig deeper. This generator reproduces exactly those properties:
//!
//! * TPC-H cardinality ratios — `SF × 200k` parts, `SF × 1.5M` orders,
//!   1–7 lineitems per order (≈ `SF × 6M` lineitems),
//! * normalized score attributes in `[0, 1]` (§1.1's convention) with
//!   contrasting distributions: Part retail scores ≈ uniform, Lineitem
//!   extended scores mildly skewed low, Orders total scores strongly
//!   skewed low (the "fewer high-ranking tuples" of Q2),
//! * refresh sets in the spirit of TPC-H RF1/RF2: ≈ `600 × SF` inserts
//!   and ≈ `150 × SF` deletes per set (§7.2's online-updates experiment).
//!
//! Generation is deterministic and random-access: row `i` is derived from
//! `(seed, table, i)`, so tests and benches get identical data across runs
//! and platforms.

#![warn(missing_docs)]

pub mod gen;
pub mod loader;
pub mod text;
pub mod updates;

pub use gen::{LineitemRow, OrderRow, PartRow, TpchConfig};
pub use loader::{load_all, LoadStats};
pub use updates::{generate_update_set, UpdateSet};
