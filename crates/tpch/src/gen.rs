//! Row generators with TPC-H cardinalities and the paper's score
//! distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text;

/// Generator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TpchConfig {
    /// TPC-H scale factor. SF=1 is 200k parts / 1.5M orders / ≈6M
    /// lineitems; the repo's experiments run laptop-scale fractions
    /// (SF ≤ 0.1).
    pub scale_factor: f64,
    /// Master seed; all tables derive their streams from it.
    pub seed: u64,
}

impl TpchConfig {
    /// A config with the default seed.
    pub fn new(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            seed: 0x70c4_5eed,
        }
    }

    /// Number of Part rows (`SF × 200_000`, min 16).
    pub fn part_count(&self) -> u64 {
        ((self.scale_factor * 200_000.0) as u64).max(16)
    }

    /// Number of Orders rows (`SF × 1_500_000`, min 16).
    pub fn order_count(&self) -> u64 {
        ((self.scale_factor * 1_500_000.0) as u64).max(16)
    }
}

/// One Part row.
#[derive(Clone, Debug, PartialEq)]
pub struct PartRow {
    /// `P_PARTKEY`, 1-based.
    pub part_key: u64,
    /// `P_NAME`.
    pub name: String,
    /// Normalized `P_RETAILPRICE` in `[0, 1]` — ≈ uniform.
    pub retail_score: f64,
    /// Filler.
    pub comment: String,
}

/// One Orders row.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderRow {
    /// `O_ORDERKEY`, 1-based.
    pub order_key: u64,
    /// Normalized `O_TOTALPRICE` in `[0, 1]` — strongly skewed low
    /// (cube of a uniform), giving Q2 its "fewer high-ranking tuples".
    pub total_score: f64,
    /// Number of lineitems in this order (1–7, TPC-H style).
    pub lineitem_count: u32,
    /// Filler.
    pub comment: String,
}

/// One Lineitem row.
#[derive(Clone, Debug, PartialEq)]
pub struct LineitemRow {
    /// `L_ORDERKEY` (foreign key into Orders).
    pub order_key: u64,
    /// `L_LINENUMBER`, 1-based within the order.
    pub line_number: u32,
    /// `L_PARTKEY` (foreign key into Part, uniform).
    pub part_key: u64,
    /// Normalized `L_EXTENDEDPRICE` in `[0, 1]` — mildly skewed low
    /// (`u^1.5`).
    pub extended_score: f64,
    /// Filler.
    pub comment: String,
}

fn row_rng(cfg: &TpchConfig, table: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(table.wrapping_mul(0xb5ad_4ece_da1c_e2a9))
            .wrapping_add(i),
    )
}

/// Generates Part row `i` (`0 <= i < part_count`). Random access so that
/// refresh sets and tests can regenerate any row.
pub fn part_row(cfg: &TpchConfig, i: u64) -> PartRow {
    let mut rng = row_rng(cfg, 1, i);
    let u: f64 = rng.random();
    PartRow {
        part_key: i + 1,
        name: text::part_name(rng.random()),
        // Uniform, bounded away from exact 0 so every score is "real".
        retail_score: 0.02 + 0.98 * u,
        comment: text::comment(rng.random()),
    }
}

/// Generates Orders row `i` (`0 <= i < order_count`).
pub fn order_row(cfg: &TpchConfig, i: u64) -> OrderRow {
    let mut rng = row_rng(cfg, 2, i);
    let u: f64 = rng.random();
    OrderRow {
        order_key: i + 1,
        total_score: 0.01 + 0.99 * u * u * u,
        lineitem_count: rng.random_range(1..=7),
        comment: text::comment(rng.random()),
    }
}

/// Generates the lineitems of order `i`, referencing `part_count` parts.
pub fn lineitems_of_order(cfg: &TpchConfig, i: u64, part_count: u64) -> Vec<LineitemRow> {
    let order = order_row(cfg, i);
    let mut rng = row_rng(cfg, 3, i);
    (1..=order.lineitem_count)
        .map(|line_number| {
            let u: f64 = rng.random();
            LineitemRow {
                order_key: order.order_key,
                line_number,
                part_key: rng.random_range(1..=part_count),
                extended_score: 0.01 + 0.99 * u.powf(1.5),
                comment: text::comment(rng.random()),
            }
        })
        .collect()
}

/// Iterates all Part rows.
pub fn parts(cfg: &TpchConfig) -> impl Iterator<Item = PartRow> + '_ {
    (0..cfg.part_count()).map(move |i| part_row(cfg, i))
}

/// Iterates all Orders rows.
pub fn orders(cfg: &TpchConfig) -> impl Iterator<Item = OrderRow> + '_ {
    (0..cfg.order_count()).map(move |i| order_row(cfg, i))
}

/// Iterates all Lineitem rows (grouped by order).
pub fn lineitems(cfg: &TpchConfig) -> impl Iterator<Item = LineitemRow> + '_ {
    let parts = cfg.part_count();
    (0..cfg.order_count()).flat_map(move |i| lineitems_of_order(cfg, i, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TpchConfig {
        TpchConfig::new(0.001) // 200 parts, 1500 orders
    }

    #[test]
    fn cardinality_ratios() {
        let c = TpchConfig::new(1.0);
        assert_eq!(c.part_count(), 200_000);
        assert_eq!(c.order_count(), 1_500_000);
        let small = TpchConfig::new(0.0001);
        assert!(small.part_count() >= 16);
    }

    #[test]
    fn generation_is_deterministic_and_random_access() {
        let c = cfg();
        let all: Vec<PartRow> = parts(&c).collect();
        assert_eq!(part_row(&c, 57), all[57]);
        let li_a = lineitems_of_order(&c, 3, c.part_count());
        let li_b = lineitems_of_order(&c, 3, c.part_count());
        assert_eq!(li_a, li_b);
    }

    #[test]
    fn scores_in_unit_interval() {
        let c = cfg();
        for p in parts(&c) {
            assert!(p.retail_score > 0.0 && p.retail_score <= 1.0);
        }
        for o in orders(&c) {
            assert!(o.total_score > 0.0 && o.total_score <= 1.0);
        }
        for l in lineitems(&c).take(2000) {
            assert!(l.extended_score > 0.0 && l.extended_score <= 1.0);
            assert!(l.part_key >= 1 && l.part_key <= c.part_count());
        }
    }

    #[test]
    fn order_scores_are_skewed_low() {
        // Q2's defining property: few high-ranking tuples. The share of
        // orders above 0.9 must be far below uniform's 10%.
        let c = cfg();
        let n = c.order_count() as f64;
        let high = orders(&c).filter(|o| o.total_score > 0.9).count() as f64;
        let part_high =
            parts(&c).filter(|p| p.retail_score > 0.9).count() as f64 / c.part_count() as f64;
        assert!(high / n < 0.06, "orders not skewed: {}", high / n);
        assert!(part_high > 0.06, "parts should be ≈uniform: {part_high}");
    }

    #[test]
    fn lineitem_counts_match_orders() {
        let c = cfg();
        let expected: u64 = orders(&c).map(|o| u64::from(o.lineitem_count)).sum();
        assert_eq!(lineitems(&c).count() as u64, expected);
        // Average 1..=7 → ≈4 lineitems/order.
        let avg = expected as f64 / c.order_count() as f64;
        assert!((3.0..5.0).contains(&avg), "avg fanout {avg}");
    }

    #[test]
    fn line_numbers_are_dense_per_order() {
        let c = cfg();
        for i in 0..20 {
            let lis = lineitems_of_order(&c, i, c.part_count());
            for (idx, li) in lis.iter().enumerate() {
                assert_eq!(li.line_number as usize, idx + 1);
                assert_eq!(li.order_key, i + 1);
            }
        }
    }
}
