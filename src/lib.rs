//! # rankjoin — Rank Join Queries in NoSQL Databases
//!
//! A from-scratch Rust reproduction of Ntarmos, Patlakas & Triantafillou,
//! *"Rank Join Queries in NoSQL Databases"*, PVLDB 7(7):493–504, 2014 —
//! the first study of top-k equi-join processing over cloud NoSQL stores.
//!
//! This facade crate re-exports the full workspace:
//!
//! * [`store`] — an HBase-model NoSQL store simulator (regions sharded
//!   over nodes, column families, ascending-only scans, server-side
//!   filters, and a cloud cost model for time/bandwidth/dollar metrics),
//! * [`mapreduce`] — a Hadoop-model MapReduce engine with a simulated DFS,
//! * [`sketch`] — single-hash/hybrid Bloom filters, Golomb coding, and
//!   score histograms (the BFHM building blocks),
//! * [`tpch`] — a deterministic TPC-H-style generator (Part / Orders /
//!   Lineitem plus refresh sets),
//! * [`core`] — the six rank-join algorithms: Hive and Pig baselines,
//!   IJLMR, ISL/HRJN, **BFHM** (the paper's headline contribution, with
//!   provable 100% recall), and the DRJN comparator,
//! * [`serve`] — a multi-tenant serving front-end over the executors:
//!   query sessions with per-tenant metering, admission control with
//!   weighted fairness, and cross-query work sharing,
//! * [`analyze`] — machine enforcement for the invariants everything
//!   above rests on: the **rjlint** repo-specific lint pass and the
//!   **rj_check** deterministic interleaving explorer that model-tests
//!   the execution core's concurrency protocols,
//!
//! plus the most-used types at the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use rankjoin::{Algorithm, Cluster, CostModel, JoinSide, Mutation,
//!                RankJoinExecutor, RankJoinQuery, ScoreFn};
//!
//! // A 4-node cluster with the lab-cluster cost profile.
//! let cluster = Cluster::new(4, CostModel::lab());
//! cluster.create_table("movies", &["d"]).unwrap();
//! cluster.create_table("showings", &["d"]).unwrap();
//! let client = cluster.client();
//! for (table, key, join, score) in [
//!     ("movies", "m1", b"sci-fi", 0.9f64),
//!     ("movies", "m2", b"drama!", 0.8),
//!     ("showings", "s1", b"sci-fi", 0.7),
//!     ("showings", "s2", b"sci-fi", 0.4),
//! ] {
//!     client.mutate_row(table, key.as_bytes(), vec![
//!         Mutation::put("d", b"jk", join.to_vec()),
//!         Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
//!     ]).unwrap();
//! }
//!
//! let query = RankJoinQuery::new(
//!     JoinSide::new("movies", "M", ("d", b"jk"), ("d", b"score")),
//!     JoinSide::new("showings", "S", ("d", b"jk"), ("d", b"score")),
//!     2,
//!     ScoreFn::Sum,
//! );
//! let mut executor = RankJoinExecutor::new(&cluster, query);
//! executor.prepare_isl().unwrap();
//! let outcome = executor.execute(Algorithm::Isl).unwrap();
//! assert_eq!(outcome.results.len(), 2);
//! assert!((outcome.results[0].score - 1.6).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub use rj_analyze as analyze;
pub use rj_core as core;
pub use rj_mapreduce as mapreduce;
pub use rj_serve as serve;
pub use rj_sketch as sketch;
pub use rj_store as store;
pub use rj_tpch as tpch;

pub use rj_core::adaptive::DEFAULT_REPLAN_DIVERGENCE;
pub use rj_core::bfhm::{maintenance::WriteBackPolicy, BfhmConfig, BoundMode};
pub use rj_core::cancel::{CancelToken, StopPolicy, StopReason};
pub use rj_core::drjn::DrjnConfig;
pub use rj_core::executor::{Algorithm, RankJoinExecutor};
pub use rj_core::isl::IslConfig;
pub use rj_core::maintenance::MaintainedSide;
pub use rj_core::multiway::{MultiwayConfig, SharedSpecStats, SideAccess, SpecExecutor};
pub use rj_core::planner::{Objective, Plan, StatsSource};
pub use rj_core::query::{JoinEdge, JoinSide, JoinSpec, RankJoinQuery, SpecShape};
pub use rj_core::result::{JoinTuple, TopK};
pub use rj_core::score::ScoreFn;
pub use rj_core::stats::QueryOutcome;
pub use rj_core::statsmaint::{
    ObservedDescent, SharedTableStats, StatsDelta, StatsMaintainer, DEFAULT_STALENESS_BOUND,
};
pub use rj_mapreduce::MapReduceEngine;
pub use rj_serve::{
    QueryPriority, RankJoinService, ServeConfig, ServedBy, SessionOutcome, SessionStatus,
    SubmitOptions,
};
pub use rj_store::parallel::{ExecutionMode, ParallelScanner};
pub use rj_store::{Cell, Client, Cluster, CostModel, Mutation, Scan};
